//! # nachos-suite — umbrella crate for the NACHOS (HPCA 2018) reproduction
//!
//! Re-exports every crate of the workspace so the examples under
//! `examples/` and the integration tests under `tests/` can use the whole
//! system through one dependency. Start with the
//! [repository README](https://github.com/sfu-arch/nachos) and the
//! `quickstart` example; the individual crates are:
//!
//! * [`nachos_ir`] — the dataflow IR and pointer-expression model,
//! * [`nachos_alias`] — the four-stage NACHOS-SW compiler,
//! * [`nachos_mem`] / [`nachos_lsq`] / [`nachos_cgra`] — the substrates,
//! * [`nachos`] — the cycle-level simulator and energy model,
//! * [`nachos_workloads`] — the 27 Table II region generators.

#![forbid(unsafe_code)]

pub use nachos;
pub use nachos_alias;
pub use nachos_cgra;
pub use nachos_ir;
pub use nachos_lsq;
pub use nachos_mem;
pub use nachos_workloads;
