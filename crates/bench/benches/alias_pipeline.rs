//! Criterion micro-benchmarks: throughput of the NACHOS-SW compiler
//! pipeline, per stage, on the largest Table II region (equake).

use criterion::{criterion_group, criterion_main, Criterion};
use nachos_alias::{analyze, StageConfig};
use nachos_workloads::{by_name, generate};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let w = generate(&by_name("183.equake").expect("spec"));
    let mut group = c.benchmark_group("alias_pipeline");
    group.bench_function("stage1_only", |b| {
        b.iter(|| analyze(black_box(&w.region), StageConfig::stage1_only()))
    });
    group.bench_function("baseline_s1_s3", |b| {
        b.iter(|| analyze(black_box(&w.region), StageConfig::baseline()))
    });
    group.bench_function("full_s1_s4", |b| {
        b.iter(|| analyze(black_box(&w.region), StageConfig::full()))
    });
    group.finish();

    let mut group = c.benchmark_group("alias_pipeline_small");
    let small = generate(&by_name("gzip").expect("spec"));
    group.bench_function("gzip_full", |b| {
        b.iter(|| analyze(black_box(&small.region), StageConfig::full()))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
