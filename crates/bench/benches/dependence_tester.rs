//! Criterion micro-benchmarks: cost of the Stage-4 polyhedral dependence
//! tests (per-dimension subscript comparison over the iteration box).

use criterion::{criterion_group, criterion_main, Criterion};
use nachos_alias::afftest::{overlap_test, IvBox};
use nachos_alias::{analyze, StageConfig};
use nachos_ir::{AffineExpr, LoopId};
use nachos_workloads::{by_name, generate};
use std::hint::black_box;

fn bench_tester(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependence_tester");

    // Multi-IV interval + GCD query.
    let delta = AffineExpr::from_terms(
        &[
            (LoopId::new(0), 64),
            (LoopId::new(1), -8),
            (LoopId::new(2), 1),
        ],
        4,
    );
    let bx = IvBox::from_bounds(vec![(0, 127), (0, 63), (0, 7)]);
    group.bench_function("multi_iv_query", |b| {
        b.iter(|| overlap_test(black_box(&delta), &bx, 8, 8))
    });

    // Full Stage-4 pass over the stencil-heavy namd region.
    let w = generate(&by_name("namd").expect("spec"));
    group.bench_function("stage4_namd_region", |b| {
        b.iter(|| {
            let with = analyze(black_box(&w.region), StageConfig::full());
            black_box(with.report.stage4_refined)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_tester);
criterion_main!(benches);
