//! Criterion micro-benchmarks: cache-hierarchy access throughput under
//! hit- and miss-dominated streams.

use criterion::{criterion_group, criterion_main, Criterion};
use nachos_mem::{HierarchyConfig, MemoryHierarchy};
use std::hint::black_box;

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_hierarchy");

    group.bench_function("l1_hits_1k", |b| {
        b.iter_with_setup(
            || {
                let mut h = MemoryHierarchy::new(HierarchyConfig::default());
                for k in 0..64u64 {
                    h.access(k * 64, false, 0);
                }
                h
            },
            |mut h| {
                let mut t = 1_000;
                for k in 0..1_000u64 {
                    let r = h.access((k % 64) * 64, false, t);
                    t = r.complete_at;
                }
                black_box(t)
            },
        )
    });

    group.bench_function("streaming_misses_1k", |b| {
        b.iter_with_setup(
            || MemoryHierarchy::new(HierarchyConfig::default()),
            |mut h| {
                let mut t = 0;
                for k in 0..1_000u64 {
                    let r = h.access(k * 64, false, t);
                    t = r.complete_at;
                }
                black_box(t)
            },
        )
    });

    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
