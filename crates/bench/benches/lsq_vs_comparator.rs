//! Criterion micro-benchmarks: one OPT-LSQ search (bloom + CAM scan)
//! versus one decentralized `==?` overlap check — the mechanism-level
//! contrast behind the appendix's energy argument.

use criterion::{criterion_group, criterion_main, Criterion};
use nachos_alias::afftest::{overlap_test, IvBox};
use nachos_ir::AffineExpr;
use nachos_lsq::{Lsq, LsqConfig};
use std::hint::black_box;

fn bench_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("disambiguation_check");

    group.bench_function("lsq_search_48_in_flight", |b| {
        b.iter_with_setup(
            || {
                let mut lsq = Lsq::new(LsqConfig::default());
                let kinds: Vec<bool> = (0..48).map(|k| k % 2 == 0).collect();
                lsq.begin_invocation(&kinds);
                let mut cycle = 0;
                let mut allocated = 0;
                while allocated < 48 {
                    if lsq.allocate_next(cycle).is_some() {
                        allocated += 1;
                    } else {
                        cycle += 1;
                    }
                }
                for age in 0..48u32 {
                    lsq.bind_address(age, 0x1000 + u64::from(age) * 64, 8);
                }
                lsq
            },
            |mut lsq| black_box(lsq.search_load(47)),
        )
    });

    group.bench_function("pairwise_comparator", |b| {
        let a = (0x1000u64, 8u8);
        let q = (0x1008u64, 8u8);
        b.iter(|| {
            let (a, q) = (black_box(a), black_box(q));
            black_box(a.0 < q.0 + u64::from(q.1) && q.0 < a.0 + u64::from(a.1))
        })
    });

    group.bench_function("static_overlap_test", |b| {
        let delta = AffineExpr::var(nachos_ir::LoopId::new(0)).scaled(8).plus(4);
        let bx = IvBox::from_bounds(vec![(0, 63)]);
        b.iter(|| overlap_test(black_box(&delta), &bx, 8, 8))
    });

    group.finish();
}

criterion_group!(benches, bench_checks);
criterion_main!(benches);
