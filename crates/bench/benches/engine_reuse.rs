//! Fresh-state vs arena-reset engine runs (`simulate` vs `simulate_in`).
//!
//! Times one simulation of a Table II workload per backend with (a) all
//! engine state rebuilt from scratch and (b) a pooled [`SimArena`] reset
//! between runs, and counts heap allocations per run through a counting
//! global allocator. In steady state the arena path allocates no
//! engine-owned state — the remaining allocations come from the per-run
//! placement pass and the returned result — so the allocs/run gap
//! between the two columns is the state the arena pools.

use criterion::{criterion_group, criterion_main, Criterion};
use nachos::{
    simulate, simulate_in, simulate_with_telemetry, Backend, EnergyModel, NoopSink, SimArena,
    SimConfig,
};
use nachos_alias::StageConfig;
use nachos_ir::{Binding, Region};
use nachos_workloads::{by_name, generate};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation; benches are separate crates, so the
/// workspace libraries' `forbid(unsafe_code)` is not weakened.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The workload, compiled once the way the driver would for the MDE
/// backends (the bench isolates the engine, not the compiler).
fn compiled_workload() -> (Region, Binding) {
    let w = generate(&by_name("453.povray").expect("spec"));
    let mut region = w.region.clone();
    let _ = nachos_alias::compile(&mut region, StageConfig::full());
    (region, w.binding)
}

fn bench_engine_reuse(c: &mut Criterion) {
    let (region, binding) = compiled_workload();
    let config = SimConfig::default().with_invocations(8);
    let energy = EnergyModel::default();
    let mut group = c.benchmark_group("engine_reuse_povray_8inv");
    for backend in [Backend::Nachos, Backend::OptLsq] {
        group.bench_function(format!("{backend}/fresh"), |b| {
            b.iter(|| {
                simulate(
                    black_box(&region),
                    black_box(&binding),
                    backend,
                    &config,
                    &energy,
                )
                .expect("simulate")
            })
        });
        group.bench_function(format!("{backend}/arena-reset"), |b| {
            let mut arena = SimArena::new();
            b.iter(|| {
                simulate_in(
                    &mut arena,
                    black_box(&region),
                    black_box(&binding),
                    backend,
                    &config,
                    &energy,
                )
                .expect("simulate")
            })
        });

        // Steady-state allocation counts (not timed): run once to warm
        // the pool, then measure the next run on each path.
        let fresh_allocs = {
            let _ = simulate(&region, &binding, backend, &config, &energy);
            let before = allocs();
            let _ = black_box(simulate(&region, &binding, backend, &config, &energy));
            allocs() - before
        };
        let reuse_allocs = {
            let mut arena = SimArena::new();
            let _ = simulate_in(&mut arena, &region, &binding, backend, &config, &energy);
            let before = allocs();
            let _ = black_box(simulate_in(
                &mut arena, &region, &binding, backend, &config, &energy,
            ));
            allocs() - before
        };
        // Telemetry off must be free: a run with no sink attached pays
        // one branch per event and zero allocations beyond the sinkless
        // baseline. `simulate_with_telemetry` with a `NoopSink` bounds it
        // from the other side — attaching the no-op sink allocates
        // nothing either.
        let noop_allocs = {
            let mut arena = SimArena::new();
            let mut sink = NoopSink;
            let _ = simulate_with_telemetry(
                &mut arena, &region, &binding, backend, &config, &energy, &mut sink,
            );
            let before = allocs();
            let _ = black_box(simulate_with_telemetry(
                &mut arena, &region, &binding, backend, &config, &energy, &mut sink,
            ));
            allocs() - before
        };
        println!(
            "engine_reuse_povray_8inv/{backend}: {fresh_allocs} allocs/run fresh, \
             {reuse_allocs} allocs/run arena-reset, {noop_allocs} with NoopSink"
        );
        assert!(
            reuse_allocs < fresh_allocs,
            "arena reuse must allocate strictly less than fresh state \
             ({reuse_allocs} vs {fresh_allocs})"
        );
        assert!(
            noop_allocs <= reuse_allocs,
            "telemetry off must cost nothing: NoopSink runs allocate no more \
             than sinkless runs ({noop_allocs} vs {reuse_allocs})"
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_reuse);
criterion_main!(benches);
