//! Criterion micro-benchmarks: cycle-simulator throughput per backend.

use criterion::{criterion_group, criterion_main, Criterion};
use nachos::{run_backend, Backend, EnergyModel, SimConfig};
use nachos_workloads::{by_name, generate};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let w = generate(&by_name("453.povray").expect("spec"));
    let config = SimConfig::default().with_invocations(8);
    let energy = EnergyModel::default();
    let mut group = c.benchmark_group("simulator_povray_8inv");
    for backend in Backend::ALL {
        group.bench_function(backend.to_string(), |b| {
            b.iter(|| {
                run_backend(
                    black_box(&w.region),
                    black_box(&w.binding),
                    backend,
                    &config,
                    &energy,
                )
                .expect("simulate")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
