//! The `nachos-opt` suite runner: runs the certificate-carrying MDE
//! optimizer ([`nachos_alias::optimize`]) over every Table II workload
//! under every compiler ablation, re-audits each optimized region (the
//! audit's `CertLint` pass re-verifies every rewrite certificate
//! independently), times the MDE backends with and without the optimizer,
//! and aggregates everything into the byte-deterministic `nachos-opt-v1`
//! JSON report.
//!
//! The report is the CI `opt-audit` gate: a certificate error, a run
//! diverging from its unoptimized twin, or an optimized cycle count
//! regressing past its unoptimized baseline all exit nonzero through the
//! `nachos-opt` binary.

use crate::lint::{standard_configs, LintConfig};
use nachos::json::JsonWriter;
use nachos::{run_backend_with_stages_in, Backend, EnergyModel, SimArena, SimConfig};
use nachos_alias::OptStats;
use nachos_workloads::{generate_all, Workload};

/// What to optimize and how long to simulate.
#[derive(Clone, Debug)]
pub struct OptOptions {
    /// Restrict to one workload by Table II name (`None` = all 27).
    pub workload: Option<String>,
    /// Restrict to one named ablation (`None` = the full matrix).
    pub config: Option<String>,
    /// Invocations for the with/without timing comparison.
    pub invocations: u64,
}

impl Default for OptOptions {
    fn default() -> Self {
        Self {
            workload: None,
            config: None,
            invocations: crate::DEFAULT_INVOCATIONS,
        }
    }
}

/// One MDE backend timed with and without the optimizer.
#[derive(Clone, Copy, Debug)]
pub struct BackendCycles {
    /// The backend simulated (NACHOS-SW or NACHOS).
    pub backend: Backend,
    /// Cycles with the paper's stage-1..4 pipeline alone.
    pub unoptimized: u64,
    /// Cycles after `nachos-opt` rewrote the MDE plan.
    pub optimized: u64,
    /// `true` iff both runs loaded identical value streams and left
    /// identical final memory — the differential equivalence check.
    pub equivalent: bool,
}

impl BackendCycles {
    /// `true` when the optimized run costs more cycles than the baseline.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.optimized > self.unoptimized
    }

    /// `true` when the optimized run costs fewer cycles than the baseline.
    #[must_use]
    pub fn improved(&self) -> bool {
        self.optimized < self.unoptimized
    }
}

/// The optimizer's outcome on one workload under one ablation.
#[derive(Clone, Debug)]
pub struct OptRun {
    /// Workload name (Table II).
    pub workload: String,
    /// Ablation name.
    pub config: String,
    /// The rewrite ledger (before-counts plus per-pass removal counts).
    pub stats: OptStats,
    /// Certificates emitted (one per rewrite).
    pub certificates: usize,
    /// Committed forward (st→ld) edges — the optimizer never touches
    /// these; recorded so the report carries the full MDE census.
    pub forward: usize,
    /// Engine-measured `==?` comparator sites before optimization.
    pub comparator_sites_before: u64,
    /// Engine-measured `==?` comparator sites after optimization.
    pub comparator_sites_after: u64,
    /// Error-severity audit findings on the *optimized* region — any
    /// entry means `CertLint` (or another audit pass) refused a rewrite.
    pub audit_errors: Vec<String>,
    /// With/without timings per MDE backend, `[NACHOS-SW, NACHOS]` order
    /// (empty only when a simulation failed; the failure is recorded in
    /// `audit_errors`).
    pub cycles: Vec<BackendCycles>,
}

/// The whole suite's optimization outcomes.
#[derive(Clone, Debug, Default)]
pub struct OptSuiteReport {
    /// Invocations each timing run simulated.
    pub invocations: u64,
    /// One entry per workload × config, in deterministic order.
    pub runs: Vec<OptRun>,
}

impl OptSuiteReport {
    /// Audit findings on optimized regions (certificate or soundness
    /// errors) plus simulation failures — always fatal for the gate.
    #[must_use]
    pub fn num_cert_errors(&self) -> usize {
        self.runs.iter().map(|r| r.audit_errors.len()).sum()
    }

    /// Timed runs whose optimized cycle count exceeds the baseline.
    #[must_use]
    pub fn num_regressions(&self) -> usize {
        self.cycle_rows().filter(|c| c.regressed()).count()
    }

    /// Timed runs whose optimized execution diverged from the baseline
    /// (different load values or final memory) — a soundness failure.
    #[must_use]
    pub fn num_divergences(&self) -> usize {
        self.cycle_rows().filter(|c| !c.equivalent).count()
    }

    /// Distinct workloads where some MDE backend got faster under some
    /// ablation — the acceptance bar asks for improvement on ≥ 5.
    #[must_use]
    pub fn improved_workloads(&self) -> usize {
        let mut names: Vec<&str> = self
            .runs
            .iter()
            .filter(|r| r.cycles.iter().any(BackendCycles::improved))
            .map(|r| r.workload.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Fraction of ORDER/token edges the transitive reduction deleted,
    /// across every run in the report (0 when no run had any).
    #[must_use]
    pub fn order_removed_fraction(&self) -> f64 {
        let before: usize = self.runs.iter().map(|r| r.stats.order_before).sum();
        let removed: usize = self.runs.iter().map(|r| r.stats.order_removed).sum();
        if before == 0 {
            0.0
        } else {
            removed as f64 / before as f64
        }
    }

    /// Fraction of residual MAY edges that stage 5 upgraded to NO.
    #[must_use]
    pub fn may_upgraded_fraction(&self) -> f64 {
        let before: usize = self.runs.iter().map(|r| r.stats.may_before).sum();
        let upgraded: usize = self.runs.iter().map(|r| r.stats.may_upgraded_edges).sum();
        if before == 0 {
            0.0
        } else {
            upgraded as f64 / before as f64
        }
    }

    fn cycle_rows(&self) -> impl Iterator<Item = &BackendCycles> {
        self.runs.iter().flat_map(|r| &r.cycles)
    }

    /// Renders the `nachos-opt-v1` report. Byte-deterministic: depends
    /// only on the optimized regions and the options.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_obj();
        w.str_field("schema", "nachos-opt-v1");
        w.u64_field("invocations", self.invocations);
        w.key("runs");
        w.open_arr();
        for run in &self.runs {
            let s = run.stats;
            w.open_obj();
            w.str_field("workload", &run.workload);
            w.str_field("config", &run.config);
            w.key("mdes");
            w.open_obj();
            w.u64_field("order_before", s.order_before as u64);
            w.u64_field("order_after", (s.order_before - s.order_removed) as u64);
            w.u64_field("forward", run.forward as u64);
            w.u64_field("may_before", s.may_before as u64);
            w.u64_field(
                "may_after",
                (s.may_before - s.may_coalesced - s.may_upgraded_edges) as u64,
            );
            w.close_obj();
            w.key("rewrites");
            w.open_obj();
            w.u64_field("order_removed", s.order_removed as u64);
            w.u64_field("may_coalesced", s.may_coalesced as u64);
            w.u64_field("may_upgraded", s.may_upgraded as u64);
            w.u64_field("may_upgraded_edges", s.may_upgraded_edges as u64);
            w.u64_field("certificates", run.certificates as u64);
            w.close_obj();
            w.key("comparator_sites");
            w.open_obj();
            w.u64_field("before", run.comparator_sites_before);
            w.u64_field("after", run.comparator_sites_after);
            w.close_obj();
            w.key("cycles");
            w.open_arr();
            for c in &run.cycles {
                w.open_obj();
                w.str_field("backend", &c.backend.to_string());
                w.u64_field("unoptimized", c.unoptimized);
                w.u64_field("optimized", c.optimized);
                w.bool_field("equivalent", c.equivalent);
                w.close_obj();
            }
            w.close_arr();
            w.key("audit_errors");
            w.open_arr();
            for e in &run.audit_errors {
                w.open_obj();
                w.str_field("error", e);
                w.close_obj();
            }
            w.close_arr();
            w.close_obj();
        }
        w.close_arr();
        w.key("totals");
        w.open_obj();
        w.u64_field("runs", self.runs.len() as u64);
        let sum =
            |f: fn(&OptStats) -> usize| self.runs.iter().map(|r| f(&r.stats)).sum::<usize>() as u64;
        w.u64_field("order_before", sum(|s| s.order_before));
        w.u64_field("order_removed", sum(|s| s.order_removed));
        w.u64_field("may_before", sum(|s| s.may_before));
        w.u64_field("may_coalesced", sum(|s| s.may_coalesced));
        w.u64_field("may_upgraded_edges", sum(|s| s.may_upgraded_edges));
        w.f64_field("order_removed_fraction", self.order_removed_fraction());
        w.f64_field("may_upgraded_fraction", self.may_upgraded_fraction());
        w.u64_field("cert_errors", self.num_cert_errors() as u64);
        w.u64_field("regressions", self.num_regressions() as u64);
        w.u64_field("divergences", self.num_divergences() as u64);
        w.u64_field("improved_workloads", self.improved_workloads() as u64);
        w.close_obj();
        w.close_obj();
        w.finish()
    }
}

/// Optimizes one workload under one ablation: rewrites the plan, audits
/// the result, and times both MDE backends with and without the
/// optimizer (differentially comparing their executions).
#[must_use]
pub fn optimize_workload(
    arena: &mut SimArena,
    w: &Workload,
    config: LintConfig,
    options: &OptOptions,
) -> OptRun {
    // Static pass: compile, optimize, and independently re-audit. The
    // timing runs below repeat this inside the driver (whose audit gate
    // refuses bad certificates outright); doing it here as well captures
    // the findings instead of just an error.
    let mut region = w.region.clone();
    let mut analysis = nachos_alias::compile(&mut region, config.stages);
    nachos_alias::optimize(&mut region, &mut analysis);
    let outcome = analysis.opt.as_ref().expect("optimizer records an outcome");
    let stats = outcome.stats;
    let certificates = outcome.certs.len();
    let forward = analysis.plan.forward.len();
    let mut audit_errors: Vec<String> = nachos_alias::audit_with(
        &region,
        &analysis,
        config.stages,
        &nachos_alias::AuditConfig::default(),
    )
    .into_iter()
    .filter(nachos_alias::Diagnostic::is_error)
    .map(|d| {
        format!(
            "[{}] {} at {}: {}",
            d.code.id(),
            d.region,
            d.site,
            d.message
        )
    })
    .collect();

    // Timing pass: both MDE backends, with and without the optimizer,
    // over the *original* region (the driver re-compiles internally).
    let energy = EnergyModel::default();
    let base = SimConfig::default().with_invocations(options.invocations);
    let opt = base.clone().with_optimize(true);
    let mut cycles = Vec::new();
    let mut comparator_sites = (0, 0);
    for backend in [Backend::NachosSw, Backend::Nachos] {
        let mut run = |cfg: &SimConfig| {
            run_backend_with_stages_in(
                arena,
                &w.region,
                &w.binding,
                backend,
                cfg,
                &energy,
                config.stages,
            )
        };
        match (run(&base), run(&opt)) {
            (Ok(u), Ok(o)) => {
                comparator_sites = (u.sim.comparator_sites, o.sim.comparator_sites);
                cycles.push(BackendCycles {
                    backend,
                    unoptimized: u.sim.cycles,
                    optimized: o.sim.cycles,
                    equivalent: u.sim.loads.digest() == o.sim.loads.digest()
                        && u.sim.mem == o.sim.mem,
                });
            }
            (Err(e), _) | (_, Err(e)) => {
                audit_errors.push(format!("{}: {backend} simulation failed: {e}", w.spec.name));
            }
        }
    }
    OptRun {
        workload: w.spec.name.to_owned(),
        config: config.name.to_owned(),
        stats,
        certificates,
        forward,
        comparator_sites_before: comparator_sites.0,
        comparator_sites_after: comparator_sites.1,
        audit_errors,
        cycles,
    }
}

/// Runs the optimizer matrix and returns the suite report.
///
/// # Panics
///
/// Panics if `options` names a workload or config that does not exist —
/// the CLI validates names before calling.
#[must_use]
pub fn run_opt_suite(options: &OptOptions) -> OptSuiteReport {
    let configs: Vec<LintConfig> = standard_configs()
        .into_iter()
        .filter(|c| options.config.as_deref().is_none_or(|name| name == c.name))
        .collect();
    assert!(!configs.is_empty(), "unknown config filter");
    let workloads: Vec<Workload> = generate_all()
        .into_iter()
        .filter(|w| {
            options
                .workload
                .as_deref()
                .is_none_or(|name| name == w.spec.name)
        })
        .collect();
    assert!(!workloads.is_empty(), "unknown workload filter");
    let mut arena = SimArena::new();
    let mut runs = Vec::with_capacity(workloads.len() * configs.len());
    for w in &workloads {
        for &config in &configs {
            runs.push(optimize_workload(&mut arena, w, config, options));
        }
    }
    OptSuiteReport {
        invocations: options.invocations,
        runs,
    }
}

/// Wall-clock measurement of the full sweep, recorded in the perf
/// artifact so throughput regressions are visible in the committed
/// trajectory (machine-dependent, like `allocs_per_run`).
#[derive(Clone, Copy, Debug)]
pub struct SweepTiming {
    /// Matrix cells executed (jobs × variants).
    pub runs: u64,
    /// Wall-clock seconds for the whole matrix.
    pub wall_seconds: f64,
}

/// Renders the `nachos-bench-v2` perf artifact (`BENCH_sweep.json`): one
/// row per Table II workload combining the 27×5 sweep's cycles per
/// variant, the event-queue shape per variant (events pushed, live-depth
/// high-water mark), the optimized NACHOS/NACHOS-SW cycles, the MDE
/// census before vs. after `nachos-opt` (full-pipeline config), the
/// engine-measured comparator sites, and — when provided — steady-state
/// heap allocations per arena-reset run plus the sweep's measured
/// throughput. v2 is additions-only over v1: every v1 field is emitted
/// unchanged.
///
/// `allocs` maps workload name → allocations per run; workloads missing
/// from it simply omit the field (the library cannot observe the global
/// allocator — the `nachos-opt` binary measures and passes them in).
#[must_use]
pub fn bench_artifact_json(
    suite: &crate::SuiteRun,
    opt: &OptSuiteReport,
    allocs: &[(String, u64)],
    invocations: u64,
    timing: Option<SweepTiming>,
) -> String {
    let mut w = JsonWriter::new();
    w.open_obj();
    w.str_field("schema", "nachos-bench-v2");
    w.u64_field("invocations", invocations);
    if let Some(t) = timing {
        w.key("sweep");
        w.open_obj();
        w.u64_field("runs", t.runs);
        w.f64_field("wall_seconds", t.wall_seconds);
        w.f64_field(
            "runs_per_sec",
            if t.wall_seconds > 0.0 {
                t.runs as f64 / t.wall_seconds
            } else {
                0.0
            },
        );
        w.close_obj();
    }
    w.key("workloads");
    w.open_arr();
    for r in &suite.results {
        let name = r.spec.name;
        w.open_obj();
        w.str_field("name", name);
        w.key("cycles");
        w.open_obj();
        w.u64_field("opt-lsq", r.lsq.sim.cycles);
        w.u64_field("nachos-sw", r.sw.sim.cycles);
        w.u64_field("nachos", r.hw.sim.cycles);
        w.u64_field("nachos-sw-baseline", r.sw_baseline.sim.cycles);
        if let Some(ideal) = &r.ideal {
            w.u64_field("ideal", ideal.sim.cycles);
        }
        w.close_obj();
        // Queue shape per variant: total events pushed and the live-depth
        // high-water mark, so a refactor that changes event volume or
        // queue pressure shows up in the trajectory.
        w.key("queue");
        w.open_obj();
        let mut variant = |label: &str, run: &nachos::ExperimentRun| {
            w.key(label);
            w.open_obj();
            w.u64_field("events", run.sim.queue_events);
            w.u64_field("max_depth", run.sim.heap_max_depth);
            w.close_obj();
        };
        variant("opt-lsq", &r.lsq);
        variant("nachos-sw", &r.sw);
        variant("nachos", &r.hw);
        variant("nachos-sw-baseline", &r.sw_baseline);
        if let Some(ideal) = &r.ideal {
            variant("ideal", ideal);
        }
        w.close_obj();
        // The optimizer's impact under the full pipeline.
        if let Some(o) = opt
            .runs
            .iter()
            .find(|o| o.workload == name && o.config == "full")
        {
            w.key("optimized_cycles");
            w.open_obj();
            for c in &o.cycles {
                w.u64_field(&c.backend.to_string().to_lowercase(), c.optimized);
            }
            w.close_obj();
            let s = o.stats;
            w.key("mdes");
            w.open_obj();
            w.u64_field("order_before", s.order_before as u64);
            w.u64_field("order_after", (s.order_before - s.order_removed) as u64);
            w.u64_field("may_before", s.may_before as u64);
            w.u64_field(
                "may_after",
                (s.may_before - s.may_coalesced - s.may_upgraded_edges) as u64,
            );
            w.u64_field("forward", o.forward as u64);
            w.close_obj();
            w.key("comparator_sites");
            w.open_obj();
            w.u64_field("before", o.comparator_sites_before);
            w.u64_field("after", o.comparator_sites_after);
            w.close_obj();
        }
        if let Some((_, n)) = allocs.iter().find(|(wname, _)| wname == name) {
            w.u64_field("allocs_per_run", *n);
        }
        w.close_obj();
    }
    w.close_arr();
    w.close_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equake_options() -> OptOptions {
        OptOptions {
            workload: Some("183.equake".to_owned()),
            config: Some("full".to_owned()),
            invocations: 8,
        }
    }

    #[test]
    fn optimized_workload_is_certified_equivalent_and_no_slower() {
        let report = run_opt_suite(&equake_options());
        assert_eq!(report.runs.len(), 1);
        let run = &report.runs[0];
        assert!(run.audit_errors.is_empty(), "{:?}", run.audit_errors);
        assert_eq!(run.cycles.len(), 2, "both MDE backends timed");
        assert_eq!(report.num_divergences(), 0);
        assert_eq!(report.num_regressions(), 0);
        // The ledger and the certificates agree one-for-one.
        assert_eq!(
            run.certificates,
            run.stats.order_removed + run.stats.may_coalesced + run.stats.may_upgraded
        );
    }

    #[test]
    fn report_is_byte_deterministic_and_carries_the_gate() {
        let options = equake_options();
        let a = run_opt_suite(&options).to_json();
        let b = run_opt_suite(&options).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"nachos-opt-v1\""));
        assert!(a.contains("\"cert_errors\": 0"));
        assert!(a.contains("\"divergences\": 0"));
        assert!(a.contains("\"regressions\": 0"));
    }
}
