//! The `nachos-lint` suite runner: audits every Table II workload under
//! every compiler ablation and aggregates the findings into the
//! byte-deterministic `nachos-lint-v1` JSON report.
//!
//! The heavy lifting — re-deriving ground-truth alias verdicts, proving
//! ordering chains, recounting the bookkeeping — lives in
//! [`nachos_alias::audit`]; this module is the workload × [`StageConfig`]
//! product, the report schema, and the optional differential replay of
//! every NO-labelled pair against the reference executor's address walk.

use nachos::json::JsonWriter;
use nachos::{run_backend_with_stages, Backend, EnergyModel, SimConfig};
use nachos_alias::{
    audit_with, compile, AuditConfig, Code, Diagnostic, OptStats, Severity, StageConfig,
};
use nachos_workloads::{generate_all, Workload};

/// One named compiler ablation the suite audits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LintConfig {
    /// Stable name used in reports and `--config` filters.
    pub name: &'static str,
    /// The stage selection it denotes.
    pub stages: StageConfig,
}

/// The standard ablation matrix: every `StageConfig` the experiment
/// harness exercises, plus the pruning-off corner (stages 2 and 4 on,
/// stage 3 off) that stresses the race detector with the densest MDE set.
#[must_use]
pub fn standard_configs() -> Vec<LintConfig> {
    vec![
        LintConfig {
            name: "full",
            stages: StageConfig::full(),
        },
        LintConfig {
            name: "baseline",
            stages: StageConfig::baseline(),
        },
        LintConfig {
            name: "stage1-only",
            stages: StageConfig::stage1_only(),
        },
        LintConfig {
            name: "no-prune",
            stages: StageConfig {
                stage2: true,
                stage3: false,
                stage4: true,
            },
        },
    ]
}

/// What to audit and how hard.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Restrict to one workload by Table II name (`None` = all 27).
    pub workload: Option<String>,
    /// Restrict to one named config (`None` = the full matrix).
    pub config: Option<String>,
    /// Also replay every NO pair through the reference address walk.
    pub differential: bool,
    /// Invocations for the differential replay.
    pub invocations: u64,
    /// Also run the IDEAL-oracle timing cross-check (the `--ideal` flag);
    /// off by default so the standard report stays byte-identical.
    pub ideal: bool,
    /// Run the certificate-carrying MDE optimizer (`nachos-opt`) after
    /// compilation, so the audit's `CertLint` pass re-verifies real
    /// rewrite certificates instead of vacuously passing. Off by default
    /// so the standard report stays byte-identical.
    pub optimize: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        Self {
            workload: None,
            config: None,
            differential: false,
            invocations: 64,
            ideal: false,
            optimize: false,
        }
    }
}

/// The audit outcome of one workload under one config.
#[derive(Clone, Debug)]
pub struct LintRun {
    /// Workload name (Table II).
    pub workload: String,
    /// Ablation name.
    pub config: String,
    /// Tracked memory operations.
    pub mem_ops: usize,
    /// Ordering-relevant pairs.
    pub pairs: usize,
    /// Final (no, may, must) label counts.
    pub labels: (usize, usize, usize),
    /// Committed (order, forward, may) MDE counts.
    pub mdes: (usize, usize, usize),
    /// Every diagnostic the audit produced, in report order.
    pub diagnostics: Vec<Diagnostic>,
    /// Dynamic NO-pair collisions (differential mode; `None` when the
    /// replay was not requested).
    pub collisions: Option<usize>,
    /// IDEAL-oracle timing cross-check (`--ideal` mode; `None` when not
    /// requested).
    pub ideal: Option<IdealCheck>,
    /// The optimizer's rewrite ledger (`--optimize` mode; `None` when the
    /// optimizer was not run). Every count is backed by a certificate the
    /// audit's `CertLint` pass re-verified independently.
    pub opt: Option<OptStats>,
}

/// The opt-in IDEAL-oracle cross-check: the oracle must lower-bound
/// NACHOS under the same compiler staging, or the MAY machinery is
/// claiming impossible speedups.
#[derive(Clone, Copy, Debug)]
pub struct IdealCheck {
    /// Cycles under the IDEAL oracle (perfect disambiguation).
    pub ideal_cycles: u64,
    /// Cycles under NACHOS with the same stages.
    pub nachos_cycles: u64,
}

impl IdealCheck {
    /// `true` iff the oracle lower-bounds NACHOS. A violation is counted
    /// as an error by [`LintSuiteReport::num_errors`].
    #[must_use]
    pub fn bound_holds(&self) -> bool {
        self.ideal_cycles <= self.nachos_cycles
    }
}

impl LintRun {
    /// Number of Severity-matching diagnostics in this run.
    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }
}

/// The whole suite's findings.
#[derive(Clone, Debug, Default)]
pub struct LintSuiteReport {
    /// One entry per workload × config, in deterministic order.
    pub runs: Vec<LintRun>,
}

impl LintSuiteReport {
    /// Total Error-severity diagnostics plus dynamic collisions plus
    /// IDEAL-bound violations — the quantity CI gates on.
    #[must_use]
    pub fn num_errors(&self) -> usize {
        self.runs
            .iter()
            .map(|r| {
                r.count(Severity::Error)
                    + r.collisions.unwrap_or(0)
                    + usize::from(r.ideal.is_some_and(|ic| !ic.bound_holds()))
            })
            .sum()
    }

    /// Total Warning-severity diagnostics (advisory by default).
    #[must_use]
    pub fn num_warnings(&self) -> usize {
        self.runs.iter().map(|r| r.count(Severity::Warning)).sum()
    }

    /// Avoidable-imprecision findings — the `nachos-lint --strict` gate.
    /// Counts redundant-MDE warnings plus precision losses an *enabled*
    /// stage (including stage 5, the optimizer) could have decided.
    /// Losses attributed to a deliberately disabled ablation stage stay
    /// advisory, as do hardware-budget advisories (token fan-in): they
    /// describe the workload or the chosen ablation, not a fixable gap
    /// in the pipeline that actually ran.
    #[must_use]
    pub fn num_strict(&self) -> usize {
        self.runs
            .iter()
            .flat_map(|r| &r.diagnostics)
            .filter(|d| match d.code {
                Code::RedundantMde => true,
                Code::PrecisionLoss => !d.message.contains("(disabled)"),
                _ => false,
            })
            .count()
    }

    /// Renders the `nachos-lint-v1` report. Byte-deterministic: depends
    /// only on the audited regions and the options.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_obj();
        w.str_field("schema", "nachos-lint-v1");
        w.key("runs");
        w.open_arr();
        for run in &self.runs {
            w.open_obj();
            w.str_field("workload", &run.workload);
            w.str_field("config", &run.config);
            w.u64_field("mem_ops", run.mem_ops as u64);
            w.u64_field("pairs", run.pairs as u64);
            w.key("labels");
            w.open_obj();
            w.u64_field("no", run.labels.0 as u64);
            w.u64_field("may", run.labels.1 as u64);
            w.u64_field("must", run.labels.2 as u64);
            w.close_obj();
            w.key("mdes");
            w.open_obj();
            w.u64_field("order", run.mdes.0 as u64);
            w.u64_field("forward", run.mdes.1 as u64);
            w.u64_field("may", run.mdes.2 as u64);
            w.close_obj();
            if let Some(s) = run.opt {
                w.key("opt");
                w.open_obj();
                w.u64_field("order_before", s.order_before as u64);
                w.u64_field("may_before", s.may_before as u64);
                w.u64_field("order_removed", s.order_removed as u64);
                w.u64_field("may_coalesced", s.may_coalesced as u64);
                w.u64_field("may_upgraded", s.may_upgraded as u64);
                w.u64_field("may_upgraded_edges", s.may_upgraded_edges as u64);
                w.close_obj();
            }
            w.key("diagnostics");
            w.open_obj();
            w.u64_field("errors", run.count(Severity::Error) as u64);
            w.u64_field("warnings", run.count(Severity::Warning) as u64);
            w.u64_field("infos", run.count(Severity::Info) as u64);
            w.close_obj();
            w.key("by_code");
            w.open_arr();
            for (code, count) in count_by_code(&run.diagnostics) {
                w.open_obj();
                w.str_field("code", code);
                w.u64_field("count", count as u64);
                w.close_obj();
            }
            w.close_arr();
            w.key("errors");
            w.open_arr();
            for d in run.diagnostics.iter().filter(|d| d.is_error()) {
                w.open_obj();
                w.str_field("code", d.code.id());
                w.str_field("site", &d.site.to_string());
                w.str_field("message", &d.message);
                w.close_obj();
            }
            w.close_arr();
            if let Some(collisions) = run.collisions {
                w.u64_field("collisions", collisions as u64);
            }
            if let Some(ic) = run.ideal {
                w.key("ideal");
                w.open_obj();
                w.u64_field("cycles", ic.ideal_cycles);
                w.u64_field("nachos_cycles", ic.nachos_cycles);
                w.bool_field("bound_holds", ic.bound_holds());
                w.close_obj();
            }
            w.close_obj();
        }
        w.close_arr();
        w.key("totals");
        w.open_obj();
        w.u64_field("runs", self.runs.len() as u64);
        let total = |s: Severity| self.runs.iter().map(|r| r.count(s)).sum::<usize>() as u64;
        w.u64_field("errors", total(Severity::Error));
        w.u64_field("warnings", total(Severity::Warning));
        w.u64_field("infos", total(Severity::Info));
        w.u64_field(
            "collisions",
            self.runs
                .iter()
                .map(|r| r.collisions.unwrap_or(0))
                .sum::<usize>() as u64,
        );
        w.close_obj();
        w.close_obj();
        w.finish()
    }
}

fn count_by_code(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for d in diags {
        let id = d.code.id();
        match counts.iter_mut().find(|(c, _)| *c == id) {
            Some((_, n)) => *n += 1,
            None => counts.push((id, 1)),
        }
    }
    counts.sort_unstable();
    counts
}

/// Audits one workload under one ablation.
#[must_use]
pub fn lint_workload(w: &Workload, config: LintConfig, options: &LintOptions) -> LintRun {
    let mut region = w.region.clone();
    let mut analysis = compile(&mut region, config.stages);
    if options.optimize {
        nachos_alias::optimize(&mut region, &mut analysis);
    }
    let diagnostics = audit_with(&region, &analysis, config.stages, &AuditConfig::default());
    let collisions = options.differential.then(|| {
        nachos_alias::differential_no_collisions(
            &region,
            &analysis.matrix,
            &w.binding,
            options.invocations,
        )
        .len()
    });
    let ideal = options.ideal.then(|| {
        let cfg = SimConfig::default().with_invocations(options.invocations);
        let em = EnergyModel::default();
        let cycles = |backend| {
            run_backend_with_stages(&w.region, &w.binding, backend, &cfg, &em, config.stages)
                .expect("lint ideal cross-check simulates cleanly")
                .sim
                .cycles
        };
        IdealCheck {
            ideal_cycles: cycles(Backend::Ideal),
            nachos_cycles: cycles(Backend::Nachos),
        }
    });
    let counts = analysis.matrix.label_counts();
    LintRun {
        workload: w.spec.name.to_owned(),
        config: config.name.to_owned(),
        mem_ops: analysis.matrix.num_ops(),
        pairs: analysis.matrix.num_tracked_pairs(),
        labels: (counts.no, counts.may, counts.must),
        mdes: (
            analysis.plan.order.len(),
            analysis.plan.forward.len(),
            analysis.plan.may.len(),
        ),
        diagnostics,
        collisions,
        ideal,
        opt: analysis.opt.as_ref().map(|o| o.stats),
    }
}

/// Runs the audit matrix and returns the suite report.
///
/// # Panics
///
/// Panics if `options` names a workload or config that does not exist —
/// the CLI validates names before calling.
#[must_use]
pub fn run_lint_suite(options: &LintOptions) -> LintSuiteReport {
    let configs: Vec<LintConfig> = standard_configs()
        .into_iter()
        .filter(|c| options.config.as_deref().is_none_or(|name| name == c.name))
        .collect();
    assert!(!configs.is_empty(), "unknown config filter");
    let workloads: Vec<Workload> = generate_all()
        .into_iter()
        .filter(|w| {
            options
                .workload
                .as_deref()
                .is_none_or(|name| name == w.spec.name)
        })
        .collect();
    assert!(!workloads.is_empty(), "unknown workload filter");
    let mut runs = Vec::with_capacity(workloads.len() * configs.len());
    for w in &workloads {
        for &config in &configs {
            runs.push(lint_workload(w, config, options));
        }
    }
    LintSuiteReport { runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_workload_options(name: &str) -> LintOptions {
        LintOptions {
            workload: Some(name.to_owned()),
            ..LintOptions::default()
        }
    }

    #[test]
    fn audited_workload_has_zero_errors_under_every_config() {
        let report = run_lint_suite(&LintOptions {
            differential: true,
            invocations: 8,
            ..one_workload_options("183.equake")
        });
        assert_eq!(report.runs.len(), standard_configs().len());
        assert_eq!(report.num_errors(), 0, "{}", report.to_json());
    }

    #[test]
    fn report_is_byte_deterministic() {
        let options = one_workload_options("art");
        let a = run_lint_suite(&options).to_json();
        let b = run_lint_suite(&options).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"nachos-lint-v1\""));
    }

    #[test]
    fn optimized_suite_audits_clean_and_reports_ledger() {
        let base = one_workload_options("183.equake");
        let plain = run_lint_suite(&base).to_json();
        assert!(!plain.contains("\"opt\""), "ledger is opt-in");
        let report = run_lint_suite(&LintOptions {
            optimize: true,
            ..base
        });
        assert_eq!(report.runs.len(), standard_configs().len());
        // CertLint re-verified every certificate the optimizer emitted.
        assert_eq!(report.num_errors(), 0, "{}", report.to_json());
        assert!(report.runs.iter().all(|r| r.opt.is_some()));
        assert!(report.to_json().contains("\"order_removed\""));
        assert_eq!(report.num_strict(), 0, "optimized runs leave no slack");
    }

    #[test]
    fn strict_gate_counts_only_avoidable_imprecision() {
        use nachos_alias::Site;
        let diag = |code: Code, message: &str| Diagnostic {
            severity: code.severity(),
            code,
            region: "r".to_owned(),
            site: Site::Region,
            message: message.to_owned(),
        };
        let mut run = LintRun {
            workload: "r".to_owned(),
            config: "full".to_owned(),
            mem_ops: 0,
            pairs: 0,
            labels: (0, 0, 0),
            mdes: (0, 0, 0),
            diagnostics: vec![
                diag(Code::RedundantMde, "ORDER edge already implied"),
                diag(
                    Code::PrecisionLoss,
                    "provably NO (decidable by stage 5 (run nachos-opt))",
                ),
                diag(
                    Code::PrecisionLoss,
                    "provably NO (decidable by stage 2 (disabled))",
                ),
                diag(Code::FaninOverBudget, "9 tokens converge"),
            ],
            collisions: None,
            ideal: None,
            opt: None,
        };
        let report = LintSuiteReport {
            runs: vec![run.clone()],
        };
        // Redundant MDE + enabled-stage loss count; the disabled-stage
        // loss and the budget advisory stay advisory.
        assert_eq!(report.num_strict(), 2);
        assert_eq!(report.num_warnings(), 4);
        assert_eq!(report.num_errors(), 0);
        run.diagnostics.clear();
        assert_eq!(LintSuiteReport { runs: vec![run] }.num_strict(), 0);
    }

    #[test]
    fn ideal_cross_check_is_opt_in_and_holds() {
        let base = LintOptions {
            config: Some("full".to_owned()),
            invocations: 4,
            ..one_workload_options("parser")
        };
        let plain = run_lint_suite(&base).to_json();
        assert!(!plain.contains("\"ideal\""), "off by default");
        let report = run_lint_suite(&LintOptions {
            ideal: true,
            ..base
        });
        let checked = report.runs[0].ideal.expect("cross-check requested");
        assert!(checked.bound_holds(), "IDEAL must lower-bound NACHOS");
        assert_eq!(report.num_errors(), 0);
        assert!(report.to_json().contains("\"bound_holds\": true"));
    }
}
