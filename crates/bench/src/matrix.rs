//! The one matrix resolver: turns a [`MatrixSpec`] into the jobs and
//! configuration the sweep harness runs.
//!
//! Both front doors go through this function — the one-shot `sweep`
//! binary resolves its CLI flags here, and `nachos-sweepd` installs it
//! as the daemon's [`MatrixResolver`] — so a spec submitted over the
//! socket resolves to *exactly* the matrix the CLI would run. That
//! shared path is what makes the daemon's byte-identical-report
//! guarantee cheap: identical specs produce identical jobs, identical
//! fingerprints, and therefore identical `nachos-sweep-v4` bytes.
//!
//! Resolution is strict: an unknown variant label, a filter that
//! matches nothing, or a poison target that does not exist is an
//! `Err` with a deterministic message — the CLI maps it to a usage
//! error, the daemon to a `bad_spec` rejection; neither admits the
//! matrix.

use nachos::sweep::daemon::MatrixSpec;
use nachos::sweep::{SweepConfig, SweepJob};
use nachos::{FaultKind, FaultPlan, FaultSpec, WatchdogConfig};

/// Resolves a submitted spec against the Table II suite.
///
/// # Errors
///
/// A deterministic description of the first unresolvable field: a
/// filter matching no workload, an unknown poison target, an unknown
/// variant label, or an empty variant list.
pub fn resolve(spec: &MatrixSpec) -> Result<(Vec<SweepJob>, SweepConfig), String> {
    let mut jobs = crate::suite_jobs();
    if let Some(f) = &spec.filter {
        jobs.retain(|j| j.name.contains(f.as_str()));
        if jobs.is_empty() {
            return Err(format!("--filter {f:?} matches no workload"));
        }
    }
    if let Some(name) = &spec.poison {
        let Some(job) = jobs.iter_mut().find(|j| &j.name == name) else {
            return Err(format!("--poison knows no workload {name:?}"));
        };
        job.fault = FaultPlan::single(FaultSpec::new(FaultKind::PanicOnEvent, 0));
    }
    let mut cfg = crate::suite_config(spec.invocations, spec.threads, false);
    if let Some(labels) = &spec.variants {
        let mut variants = Vec::new();
        for label in labels.iter().map(|l| l.trim()).filter(|l| !l.is_empty()) {
            match crate::variant_by_label(label) {
                Some(v) => variants.push(v),
                None => return Err(format!("--variants knows no label {label:?}")),
            }
        }
        if variants.is_empty() {
            return Err("--variants requires at least one label".to_owned());
        }
        cfg = cfg.with_variants(variants);
    }
    if spec.ideal && !cfg.variants.iter().any(|v| v.label == "ideal") {
        cfg = cfg.with_ideal();
    }
    if spec.optimize {
        cfg = cfg.with_optimize(true);
    }
    cfg = cfg.with_retries(spec.max_retries);
    if let Some((base_cycles, cycles_per_node)) = spec.watchdog {
        // Unlike the wall-clock deadline, the cycle budget shapes
        // simulated behavior and so legitimately enters the config
        // (and with it every run fingerprint).
        cfg.sim.watchdog = WatchdogConfig {
            base_cycles,
            cycles_per_node,
        };
    }
    Ok((jobs, cfg))
}

/// Splits the raw comma-separated `--variants` value into the spec's
/// label list (trimmed, empties dropped; `None` stays `None`).
#[must_use]
pub fn parse_variants(variant_list: Option<&str>) -> Option<Vec<String>> {
    variant_list.map(|list| {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_resolves_to_the_full_suite() {
        let (jobs, cfg) = resolve(&MatrixSpec::default()).unwrap();
        assert_eq!(jobs.len(), 27);
        assert_eq!(cfg.variants.len(), 4);
        assert_eq!(cfg.sim.invocations, 64);
    }

    #[test]
    fn spec_fields_map_onto_the_config() {
        let spec = MatrixSpec {
            invocations: 3,
            ideal: true,
            optimize: true,
            max_retries: 2,
            filter: Some("gzip".to_owned()),
            poison: Some("gzip".to_owned()),
            watchdog: Some((1234, 56)),
            ..MatrixSpec::default()
        };
        let (jobs, cfg) = resolve(&spec).unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(!jobs[0].fault.is_empty(), "poison attaches a fault plan");
        assert!(cfg.variants.iter().any(|v| v.label == "ideal"));
        assert!(cfg.sim.optimize);
        assert_eq!(cfg.retry.max_retries, 2);
        assert_eq!(cfg.sim.watchdog.base_cycles, 1234);
        assert_eq!(cfg.sim.watchdog.cycles_per_node, 56);
    }

    #[test]
    fn unresolvable_specs_describe_themselves() {
        let bad_filter = MatrixSpec {
            filter: Some("no-such-workload".to_owned()),
            ..MatrixSpec::default()
        };
        assert!(resolve(&bad_filter).unwrap_err().contains("no workload"));
        let bad_poison = MatrixSpec {
            poison: Some("no-such-workload".to_owned()),
            ..MatrixSpec::default()
        };
        assert!(resolve(&bad_poison).unwrap_err().contains("--poison"));
        let bad_variant = MatrixSpec {
            variants: Some(vec!["warp-drive".to_owned()]),
            ..MatrixSpec::default()
        };
        assert!(resolve(&bad_variant).unwrap_err().contains("--variants"));
    }

    #[test]
    fn flag_form_round_trips_variant_lists() {
        let spec = MatrixSpec {
            invocations: 8,
            threads: 2,
            ideal: true,
            max_retries: 1,
            variants: parse_variants(Some("opt-lsq, nachos ,")),
            ..MatrixSpec::default()
        };
        assert_eq!(
            spec.variants,
            Some(vec!["opt-lsq".to_owned(), "nachos".to_owned()])
        );
        assert_eq!(parse_variants(None), None);
        let (_, cfg) = resolve(&spec).unwrap();
        assert_eq!(cfg.variants.len(), 3, "two picked plus appended ideal");
    }
}
