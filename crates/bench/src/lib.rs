//! # nachos-bench — the experiment harness
//!
//! Regenerates every quantitative table and figure of *NACHOS* (HPCA
//! 2018). Each `src/bin/<experiment>.rs` binary prints the same rows or
//! series the paper reports; this library provides the shared runner that
//! compiles and simulates every Table II workload under every backend.
//!
//! Run an experiment with e.g.
//! `cargo run --release -p nachos-bench --bin fig15_nachos_vs_lsq`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nachos::{
    pct_slowdown, run_backend, run_backend_with_stages, Backend, EnergyModel, ExperimentRun,
    SimConfig,
};
use nachos_alias::{analyze, Analysis, StageConfig};
use nachos_workloads::{generate, BenchSpec, Workload};

/// Default invocation count for the experiment harness: enough to warm
/// the cache and amortize start-up without inflating run times.
pub const DEFAULT_INVOCATIONS: u64 = 64;

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// The Table II row.
    pub spec: BenchSpec,
    /// The generated workload.
    pub workload: Workload,
    /// Full four-stage compiler analysis.
    pub analysis_full: Analysis,
    /// Baseline compiler analysis (Stage 1 + Stage 3 only).
    pub analysis_baseline: Analysis,
    /// OPT-LSQ run.
    pub lsq: ExperimentRun,
    /// NACHOS-SW run (full compiler, MAY serialized).
    pub sw: ExperimentRun,
    /// NACHOS run (full compiler, hardware MAY checks).
    pub hw: ExperimentRun,
    /// NACHOS-SW with the baseline compiler (Figure 12).
    pub sw_baseline: ExperimentRun,
}

impl BenchResult {
    /// % slowdown of NACHOS-SW vs OPT-LSQ (Figure 11; negative = speedup).
    #[must_use]
    pub fn sw_slowdown_pct(&self) -> f64 {
        pct_slowdown(self.sw.sim.cycles, self.lsq.sim.cycles)
    }

    /// % slowdown of NACHOS vs OPT-LSQ (Figure 15; negative = speedup).
    #[must_use]
    pub fn hw_slowdown_pct(&self) -> f64 {
        pct_slowdown(self.hw.sim.cycles, self.lsq.sim.cycles)
    }

    /// % slowdown of the baseline compiler vs OPT-LSQ (Figure 12).
    #[must_use]
    pub fn baseline_slowdown_pct(&self) -> f64 {
        pct_slowdown(self.sw_baseline.sim.cycles, self.lsq.sim.cycles)
    }
}

/// Runs one benchmark through the whole experiment matrix.
///
/// # Panics
///
/// Panics if a simulation fails (generated workloads always fit the grid).
#[must_use]
pub fn run_bench(spec: &BenchSpec, invocations: u64) -> BenchResult {
    let workload = generate(spec);
    let config = SimConfig::default().with_invocations(invocations);
    let energy = EnergyModel::default();
    let analysis_full = analyze(&workload.region, StageConfig::full());
    let analysis_baseline = analyze(&workload.region, StageConfig::baseline());
    let lsq = run_backend(&workload.region, &workload.binding, Backend::OptLsq, &config, &energy)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let sw = run_backend(&workload.region, &workload.binding, Backend::NachosSw, &config, &energy)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let hw = run_backend(&workload.region, &workload.binding, Backend::Nachos, &config, &energy)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let sw_baseline = run_backend_with_stages(
        &workload.region,
        &workload.binding,
        Backend::NachosSw,
        &config,
        &energy,
        StageConfig::baseline(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    BenchResult {
        spec: *spec,
        workload,
        analysis_full,
        analysis_baseline,
        lsq,
        sw,
        hw,
        sw_baseline,
    }
}

/// Runs the full 27-benchmark suite.
#[must_use]
pub fn run_suite(invocations: u64) -> Vec<BenchResult> {
    nachos_workloads::all()
        .iter()
        .map(|s| run_bench(s, invocations))
        .collect()
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_ref} of the NACHOS paper, HPCA 2018)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_workloads::by_name;

    #[test]
    fn run_bench_produces_consistent_matrix() {
        let spec = by_name("gzip").unwrap();
        let r = run_bench(&spec, 4);
        assert_eq!(r.lsq.sim.backend, Backend::OptLsq);
        assert_eq!(r.sw.sim.backend, Backend::NachosSw);
        assert_eq!(r.hw.sim.backend, Backend::Nachos);
        assert!(r.lsq.analysis.is_none());
        assert!(r.sw.analysis.is_some());
        // gzip is fully resolved: NACHOS == NACHOS-SW.
        assert_eq!(r.sw.sim.cycles, r.hw.sim.cycles);
    }

    #[test]
    fn slowdown_helpers_are_consistent() {
        let spec = by_name("parser").unwrap();
        let r = run_bench(&spec, 4);
        let direct = pct_slowdown(r.sw.sim.cycles, r.lsq.sim.cycles);
        assert!((r.sw_slowdown_pct() - direct).abs() < 1e-12);
    }
}
