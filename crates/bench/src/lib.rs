//! # nachos-bench — the experiment harness
//!
//! Regenerates every quantitative table and figure of *NACHOS* (HPCA
//! 2018). Each `src/bin/<experiment>.rs` binary prints the same rows or
//! series the paper reports; this library provides the shared runner that
//! compiles and simulates every Table II workload under every backend.
//!
//! The whole matrix goes through the parallel differential-sweep harness
//! ([`nachos::sweep`]): every run is checked against the in-order
//! reference executor, and the 27 workloads are distributed over a scoped
//! worker pool, so a full-suite figure regenerates in roughly the time of
//! its slowest workload rather than the sum of all of them.
//!
//! Run an experiment with e.g.
//! `cargo run --release -p nachos-bench --bin fig15_nachos_vs_lsq`, or
//! emit the machine-readable sweep report with
//! `cargo run --release -p nachos-bench --bin sweep`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nachos::sweep::{run_sweep, JobOutcome, SweepConfig, SweepJob, SweepResult, SweepVariant};
use nachos::{pct_slowdown, ExperimentRun};
use nachos_alias::Analysis;
use nachos_workloads::{generate, BenchSpec, Workload};

/// Default invocation count for the experiment harness: enough to warm
/// the cache and amortize start-up without inflating run times.
pub const DEFAULT_INVOCATIONS: u64 = 64;

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// The Table II row.
    pub spec: BenchSpec,
    /// The generated workload.
    pub workload: Workload,
    /// Full four-stage compiler analysis.
    pub analysis_full: Analysis,
    /// Baseline compiler analysis (Stage 1 + Stage 3 only).
    pub analysis_baseline: Analysis,
    /// OPT-LSQ run.
    pub lsq: ExperimentRun,
    /// NACHOS-SW run (full compiler, MAY serialized).
    pub sw: ExperimentRun,
    /// NACHOS run (full compiler, hardware MAY checks).
    pub hw: ExperimentRun,
    /// NACHOS-SW with the baseline compiler (Figure 12).
    pub sw_baseline: ExperimentRun,
}

impl BenchResult {
    /// % slowdown of NACHOS-SW vs OPT-LSQ (Figure 11; negative = speedup).
    #[must_use]
    pub fn sw_slowdown_pct(&self) -> f64 {
        pct_slowdown(self.sw.sim.cycles, self.lsq.sim.cycles)
    }

    /// % slowdown of NACHOS vs OPT-LSQ (Figure 15; negative = speedup).
    #[must_use]
    pub fn hw_slowdown_pct(&self) -> f64 {
        pct_slowdown(self.hw.sim.cycles, self.lsq.sim.cycles)
    }

    /// % slowdown of the baseline compiler vs OPT-LSQ (Figure 12).
    #[must_use]
    pub fn baseline_slowdown_pct(&self) -> f64 {
        pct_slowdown(self.sw_baseline.sim.cycles, self.lsq.sim.cycles)
    }
}

/// A suite run: per-workload figure data plus the raw sweep (for the
/// machine-readable report).
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// One result per Table II workload, in table order.
    pub results: Vec<BenchResult>,
    /// The underlying differential sweep.
    pub sweep: SweepResult,
}

/// The sweep configuration the experiment matrix uses: the paper's three
/// backends plus NACHOS-SW under the baseline compiler.
#[must_use]
pub fn suite_config(invocations: u64, threads: usize) -> SweepConfig {
    SweepConfig::default()
        .with_invocations(invocations)
        .with_threads(threads)
        .with_variants(SweepVariant::bench_matrix())
}

/// Converts one generated workload into a sweep job.
#[must_use]
pub fn job_for(w: &Workload) -> SweepJob {
    SweepJob {
        name: w.spec.name.to_owned(),
        region: w.region.clone(),
        binding: w.binding.clone(),
    }
}

/// Builds a [`BenchResult`] from one job's sweep outcome.
///
/// # Panics
///
/// Panics if any run diverged from the reference executor or the outcome
/// does not carry the [`SweepVariant::bench_matrix`] variants — either
/// means the experiment data would be meaningless.
fn from_outcome(spec: BenchSpec, workload: Workload, outcome: JobOutcome) -> BenchResult {
    for r in &outcome.runs {
        assert!(
            r.matches_reference,
            "differential check failed: {} [{}] diverges from the in-order reference",
            outcome.name, r.variant
        );
    }
    let [lsq, sw, hw, sw_baseline]: [_; 4] = outcome
        .runs
        .try_into()
        .expect("bench outcomes carry the 4-variant bench matrix");
    let analysis_full = sw
        .run
        .analysis
        .clone()
        .expect("NACHOS-SW runs carry their analysis");
    let analysis_baseline = sw_baseline
        .run
        .analysis
        .clone()
        .expect("baseline NACHOS-SW runs carry their analysis");
    BenchResult {
        spec,
        workload,
        analysis_full,
        analysis_baseline,
        lsq: lsq.run,
        sw: sw.run,
        hw: hw.run,
        sw_baseline: sw_baseline.run,
    }
}

/// Runs one benchmark through the whole experiment matrix.
///
/// # Panics
///
/// Panics if a simulation fails or diverges from the reference executor
/// (generated workloads always fit the grid).
#[must_use]
pub fn run_bench(spec: &BenchSpec, invocations: u64) -> BenchResult {
    let workload = generate(spec);
    let cfg = suite_config(invocations, 1);
    let sweep =
        run_sweep(&[job_for(&workload)], &cfg).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let outcome = sweep.jobs.into_iter().next().expect("one job in, one out");
    from_outcome(*spec, workload, outcome)
}

/// Runs the full 27-benchmark suite on `threads` workers (`0` = one per
/// available core) and returns both the figure data and the raw sweep.
///
/// # Panics
///
/// Panics if a simulation fails or diverges from the reference executor.
#[must_use]
pub fn run_suite_threads(invocations: u64, threads: usize) -> SuiteRun {
    let workloads = nachos_workloads::generate_all();
    let jobs: Vec<SweepJob> = workloads.iter().map(job_for).collect();
    let cfg = suite_config(invocations, threads);
    let sweep = run_sweep(&jobs, &cfg).unwrap_or_else(|e| panic!("{e}"));
    let results = workloads
        .into_iter()
        .zip(sweep.jobs.iter().cloned())
        .map(|(w, outcome)| from_outcome(w.spec, w, outcome))
        .collect();
    SuiteRun { results, sweep }
}

/// Runs the full 27-benchmark suite (parallel, auto thread count).
#[must_use]
pub fn run_suite(invocations: u64) -> Vec<BenchResult> {
    run_suite_threads(invocations, 0).results
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_ref} of the NACHOS paper, HPCA 2018)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos::Backend;
    use nachos_workloads::by_name;

    #[test]
    fn run_bench_produces_consistent_matrix() {
        let spec = by_name("gzip").unwrap();
        let r = run_bench(&spec, 4);
        assert_eq!(r.lsq.sim.backend, Backend::OptLsq);
        assert_eq!(r.sw.sim.backend, Backend::NachosSw);
        assert_eq!(r.hw.sim.backend, Backend::Nachos);
        assert!(r.lsq.analysis.is_none());
        assert!(r.sw.analysis.is_some());
        // gzip is fully resolved: NACHOS == NACHOS-SW.
        assert_eq!(r.sw.sim.cycles, r.hw.sim.cycles);
    }

    #[test]
    fn slowdown_helpers_are_consistent() {
        let spec = by_name("parser").unwrap();
        let r = run_bench(&spec, 4);
        let direct = pct_slowdown(r.sw.sim.cycles, r.lsq.sim.cycles);
        assert!((r.sw_slowdown_pct() - direct).abs() < 1e-12);
    }

    #[test]
    fn suite_run_carries_matching_sweep() {
        let suite = run_suite_threads(2, 2);
        assert_eq!(suite.results.len(), suite.sweep.jobs.len());
        assert!(suite.sweep.all_match());
        for (r, j) in suite.results.iter().zip(&suite.sweep.jobs) {
            assert_eq!(r.spec.name, j.name);
        }
    }
}
