//! # nachos-bench — the experiment harness
//!
//! Regenerates every quantitative table and figure of *NACHOS* (HPCA
//! 2018). Each `src/bin/<experiment>.rs` binary prints the same rows or
//! series the paper reports; this library provides the shared runner that
//! compiles and simulates every Table II workload under every backend.
//!
//! The whole matrix goes through the parallel differential-sweep harness
//! ([`nachos::sweep`]): every run is checked against the in-order
//! reference executor, and the 27 workloads are distributed over a scoped
//! worker pool, so a full-suite figure regenerates in roughly the time of
//! its slowest workload rather than the sum of all of them.
//!
//! Run an experiment with e.g.
//! `cargo run --release -p nachos-bench --bin fig15_nachos_vs_lsq`, or
//! emit the machine-readable sweep report with
//! `cargo run --release -p nachos-bench --bin sweep`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exitcode;
pub mod lint;
pub mod matrix;
pub mod opt;
pub mod stats;

use nachos::sweep::{
    run_sweep, JobOutcome, RunStatus, SweepConfig, SweepJob, SweepResult, SweepVariant,
};
use nachos::{pct_slowdown, Backend, ExperimentRun, FaultKind, FaultPlan, FaultSpec, SimError};
use nachos_alias::Analysis;
use nachos_ir::{AffineExpr, Binding, IntOp, MemRef, RegionBuilder, UnknownPattern};
use nachos_workloads::{generate, BenchSpec, Workload};

/// Default invocation count for the experiment harness: enough to warm
/// the cache and amortize start-up without inflating run times.
pub const DEFAULT_INVOCATIONS: u64 = 64;

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// The Table II row.
    pub spec: BenchSpec,
    /// The generated workload.
    pub workload: Workload,
    /// Full four-stage compiler analysis.
    pub analysis_full: Analysis,
    /// Baseline compiler analysis (Stage 1 + Stage 3 only).
    pub analysis_baseline: Analysis,
    /// OPT-LSQ run.
    pub lsq: ExperimentRun,
    /// NACHOS-SW run (full compiler, MAY serialized).
    pub sw: ExperimentRun,
    /// NACHOS run (full compiler, hardware MAY checks).
    pub hw: ExperimentRun,
    /// NACHOS-SW with the baseline compiler (Figure 12).
    pub sw_baseline: ExperimentRun,
    /// IDEAL oracle run (perfect disambiguation, Figure 9 upper bound);
    /// present only when the suite ran with the `--ideal` column.
    pub ideal: Option<ExperimentRun>,
}

impl BenchResult {
    /// % slowdown of NACHOS-SW vs OPT-LSQ (Figure 11; negative = speedup).
    #[must_use]
    pub fn sw_slowdown_pct(&self) -> f64 {
        pct_slowdown(self.sw.sim.cycles, self.lsq.sim.cycles)
    }

    /// % slowdown of NACHOS vs OPT-LSQ (Figure 15; negative = speedup).
    #[must_use]
    pub fn hw_slowdown_pct(&self) -> f64 {
        pct_slowdown(self.hw.sim.cycles, self.lsq.sim.cycles)
    }

    /// % slowdown of the baseline compiler vs OPT-LSQ (Figure 12).
    #[must_use]
    pub fn baseline_slowdown_pct(&self) -> f64 {
        pct_slowdown(self.sw_baseline.sim.cycles, self.lsq.sim.cycles)
    }

    /// % slowdown of NACHOS vs the IDEAL oracle (how far hardware MAY
    /// checks sit from perfect disambiguation); `None` without `--ideal`.
    #[must_use]
    pub fn hw_vs_ideal_pct(&self) -> Option<f64> {
        let ideal = self.ideal.as_ref()?;
        Some(pct_slowdown(self.hw.sim.cycles, ideal.sim.cycles))
    }
}

/// A suite run: per-workload figure data plus the raw sweep (for the
/// machine-readable report).
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// One result per Table II workload, in table order.
    pub results: Vec<BenchResult>,
    /// The underlying differential sweep.
    pub sweep: SweepResult,
}

/// The sweep configuration the experiment matrix uses: the paper's three
/// backends plus NACHOS-SW under the baseline compiler. With `ideal`,
/// the IDEAL oracle column is appended last (the `--ideal` flag), leaving
/// the default columns — and the default report — untouched.
#[must_use]
pub fn suite_config(invocations: u64, threads: usize, ideal: bool) -> SweepConfig {
    let cfg = SweepConfig::default()
        .with_invocations(invocations)
        .with_threads(threads)
        .with_variants(SweepVariant::bench_matrix());
    if ideal {
        cfg.with_ideal()
    } else {
        cfg
    }
}

/// Converts one generated workload into a sweep job.
#[must_use]
pub fn job_for(w: &Workload) -> SweepJob {
    SweepJob::new(w.spec.name, w.region.clone(), w.binding.clone())
}

/// The full 27-workload Table II suite as sweep jobs, in table order.
#[must_use]
pub fn suite_jobs() -> Vec<SweepJob> {
    nachos_workloads::generate_all()
        .iter()
        .map(job_for)
        .collect()
}

/// Resolves a report label (`"opt-lsq"`, `"nachos-sw"`, `"nachos"`,
/// `"nachos-sw-baseline"`, `"ideal"`) to its sweep variant — the sweep
/// binary's `--variants` flag.
#[must_use]
pub fn variant_by_label(label: &str) -> Option<SweepVariant> {
    let mut known = SweepVariant::bench_matrix();
    known.push(SweepVariant::ideal());
    known.into_iter().find(|v| v.label == label)
}

/// Builds a [`BenchResult`] from one job's sweep outcome, or a
/// deterministic description of why the outcome is unusable (a diverged
/// or degraded run, or a variant matrix other than
/// [`SweepVariant::bench_matrix`] plus optional ideal).
fn from_outcome(
    spec: BenchSpec,
    workload: Workload,
    outcome: JobOutcome,
) -> Result<BenchResult, String> {
    for r in &outcome.runs {
        if !r.matches_reference() {
            return Err(format!(
                "differential check failed: {} [{}] is {} ({})",
                outcome.name,
                r.variant,
                r.status,
                r.detail.as_deref().unwrap_or("diverged from the reference"),
            ));
        }
    }
    let name = outcome.name;
    let mut runs = outcome.runs;
    // The optional IDEAL oracle column is always appended last.
    let ideal = if runs.len() == 5 { runs.pop() } else { None };
    let [lsq, sw, hw, sw_baseline]: [_; 4] = runs.try_into().map_err(|_| {
        format!("{name}: bench outcomes carry the 4-variant bench matrix (plus optional ideal)")
    })?;
    let analysis_full = sw
        .try_run()?
        .analysis
        .clone()
        .ok_or_else(|| format!("{name}: NACHOS-SW run carries no analysis"))?;
    let analysis_baseline = sw_baseline
        .try_run()?
        .analysis
        .clone()
        .ok_or_else(|| format!("{name}: baseline NACHOS-SW run carries no analysis"))?;
    let ideal = match ideal {
        Some(r) => Some(r.try_run()?.clone()),
        None => None,
    };
    Ok(BenchResult {
        spec,
        workload,
        analysis_full,
        analysis_baseline,
        lsq: lsq.try_run()?.clone(),
        sw: sw.try_run()?.clone(),
        hw: hw.try_run()?.clone(),
        sw_baseline: sw_baseline.try_run()?.clone(),
        ideal,
    })
}

/// Runs one benchmark through the whole experiment matrix, or describes
/// the failing run.
///
/// # Errors
///
/// Returns the deterministic failure description when a simulation fails
/// or diverges from the reference executor.
pub fn try_run_bench(spec: &BenchSpec, invocations: u64) -> Result<BenchResult, String> {
    let workload = generate(spec);
    let cfg = suite_config(invocations, 1, false);
    let sweep = run_sweep(&[job_for(&workload)], &cfg);
    let outcome = sweep
        .jobs
        .into_iter()
        .next()
        .ok_or_else(|| format!("{}: sweep produced no job outcome", spec.name))?;
    from_outcome(*spec, workload, outcome)
}

/// Runs one benchmark through the whole experiment matrix.
///
/// # Panics
///
/// Panics if a simulation fails or diverges from the reference executor
/// (generated workloads always fit the grid). Fallible callers should
/// prefer [`try_run_bench`].
#[must_use]
pub fn run_bench(spec: &BenchSpec, invocations: u64) -> BenchResult {
    match try_run_bench(spec, invocations) {
        Ok(r) => r,
        Err(why) => panic!("{why}"),
    }
}

/// Runs the full 27-benchmark suite on `threads` workers (`0` = one per
/// available core) and returns both the figure data and the raw sweep.
///
/// # Panics
///
/// Panics if a simulation fails or diverges from the reference executor.
#[must_use]
pub fn run_suite_threads(invocations: u64, threads: usize) -> SuiteRun {
    run_suite_opts(invocations, threads, false)
}

/// Like [`run_suite_threads`], with the IDEAL oracle column opt-in (the
/// sweep binary's `--ideal` flag).
///
/// # Panics
///
/// Panics if a simulation fails or diverges from the reference executor.
/// Fallible callers should prefer [`try_run_suite_opts`].
#[must_use]
pub fn run_suite_opts(invocations: u64, threads: usize, ideal: bool) -> SuiteRun {
    match try_run_suite_opts(invocations, threads, ideal) {
        Ok(s) => s,
        Err(why) => panic!("{why}"),
    }
}

/// Like [`run_suite_opts`], but reporting the first unusable outcome as a
/// deterministic description instead of panicking.
///
/// # Errors
///
/// Returns the failure description when a simulation fails or diverges
/// from the reference executor.
pub fn try_run_suite_opts(
    invocations: u64,
    threads: usize,
    ideal: bool,
) -> Result<SuiteRun, String> {
    let workloads = nachos_workloads::generate_all();
    let jobs: Vec<SweepJob> = workloads.iter().map(job_for).collect();
    let cfg = suite_config(invocations, threads, ideal);
    let sweep = run_sweep(&jobs, &cfg);
    let results = workloads
        .into_iter()
        .zip(sweep.jobs.iter().cloned())
        .map(|(w, outcome)| from_outcome(w.spec, w, outcome))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SuiteRun { results, sweep })
}

/// Runs the full 27-benchmark suite (parallel, auto thread count).
#[must_use]
pub fn run_suite(invocations: u64) -> Vec<BenchResult> {
    run_suite_threads(invocations, 0).results
}

/// One fault-injection smoke scenario: a job carrying an injected fault
/// and the status each backend of [`SweepVariant::paper_matrix`] must
/// report (`[opt-lsq, nachos-sw, nachos]` order).
#[derive(Clone, Debug)]
pub struct SmokeScenario {
    /// The job, with its fault plan attached.
    pub job: SweepJob,
    /// Expected per-variant statuses, in paper-matrix order.
    pub expect: [RunStatus; 3],
}

/// A store forwarding into a load: every backend forwards once per
/// invocation, so forward-class faults are guaranteed an opportunity.
fn forward_job(name: &str) -> SweepJob {
    let (region, binding) = nachos::testutil::store_load_region(name);
    SweepJob::new(name, region, binding)
}

/// Two stores to one address: the compiler wires a MUST (ORDER) edge, so
/// token-class faults are guaranteed an opportunity under the MDE
/// backends.
fn token_job(name: &str) -> SweepJob {
    let mut b = RegionBuilder::new(name);
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero());
    let x = b.input();
    b.store(m.clone(), &[x]);
    let y = b.int_op(IntOp::Add, &[x]);
    b.store(m, &[y]);
    SweepJob::new(
        name,
        b.finish(),
        Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        },
    )
}

/// A MAY pair that truly conflicts every invocation, with the store's
/// data behind a deep multiply chain: skipping the conflict wait lets the
/// load observe stale memory, so a forced no-conflict verdict must
/// diverge from the reference.
fn conflicting_may_job(name: &str) -> SweepJob {
    let mut b = RegionBuilder::new(name);
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let mut v = b.input();
    for _ in 0..12 {
        v = b.int_op(IntOp::Mul, &[v]);
    }
    b.store(MemRef::unknown(u0, 0), &[v]);
    b.load(MemRef::unknown(u1, 0), &[]);
    SweepJob::new(
        name,
        b.finish(),
        Binding {
            unknowns: vec![
                UnknownPattern::Fixed(0x10_0000),
                UnknownPattern::Fixed(0x10_0000),
            ],
            ..Binding::default()
        },
    )
}

/// The fault-injection smoke suite: one scenario per fault class, each
/// with a hard status expectation. Unsafe faults must be *detected*
/// (differential divergence, protocol violation, or a diagnosed
/// deadlock); benign faults must leave every run `ok`.
#[must_use]
pub fn fault_smoke_scenarios() -> Vec<SmokeScenario> {
    use RunStatus::{Deadlock, FaultDetected, Ok, Panic};
    vec![
        SmokeScenario {
            job: forward_job("smoke-corrupt-forward").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::CorruptForward { mask: 0xff }, 0),
            )),
            expect: [FaultDetected, FaultDetected, FaultDetected],
        },
        SmokeScenario {
            job: forward_job("smoke-delay-benign").with_fault(FaultPlan::single(FaultSpec::new(
                FaultKind::DelayMem { cycles: 9 },
                0,
            ))),
            expect: [Ok, Ok, Ok],
        },
        SmokeScenario {
            job: conflicting_may_job("smoke-force-conflict-benign").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::ForceConflict, 0).on_backend(Backend::Nachos),
            )),
            expect: [Ok, Ok, Ok],
        },
        SmokeScenario {
            job: conflicting_may_job("smoke-force-no-conflict").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::ForceNoConflict, 0).on_backend(Backend::Nachos),
            )),
            expect: [Ok, Ok, FaultDetected],
        },
        SmokeScenario {
            job: token_job("smoke-drop-token").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::DropToken, 0).on_backend(Backend::NachosSw),
            )),
            expect: [Ok, Deadlock, Ok],
        },
        SmokeScenario {
            job: token_job("smoke-duplicate-token").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::DuplicateToken, 0).on_backend(Backend::NachosSw),
            )),
            expect: [Ok, FaultDetected, Ok],
        },
        SmokeScenario {
            job: forward_job("smoke-panic").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::PanicOnEvent, 0).on_backend(Backend::Nachos),
            )),
            expect: [Ok, Ok, Panic],
        },
    ]
}

/// Runs the fault-injection smoke suite and checks every expectation.
///
/// Returns the sweep plus the list of deviations (empty = suite passed):
/// wrong statuses, deadlocks without a stalled-node dump, or detected
/// faults whose injection log is empty.
#[must_use]
pub fn run_fault_smoke(threads: usize) -> (SweepResult, Vec<String>) {
    let scenarios = fault_smoke_scenarios();
    let jobs: Vec<SweepJob> = scenarios.iter().map(|s| s.job.clone()).collect();
    let cfg = SweepConfig::default()
        .with_invocations(8)
        .with_threads(threads);
    let sweep = run_sweep(&jobs, &cfg);
    let mut failures = Vec::new();
    for (s, job) in scenarios.iter().zip(&sweep.jobs) {
        for (run, &expect) in job.runs.iter().zip(&s.expect) {
            if run.status != expect {
                failures.push(format!(
                    "{} [{}]: expected {expect}, got {} ({})",
                    job.name,
                    run.variant,
                    run.status,
                    run.detail.as_deref().unwrap_or("no detail"),
                ));
                continue;
            }
            match run.status {
                RunStatus::Deadlock => {
                    let dumped = matches!(
                        &run.error,
                        Some(SimError::Deadlock(info)) if !info.stalled.is_empty()
                    );
                    if !dumped {
                        failures.push(format!(
                            "{} [{}]: deadlock without a stalled-node dump",
                            job.name, run.variant
                        ));
                    }
                }
                RunStatus::FaultDetected => {
                    let logged = !run.injected().is_empty()
                        || matches!(&run.error, Some(SimError::ProtocolViolation { .. }));
                    if !logged {
                        failures.push(format!(
                            "{} [{}]: fault detected but no injection evidence",
                            job.name, run.variant
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    (sweep, failures)
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_ref} of the NACHOS paper, HPCA 2018)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos::Backend;
    use nachos_workloads::by_name;

    #[test]
    fn run_bench_produces_consistent_matrix() {
        let spec = by_name("gzip").unwrap();
        let r = run_bench(&spec, 4);
        assert_eq!(r.lsq.sim.backend, Backend::OptLsq);
        assert_eq!(r.sw.sim.backend, Backend::NachosSw);
        assert_eq!(r.hw.sim.backend, Backend::Nachos);
        assert!(r.lsq.analysis.is_none());
        assert!(r.sw.analysis.is_some());
        // gzip is fully resolved: NACHOS == NACHOS-SW.
        assert_eq!(r.sw.sim.cycles, r.hw.sim.cycles);
    }

    #[test]
    fn slowdown_helpers_are_consistent() {
        let spec = by_name("parser").unwrap();
        let r = run_bench(&spec, 4);
        let direct = pct_slowdown(r.sw.sim.cycles, r.lsq.sim.cycles);
        assert!((r.sw_slowdown_pct() - direct).abs() < 1e-12);
    }

    #[test]
    fn fault_smoke_suite_meets_every_expectation() {
        let (sweep, failures) = run_fault_smoke(2);
        assert!(failures.is_empty(), "smoke deviations: {failures:#?}");
        assert_eq!(sweep.jobs.len(), fault_smoke_scenarios().len());
        // The smoke report is deterministic across thread counts too.
        let (serial, _) = run_fault_smoke(1);
        assert_eq!(serial.to_json(), sweep.to_json());
    }

    #[test]
    fn suite_run_carries_matching_sweep() {
        let suite = run_suite_threads(2, 2);
        assert_eq!(suite.results.len(), suite.sweep.jobs.len());
        assert!(suite.sweep.all_match());
        for (r, j) in suite.results.iter().zip(&suite.sweep.jobs) {
            assert_eq!(r.spec.name, j.name);
        }
    }
}
