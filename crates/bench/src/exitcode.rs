//! The `sweep` exit-code contract, as data.
//!
//! Earlier revisions documented codes 0–3 but folded usage errors, I/O
//! failures and worker protocol errors into one branch — so two
//! documented conditions shared an exit code and scripts could not tell
//! "you typed the flag wrong" from "the disk is full". This module is
//! the single source of truth: each code is reachable by exactly one
//! condition, asserted by the unit tests below and by the
//! `crates/bench/tests/daemon.rs` end-to-end mapping test.

use nachos::sweep::{RunStatus, SweepResult};
use std::process::ExitCode;

/// Every way a `sweep` (or `nachos-sweepd`) invocation can end, in
/// precedence order. One condition per code:
///
/// | code | verdict            | reachable by                                  |
/// |------|--------------------|-----------------------------------------------|
/// | 0    | `Success`          | every run completed (degraded cells included, without `--strict`) |
/// | 1    | `Usage`            | the invocation itself is wrong (flags, spec)  |
/// | 2    | `Divergence`       | a run mismatched the reference executor (or an `--inject smoke` expectation) |
/// | 3    | `StrictDegraded`   | `--strict` only: no mismatch, ≥1 degraded cell |
/// | 4    | `DeadlineExceeded` | the wall-clock budget cancelled the sweep     |
/// | 5    | `Environment`      | the environment failed: I/O, sockets, worker protocol |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every run completed; without `--strict`, degraded-but-
    /// deterministic cells also land here.
    Success,
    /// The invocation is wrong: unknown flag, bad value, an
    /// unresolvable matrix spec.
    Usage,
    /// At least one run mismatched the reference executor.
    Divergence,
    /// Under `--strict`: no mismatch, but at least one degraded cell.
    StrictDegraded,
    /// A `--deadline-secs` (or daemon-side) wall-clock budget expired
    /// and cancelled the remaining cells.
    DeadlineExceeded,
    /// The environment failed the run: journal/report/cache I/O, a
    /// dead daemon socket, a worker protocol error.
    Environment,
}

impl Verdict {
    /// The numeric process exit code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Verdict::Success => 0,
            Verdict::Usage => 1,
            Verdict::Divergence => 2,
            Verdict::StrictDegraded => 3,
            Verdict::DeadlineExceeded => 4,
            Verdict::Environment => 5,
        }
    }

    /// The [`ExitCode`] to return from `main`.
    #[must_use]
    pub fn exit(self) -> ExitCode {
        ExitCode::from(self.code())
    }
}

/// Counts a finished sweep's mismatched and degraded (non-ok,
/// non-mismatch) cells — the two inputs to [`classify`].
#[must_use]
pub fn counts(sweep: &SweepResult) -> (u64, u64) {
    let statuses = sweep.statuses();
    let mismatches = statuses
        .iter()
        .filter(|(_, _, s)| *s == RunStatus::Mismatch)
        .count() as u64;
    let degraded = statuses
        .iter()
        .filter(|(_, _, s)| !matches!(*s, RunStatus::Ok | RunStatus::Mismatch))
        .count() as u64;
    (mismatches, degraded)
}

/// Maps a finished sweep to its verdict. Precedence: divergence beats
/// everything (a mismatch is a correctness finding even in a truncated
/// sweep), then the deadline, then strictness.
#[must_use]
pub fn classify(mismatches: u64, degraded: u64, strict: bool, deadline_exceeded: bool) -> Verdict {
    if mismatches > 0 {
        Verdict::Divergence
    } else if deadline_exceeded {
        Verdict::DeadlineExceeded
    } else if strict && degraded > 0 {
        Verdict::StrictDegraded
    } else {
        Verdict::Success
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_is_distinct_and_stable() {
        let all = [
            Verdict::Success,
            Verdict::Usage,
            Verdict::Divergence,
            Verdict::StrictDegraded,
            Verdict::DeadlineExceeded,
            Verdict::Environment,
        ];
        for (i, v) in all.iter().enumerate() {
            assert_eq!(v.code() as usize, i, "codes are 0..=5 in declaration order");
        }
    }

    #[test]
    fn each_classified_code_has_exactly_one_condition() {
        // Success: clean, or degraded without --strict.
        assert_eq!(classify(0, 0, false, false), Verdict::Success);
        assert_eq!(classify(0, 3, false, false), Verdict::Success);
        assert_eq!(classify(0, 0, true, false), Verdict::Success);
        // Divergence: any mismatch, regardless of everything else.
        assert_eq!(classify(1, 0, false, false), Verdict::Divergence);
        assert_eq!(classify(1, 9, true, true), Verdict::Divergence);
        // DeadlineExceeded: the budget fired and nothing mismatched.
        assert_eq!(classify(0, 0, false, true), Verdict::DeadlineExceeded);
        assert_eq!(
            classify(0, 5, true, true),
            Verdict::DeadlineExceeded,
            "a truncated sweep's degraded count is an artifact of the cut, \
             so the deadline outranks strictness"
        );
        // StrictDegraded: only with --strict, degraded cells, no
        // mismatch, no deadline.
        assert_eq!(classify(0, 1, true, false), Verdict::StrictDegraded);
        // Usage and Environment are never produced by classify — they
        // are pre-sweep failures, proven distinct by construction.
        for m in [0, 1] {
            for d in [0, 1] {
                for s in [false, true] {
                    for dl in [false, true] {
                        let v = classify(m, d, s, dl);
                        assert!(!matches!(v, Verdict::Usage | Verdict::Environment));
                    }
                }
            }
        }
    }
}
