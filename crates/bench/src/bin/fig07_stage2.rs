//! Figure 7: Stage-2 refinement — inter-procedural provenance converts
//! MAY relations (from Stage 1) to NO. Top five paths per benchmark.

use nachos_alias::{analyze, StageConfig};
use nachos_workloads::generate_path;

fn main() {
    nachos_bench::banner(
        "Figure 7: Stage 2 — MAY -> NO via inter-procedural provenance",
        "Figure 7 / §V-C",
    );
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12}",
        "App", "MAY(s1)", "MAY(s2)", "refined", "%converted"
    );
    let mut benefited = 0;
    for spec in nachos_workloads::all() {
        let (mut may_before, mut may_after, mut refined) = (0usize, 0usize, 0usize);
        for path in 0..5 {
            let w = generate_path(&spec, path);
            let a = analyze(
                &w.region,
                StageConfig {
                    stage2: true,
                    stage3: false,
                    stage4: false,
                },
            );
            may_before += a.report.after_stage1.may;
            may_after += a.report.after_stage2.may;
            refined += a.report.stage2_refined;
        }
        let pct = if may_before == 0 {
            0.0
        } else {
            100.0 * refined as f64 / may_before as f64
        };
        if refined > 0 {
            benefited += 1;
        }
        println!(
            "{:<14} {:>10} {:>10} {:>12} {:>11.1}%",
            spec.name, may_before, may_after, refined, pct
        );
    }
    println!();
    println!("Workloads refined by Stage 2: {benefited} (paper: 10 of 27)");
}
