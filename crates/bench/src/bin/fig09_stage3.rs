//! Figure 9: Stage-3 simplification — the fraction of alias relations
//! retained (as MDEs) after redundancy pruning, relative to the relations
//! identified by the earlier stages. Top five paths per benchmark.

use nachos_alias::{analyze, StageConfig};
use nachos_workloads::generate_path;

fn main() {
    nachos_bench::banner(
        "Figure 9: Stage 3 — alias relations retained after simplification",
        "Figure 9 / §V-D",
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "App", "relations", "retained", "pruned", "%pruned"
    );
    let mut pcts: Vec<f64> = Vec::new();
    for spec in nachos_workloads::all() {
        // The paper's framing: the denominator is every MUST/MAY relation
        // Stage 1 determined; "retained" is what stages 2+3 still have to
        // enforce as MDEs (Figure 9 precedes the Stage-4 discussion).
        let (mut relations, mut retained, mut pruned) = (0usize, 0usize, 0usize);
        for path in 0..5 {
            let w = generate_path(&spec, path);
            let a = analyze(
                &w.region,
                StageConfig {
                    stage2: true,
                    stage3: true,
                    stage4: false,
                },
            );
            let stage1_rel = a.report.after_stage1.may + a.report.after_stage1.must;
            let enforced = a.plan.num_mdes();
            relations += stage1_rel;
            retained += enforced;
            pruned += stage1_rel.saturating_sub(enforced);
        }
        let pct = if relations == 0 {
            0.0
        } else {
            100.0 * pruned as f64 / relations as f64
        };
        if relations > 0 {
            pcts.push(pct);
        }
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>11.1}%",
            spec.name, relations, retained, pruned, pct
        );
    }
    println!();
    let overall = if pcts.is_empty() {
        0.0
    } else {
        pcts.iter().sum::<f64>() / pcts.len() as f64
    };
    println!(
        "Mean across workloads with relations: {overall:.1}% pruned \
         (paper: ~68%, up to 84% in fft-2d / 93% in histogram)"
    );
}
