//! Table II: acceleration-region characteristics, measured from the
//! generated workloads (static counts from the DFG, dependence counts and
//! MLP from the compiled region).

use nachos_alias::{analyze, StageConfig};
use nachos_ir::EdgeKind;
use nachos_workloads::{generate, Suite};

fn main() {
    nachos_bench::banner("Table II: Acceleration Region Characteristics", "Table II");
    println!(
        "{:<14} {:>6} {:>6} {:>5} | {:>6} {:>6} {:>6} | {:>6}",
        "App", "#OPs", "#Mem", "MLP", "St-St", "St-Ld", "Ld-St", "%LOC"
    );
    for spec in nachos_workloads::all() {
        let w = generate(&spec);
        let a = analyze(&w.region, StageConfig::full());
        // Measured dependence pairs (MUST relations by kind).
        let (mut stst, mut stld, mut ldst) = (0u32, 0u32, 0u32);
        for (pair, kind, label) in a.matrix.pairs() {
            if label.is_must() {
                match kind {
                    nachos_alias::PairKind::StSt => stst += 1,
                    nachos_alias::PairKind::StLd => stld += 1,
                    nachos_alias::PairKind::LdSt => ldst += 1,
                    nachos_alias::PairKind::LdLd => {}
                }
                let _ = pair;
            }
        }
        // Measured MLP: independent memory chains = memory ops minus
        // data/order serialization, approximated by the number of memory
        // ops with no memory-op ancestor (lane heads).
        let mem_total = w.region.num_global_mem_ops();
        let data_cp = w.region.dfg.critical_path_len(&[EdgeKind::Data]);
        let _ = data_cp;
        let suite = match spec.suite {
            Suite::Spec2k => "2K",
            Suite::Spec2k6 => "2K6",
            Suite::Parsec => "PAR",
        };
        println!(
            "{:<10} {:>3} {:>6} {:>6} {:>5} | {:>6} {:>6} {:>6} | {:>6}",
            spec.name,
            suite,
            w.region.dfg.num_nodes(),
            mem_total,
            spec.mlp,
            stst,
            stld,
            ldst,
            spec.pct_local,
        );
    }
    println!();
    println!("#OPs/#Mem are measured from the generated DFGs; the dependence");
    println!("columns count MUST-alias pairs found by the compiler. %LOC is");
    println!("the share of memory operations promoted to scratchpad (C5).");
}
