//! Figure 17: NACHOS energy breakdown (COMPUTE / MDEs / L1) and the net
//! energy reduction relative to OPT-LSQ.

use nachos_bench::{run_suite, DEFAULT_INVOCATIONS};

fn main() {
    nachos_bench::banner(
        "Figure 17: NACHOS energy breakdown and reduction vs OPT-LSQ",
        "Figure 17 / §VIII-B",
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} | {:>10} {:>9}",
        "App", "%COMPUTE", "%MDE", "%L1", "vs LSQ", "%mem-ops"
    );
    let results = run_suite(DEFAULT_INVOCATIONS);
    let (mut zero_overhead, mut sum_mde_pct, mut sum_saving, mut counted) = (0, 0.0, 0.0, 0);
    for r in &results {
        let e = &r.hw.sim.energy;
        let total = e.total();
        let lsq_total = r.lsq.sim.energy.total();
        let saving = if lsq_total > 0.0 {
            100.0 * (lsq_total - total) / lsq_total
        } else {
            0.0
        };
        let mde_pct = e.pct(e.mde);
        // "No energy overhead" = no dynamic MAY checks (the pay-as-you-go
        // cost); compile-time-resolved MUST tokens are 1-bit signals.
        if r.hw.sim.events.may_checks == 0 {
            zero_overhead += 1;
        }
        if total > 0.0 {
            sum_mde_pct += mde_pct;
            sum_saving += saving;
            counted += 1;
        }
        let pct_mem = 100.0 * r.workload.region.num_global_mem_ops() as f64
            / r.workload.region.dfg.num_nodes() as f64;
        println!(
            "{:<14} {:>8.1}% {:>8.1}% {:>8.1}% | {:>+9.1}% {:>8.0}%",
            r.spec.name,
            e.pct(e.compute),
            mde_pct,
            e.pct(e.l1),
            saving,
            pct_mem
        );
    }
    println!();
    println!("Workloads with zero dynamic-check overhead: {zero_overhead} (paper: 15 of 27)");
    if counted > 0 {
        println!(
            "Average MDE share of total energy: {:.1}% (paper: ~6%)",
            sum_mde_pct / f64::from(counted)
        );
        println!(
            "Average energy saving vs OPT-LSQ:  {:.1}% (paper: ~21%, range 12-40%)",
            sum_saving / f64::from(counted)
        );
    }
}
