//! The paper's headline claims, measured end-to-end. Prints a
//! paper-vs-measured comparison suitable for EXPERIMENTS.md.

use nachos_bench::{run_suite, DEFAULT_INVOCATIONS};

fn main() {
    nachos_bench::banner(
        "Summary: paper-vs-measured headline results",
        "the abstract and §VI/§VIII",
    );
    let results = run_suite(DEFAULT_INVOCATIONS);

    // NACHOS-SW vs OPT-LSQ.
    let sw_slow: Vec<_> = results
        .iter()
        .filter(|r| r.sw_slowdown_pct() > 4.0)
        .map(|r| (r.spec.name, r.sw_slowdown_pct()))
        .collect();
    let sw_fast: Vec<_> = results
        .iter()
        .filter(|r| r.sw_slowdown_pct() < -4.0)
        .map(|r| (r.spec.name, -r.sw_slowdown_pct()))
        .collect();

    // NACHOS vs OPT-LSQ.
    let hw_within = results
        .iter()
        .filter(|r| r.hw_slowdown_pct().abs() <= 2.5)
        .count();
    let hw_fast: Vec<_> = results
        .iter()
        .filter(|r| r.hw_slowdown_pct() < -2.5)
        .map(|r| (r.spec.name, -r.hw_slowdown_pct()))
        .collect();
    let hw_slow: Vec<_> = results
        .iter()
        .filter(|r| r.hw_slowdown_pct() > 2.5)
        .map(|r| (r.spec.name, r.hw_slowdown_pct()))
        .collect();

    // Energy.
    let zero_mde = results
        .iter()
        .filter(|r| r.hw.sim.events.may_checks == 0)
        .count();
    let avg = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let mde_pcts: Vec<f64> = results
        .iter()
        .map(|r| r.hw.sim.energy.pct(r.hw.sim.energy.mde))
        .collect();
    let lsq_pcts: Vec<f64> = results
        .iter()
        .map(|r| r.lsq.sim.energy.pct(r.lsq.sim.energy.lsq()))
        .collect();
    let savings: Vec<f64> = results
        .iter()
        .filter(|r| r.lsq.sim.energy.total() > 0.0)
        .map(|r| {
            100.0 * (r.lsq.sim.energy.total() - r.hw.sim.energy.total()) / r.lsq.sim.energy.total()
        })
        .collect();

    println!("claim                                      paper          measured");
    println!("-----------------------------------------  -------------  --------------------");
    println!(
        "NACHOS-SW slower than OPT-LSQ              6 apps 18-100%  {} apps, max {:.0}%",
        sw_slow.len(),
        sw_slow.iter().map(|&(_, s)| s).fold(0.0f64, f64::max)
    );
    println!(
        "NACHOS-SW faster than OPT-LSQ              ~7 apps 8-62%   {} apps, max {:.0}%",
        sw_fast.len(),
        sw_fast.iter().map(|&(_, s)| s).fold(0.0f64, f64::max)
    );
    println!("NACHOS within 2.5% of OPT-LSQ              19 apps         {hw_within} apps");
    println!(
        "NACHOS faster than OPT-LSQ                 6 apps 6-70%    {} apps, max {:.0}%",
        hw_fast.len(),
        hw_fast.iter().map(|&(_, s)| s).fold(0.0f64, f64::max)
    );
    println!(
        "NACHOS slower (fan-in contention)          2 apps ~8%      {} apps, max {:.0}%",
        hw_slow.len(),
        hw_slow.iter().map(|&(_, s)| s).fold(0.0f64, f64::max)
    );
    println!("Zero MDE energy overhead                   15 of 27        {zero_mde} of 27");
    println!(
        "MDE share of total energy (avg)            ~6%             {:.1}%",
        avg(&mde_pcts)
    );
    println!(
        "OPT-LSQ share of total energy (avg)        27%             {:.1}%",
        avg(&lsq_pcts)
    );
    println!(
        "Net energy saving of NACHOS vs OPT-LSQ     ~21% (12-40%)   {:.1}%",
        avg(&savings)
    );
    println!();
    println!("Per-benchmark detail:");
    println!(
        "{:<14} {:>10} {:>10} {:>10} | {:>8} {:>8} | {:>9} {:>7}",
        "App", "SW %slow", "HW %slow", "base %sl", "%LSQ-E", "%MDE-E", "q-events", "q-depth"
    );
    for r in &results {
        println!(
            "{:<14} {:>+9.1}% {:>+9.1}% {:>+9.1}% | {:>7.1}% {:>7.1}% | {:>9} {:>7}",
            r.spec.name,
            r.sw_slowdown_pct(),
            r.hw_slowdown_pct(),
            r.baseline_slowdown_pct(),
            r.lsq.sim.energy.pct(r.lsq.sim.energy.lsq()),
            r.hw.sim.energy.pct(r.hw.sim.energy.mde),
            r.hw.sim.queue_events,
            r.hw.sim.heap_max_depth,
        );
    }
    let (qe, qd) = results.iter().fold((0u64, 0u64), |(e, d), r| {
        (e + r.hw.sim.queue_events, d.max(r.hw.sim.heap_max_depth))
    });
    println!("NACHOS queue aggregate: {qe} events pushed, max live depth {qd}");
}
