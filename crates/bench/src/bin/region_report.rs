//! Region inspector: prints the full compiler story for one benchmark —
//! region shape, per-stage label movement, the enforced MDEs, fan-in, and
//! the three backends' timing/energy — plus an optional DOT dump.
//!
//! Usage: `cargo run --release -p nachos-bench --bin region_report -- <name> [--dot]`
//! (e.g. `183.equake`, `401.bzip2`; run without arguments to list names).

use nachos::{run_all_backends, EnergyModel, SimConfig};
use nachos_alias::{analyze, compile, may_fanin, StageConfig};
use nachos_workloads::{by_name, generate};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("available benchmarks:");
        for s in nachos_workloads::all() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(2);
    };
    let Some(spec) = by_name(name) else {
        eprintln!("unknown benchmark `{name}` — run without arguments for the list");
        std::process::exit(2);
    };
    let w = generate(&spec);
    println!("=== {} ===", spec.name);
    println!(
        "region: {} ops ({} mem, {} scratchpad), MLP target {}, {:?} cache class",
        w.region.dfg.num_nodes(),
        w.region.num_global_mem_ops(),
        w.region.num_scratchpad_ops(),
        spec.mlp,
        spec.miss,
    );

    let a = analyze(&w.region, StageConfig::full());
    let r = &a.report;
    println!();
    println!("compiler ({} tracked pairs):", r.num_pairs);
    println!(
        "  stage 1: {:>5} NO {:>5} MAY {:>5} MUST",
        r.after_stage1.no, r.after_stage1.may, r.after_stage1.must
    );
    println!(
        "  stage 2: {:>5} NO {:>5} MAY {:>5} MUST   ({} refined)",
        r.after_stage2.no, r.after_stage2.may, r.after_stage2.must, r.stage2_refined
    );
    println!(
        "  stage 4: {:>5} NO {:>5} MAY {:>5} MUST   ({} refined)",
        r.final_labels.no, r.final_labels.may, r.final_labels.must, r.stage4_refined
    );
    println!(
        "  stage 3 pruned {} relations; enforced MDEs: {} order, {} forward, {} may",
        r.pruned, r.mdes.0, r.mdes.1, r.mdes.2
    );
    let fanin = may_fanin(&a);
    if let Some(max) = fanin.iter().copied().max().filter(|&m| m > 0) {
        let hot = fanin.iter().filter(|&&f| f > 2).count();
        println!("  MAY fan-in: max {max} parents; {hot} ops with >2 parents");
    } else {
        println!("  MAY fan-in: none (fully resolved at compile time)");
    }

    let config = SimConfig::default().with_invocations(64);
    let runs = run_all_backends(&w.region, &w.binding, &config, &EnergyModel::default())
        .expect("simulate");
    println!();
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "backend", "cycles", "energy (nJ)", "L1 miss%", "forwards", "checks"
    );
    for run in &runs {
        println!(
            "{:<10} {:>10} {:>12.1} {:>9.1}% {:>10} {:>10}",
            run.sim.backend.to_string(),
            run.sim.cycles,
            run.sim.energy.total() / 1e6,
            100.0 * run.sim.l1.miss_ratio(),
            run.sim.events.forwards,
            run.sim.events.may_checks,
        );
    }

    if args.iter().any(|a| a == "--dot") {
        let mut compiled = w.region.clone();
        compile(&mut compiled, StageConfig::full());
        println!();
        println!("{}", nachos_ir::to_dot(&compiled));
    }
}
