//! Figure 10: %MEM (memory operations as a share of all operations) vs
//! %MAY (memory operations carrying a MAY label), ordered by %MAY.

use nachos_alias::{analyze, StageConfig};
use nachos_workloads::generate;

fn main() {
    nachos_bench::banner(
        "Figure 10: %MEM vs %MAY per workload (sorted by %MAY)",
        "Figure 10 / §VI",
    );
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for spec in nachos_workloads::all() {
        let w = generate(&spec);
        let a = analyze(&w.region, StageConfig::full());
        // %MAY: memory operations involved in at least one enforced MAY
        // relation.
        let fanin = nachos_alias::may_fanin(&a);
        let mut involved = vec![false; a.matrix.num_ops()];
        for (i, &f) in fanin.iter().enumerate() {
            if f > 0 {
                involved[i] = true;
            }
        }
        let ops_in_matrix: Vec<_> = a.matrix.ops().to_vec();
        for &(older, _) in &a.plan.may {
            if let Some(pos) = ops_in_matrix.iter().position(|&n| n == older) {
                involved[pos] = true;
            }
        }
        let pct_may = if involved.is_empty() {
            0.0
        } else {
            100.0 * involved.iter().filter(|&&b| b).count() as f64 / involved.len() as f64
        };
        let pct_mem =
            100.0 * w.region.num_global_mem_ops() as f64 / w.region.dfg.num_nodes() as f64;
        rows.push((spec.name.to_owned(), pct_mem, pct_may));
    }
    rows.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    println!("{:<14} {:>8} {:>8}", "App", "%MEM", "%MAY");
    for (name, mem, may) in rows {
        println!("{name:<14} {mem:>7.1}% {may:>7.1}%");
    }
    println!();
    println!("Workloads that see NACHOS-SW slowdown combine high %MEM with high %MAY;");
    println!("speedup candidates have high %MEM with near-zero %MAY (paper §VI).");
}
