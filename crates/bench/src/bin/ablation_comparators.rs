//! Ablation: comparators per `==?` site. The paper provisions one and
//! observes fan-in contention on bzip2/sar-pfa (§VII, §VIII-A); this sweep
//! shows the contention dissolving as sites gain check bandwidth.

use nachos::sweep::{run_sweep, SweepConfig, SweepJob, SweepVariant};
use nachos::{Backend, SimConfig};
use nachos_alias::StageConfig;
use nachos_workloads::{by_name, generate};

fn main() {
    nachos_bench::banner(
        "Ablation: comparators per MAY site",
        "§VII 'Why decentralized checking?'",
    );
    let apps = ["401.bzip2", "sar-pfa.", "453.povray", "fft-2d"];
    let mut jobs: Vec<SweepJob> = Vec::new();
    let mut fanins = Vec::new();
    for name in apps {
        let spec = by_name(name).expect("spec");
        let w = generate(&spec);
        let a = nachos_alias::analyze(&w.region, StageConfig::full());
        fanins.push(nachos_alias::may_fanin(&a).into_iter().max().unwrap_or(0));
        jobs.push(nachos_bench::job_for(&w));
    }

    // One parallel differential sweep per comparator provision; each
    // sweep covers all four apps under NACHOS.
    let points = [1u32, 2, 4, 8];
    let sweeps: Vec<_> = points
        .iter()
        .map(|&comparators| {
            let cfg = SweepConfig {
                sim: SimConfig {
                    comparators_per_site: comparators,
                    ..SimConfig::default()
                }
                .with_invocations(32),
                variants: vec![SweepVariant {
                    label: format!("nachos-{comparators}cmp"),
                    backend: Backend::Nachos,
                    stages: StageConfig::full(),
                }],
                ..SweepConfig::default()
            };
            run_sweep(&jobs, &cfg)
        })
        .collect();

    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "App", "fanin*", "1 cmp", "2 cmp", "4 cmp", "8 cmp"
    );
    for (i, name) in apps.iter().enumerate() {
        print!("{name:<14} {:>6}", fanins[i]);
        for sweep in &sweeps {
            let run = &sweep.jobs[i].runs[0];
            let cycles = match run.try_run() {
                Ok(r) if run.matches_reference() => r.sim.cycles,
                _ => {
                    eprintln!(
                        "{name} [{}] unusable: {} ({})",
                        run.variant,
                        run.status,
                        run.detail.as_deref().unwrap_or("diverged from reference"),
                    );
                    std::process::exit(1);
                }
            };
            print!(" {cycles:>10}");
        }
        println!();
    }
    println!();
    println!("* largest number of MAY parents any single operation faces (Fig. 14)");
}
