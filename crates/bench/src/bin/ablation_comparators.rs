//! Ablation: comparators per `==?` site. The paper provisions one and
//! observes fan-in contention on bzip2/sar-pfa (§VII, §VIII-A); this sweep
//! shows the contention dissolving as sites gain check bandwidth.

use nachos::{run_backend, Backend, EnergyModel, SimConfig};
use nachos_workloads::{by_name, generate};

fn main() {
    nachos_bench::banner(
        "Ablation: comparators per MAY site",
        "§VII 'Why decentralized checking?'",
    );
    let energy = EnergyModel::default();
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "App", "fanin*", "1 cmp", "2 cmp", "4 cmp", "8 cmp"
    );
    for name in ["401.bzip2", "sar-pfa.", "453.povray", "fft-2d"] {
        let spec = by_name(name).expect("spec");
        let w = generate(&spec);
        let a = nachos_alias::analyze(&w.region, nachos_alias::StageConfig::full());
        let max_fanin = nachos_alias::may_fanin(&a).into_iter().max().unwrap_or(0);
        print!("{name:<14} {max_fanin:>6}");
        for comparators in [1u32, 2, 4, 8] {
            let config = SimConfig {
                comparators_per_site: comparators,
                ..SimConfig::default()
            }
            .with_invocations(32);
            let run = run_backend(&w.region, &w.binding, Backend::Nachos, &config, &energy)
                .expect("simulate");
            print!(" {:>10}", run.sim.cycles);
        }
        println!();
    }
    println!();
    println!("* largest number of MAY parents any single operation faces (Fig. 14)");
}
