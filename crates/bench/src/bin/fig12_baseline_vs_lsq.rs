//! Figure 12: % slowdown of the *baseline compiler* (Stage 1 + Stage 3
//! only — no inter-procedural or polyhedral analysis) normalized to
//! OPT-LSQ. Shows why stages 2 and 4 matter.

use nachos_bench::{run_suite, DEFAULT_INVOCATIONS};

fn main() {
    nachos_bench::banner(
        "Figure 12: baseline compiler (Stage 1+3) vs OPT-LSQ",
        "Figure 12 / §VI",
    );
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>12}",
        "App", "base %slow", "full-SW %slow", "s2 gain", "s4 gain"
    );
    let results = run_suite(DEFAULT_INVOCATIONS);
    let mut over_10 = 0;
    for r in &results {
        let base = r.baseline_slowdown_pct();
        let full = r.sw_slowdown_pct();
        if base > 10.0 {
            over_10 += 1;
        }
        let s2 =
            r.sw.analysis
                .as_ref()
                .map_or(0, |a| a.report.stage2_refined);
        let s4 =
            r.sw.analysis
                .as_ref()
                .map_or(0, |a| a.report.stage4_refined);
        println!(
            "{:<14} {:>+11.1}% {:>+13.1}% {:>12} {:>12}",
            r.spec.name, base, full, s2, s4
        );
    }
    println!();
    println!("Workloads slowed >10% by the baseline compiler: {over_10} (paper: 10, max 4x)");
    println!("The gap between the two slowdown columns is what stages 2 and 4 buy.");
}
