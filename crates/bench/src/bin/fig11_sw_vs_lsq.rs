//! Figure 11: performance of NACHOS-SW normalized to OPT-LSQ.
//! Positive = % slowdown, negative = % speedup.

use nachos_bench::{run_suite, DEFAULT_INVOCATIONS};

fn main() {
    nachos_bench::banner(
        "Figure 11: NACHOS-SW vs OPT-LSQ performance",
        "Figure 11 / §VI",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "App", "LSQ cyc", "SW cyc", "%slowdown"
    );
    let results = run_suite(DEFAULT_INVOCATIONS);
    let (mut slower, mut faster) = (0, 0);
    for r in &results {
        let s = r.sw_slowdown_pct();
        if s > 4.0 {
            slower += 1;
        }
        if s < -4.0 {
            faster += 1;
        }
        println!(
            "{:<14} {:>12} {:>12} {:>+9.1}%",
            r.spec.name, r.lsq.sim.cycles, r.sw.sim.cycles, s
        );
    }
    println!();
    println!("Workloads >4% slower than OPT-LSQ:  {slower} (paper: 6, 18%-100% slower)");
    println!("Workloads >4% faster than OPT-LSQ:  {faster} (paper: ~7, 8%-62% faster)");
}
