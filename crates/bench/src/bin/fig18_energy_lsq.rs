//! Figure 18: OPT-LSQ dynamic energy breakdown (COMPUTE / LSQ-BLOOM /
//! LSQ-CAM / L1) plus the bloom-hit-rate class table.

use nachos_bench::{run_suite, DEFAULT_INVOCATIONS};

fn main() {
    nachos_bench::banner(
        "Figure 18: OPT-LSQ dynamic energy and bloom-filter behaviour",
        "Figure 18 / §VIII-C",
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} | {:>9}",
        "App", "%COMPUTE", "%BLOOM", "%CAM", "%L1", "bloom-hit"
    );
    let results = run_suite(DEFAULT_INVOCATIONS);
    let mut classes: [Vec<&str>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut lsq_share_sum = 0.0;
    for r in &results {
        let e = &r.lsq.sim.energy;
        let hit = r.lsq.sim.bloom.hit_pct();
        let class = if hit == 0.0 {
            0
        } else if hit < 10.0 {
            1
        } else if hit < 20.0 {
            2
        } else {
            3
        };
        classes[class].push(r.spec.name);
        lsq_share_sum += e.pct(e.lsq());
        println!(
            "{:<14} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% | {:>8.1}%",
            r.spec.name,
            e.pct(e.compute),
            e.pct(e.lsq_bloom),
            e.pct(e.lsq_cam),
            e.pct(e.l1),
            hit
        );
    }
    println!();
    println!(
        "Average LSQ share of total energy: {:.1}% (paper: 27% incl. L1)",
        lsq_share_sum / results.len() as f64
    );
    println!();
    println!("Bloom-hit classes (paper's table under Figure 18):");
    for (label, names) in ["0%", "0-10%", "10-20%", "20%+"].iter().zip(&classes) {
        println!("  {:>6}: {}", label, names.join(", "));
    }
}
