//! `nachos-lint` — audit every workload's compiled region for unsound
//! alias verdicts, missing ordering chains and resource hazards.
//!
//! Runs the [`nachos_alias::audit`] pass framework over the Table II
//! workloads under every compiler ablation, prints the byte-deterministic
//! `nachos-lint-v1` JSON report, and exits nonzero when any
//! Error-severity diagnostic (or dynamic collision) was found — the CI
//! gate for the soundness of the whole pipeline.

use std::process::ExitCode;

use nachos_bench::lint::{run_lint_suite, standard_configs, LintOptions};

const USAGE: &str = "\
nachos-lint: audit compiled workload regions for soundness

USAGE:
    nachos-lint [OPTIONS]

OPTIONS:
    --workload NAME      Audit a single Table II workload (default: all)
    --config NAME        Audit a single ablation: full | baseline |
                         stage1-only | no-prune (default: all)
    --differential       Also replay NO pairs through the reference
                         address walk and count dynamic collisions
    --invocations N      Invocations for the differential replay
                         (default: 64)
    --ideal              Also cross-check that the IDEAL oracle
                         lower-bounds NACHOS cycle counts per config
    --optimize           Run the certificate-carrying MDE optimizer
                         (nachos-opt) after compilation, so the CertLint
                         pass re-verifies real rewrite certificates
    --strict             Avoidable-imprecision warnings (redundant MDEs,
                         precision losses an enabled stage could decide)
                         also fail the run; losses attributed to disabled
                         ablation stages and budget advisories stay
                         advisory
    --out FILE           Write the JSON report to FILE instead of stdout
    -h, --help           Show this help
";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut options = LintOptions::default();
    let mut out_path: Option<String> = None;
    let mut strict = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => {
                let Some(v) = args.next() else {
                    return usage_error("--workload requires a name");
                };
                if nachos_workloads::by_name(&v).is_none() {
                    return usage_error(&format!("unknown workload `{v}`"));
                }
                options.workload = Some(v);
            }
            "--config" => {
                let Some(v) = args.next() else {
                    return usage_error("--config requires a name");
                };
                if !standard_configs().iter().any(|c| c.name == v) {
                    return usage_error(&format!("unknown config `{v}`"));
                }
                options.config = Some(v);
            }
            "--differential" => options.differential = true,
            "--ideal" => options.ideal = true,
            "--optimize" => options.optimize = true,
            "--strict" => strict = true,
            "--invocations" => {
                let Some(v) = args.next() else {
                    return usage_error("--invocations requires a count");
                };
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => options.invocations = n,
                    _ => return usage_error(&format!("bad invocation count `{v}`")),
                }
            }
            "--out" => {
                let Some(v) = args.next() else {
                    return usage_error("--out requires a path");
                };
                out_path = Some(v);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let report = run_lint_suite(&options);
    let json = report.to_json();
    match out_path {
        Some(path) => {
            // Atomic (tmp + rename): a crash mid-write never leaves a
            // truncated report for downstream tooling to misparse.
            if let Err(e) = nachos::json::write_atomic(std::path::Path::new(&path), &json) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("report written to {path}");
        }
        None => print!("{json}"),
    }

    let errors = report.num_errors();
    if errors > 0 {
        eprintln!("nachos-lint: {errors} error-severity finding(s)");
        return ExitCode::FAILURE;
    }
    let avoidable = report.num_strict();
    if strict && avoidable > 0 {
        eprintln!("nachos-lint: {avoidable} avoidable-imprecision finding(s) (--strict)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
