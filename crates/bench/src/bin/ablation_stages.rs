//! Ablation: every subset of the optional compiler stages (2/3/4), on the
//! workloads where each stage matters. Extends the paper's Figure 12,
//! which is the {stage 2, stage 4}-off point of this sweep.

use nachos::sweep::{run_sweep, SweepConfig, SweepJob, SweepVariant};
use nachos::{pct_slowdown, Backend, SimConfig};
use nachos_alias::StageConfig;
use nachos_workloads::{by_name, generate};

fn main() {
    nachos_bench::banner(
        "Ablation: compiler stage subsets (NACHOS-SW vs full pipeline)",
        "an extension of Figure 12",
    );
    let configs: [(&str, StageConfig); 8] = [
        (
            "s1",
            StageConfig {
                stage2: false,
                stage3: false,
                stage4: false,
            },
        ),
        (
            "s1+s2",
            StageConfig {
                stage2: true,
                stage3: false,
                stage4: false,
            },
        ),
        (
            "s1+s3",
            StageConfig {
                stage2: false,
                stage3: true,
                stage4: false,
            },
        ),
        (
            "s1+s4",
            StageConfig {
                stage2: false,
                stage3: false,
                stage4: true,
            },
        ),
        (
            "s1+s2+s3",
            StageConfig {
                stage2: true,
                stage3: true,
                stage4: false,
            },
        ),
        (
            "s1+s2+s4",
            StageConfig {
                stage2: true,
                stage3: false,
                stage4: true,
            },
        ),
        (
            "s1+s3+s4",
            StageConfig {
                stage2: false,
                stage3: true,
                stage4: true,
            },
        ),
        ("full", StageConfig::full()),
    ];
    let witnesses = ["parser", "183.equake", "histog.", "453.povray"];
    let jobs: Vec<SweepJob> = witnesses
        .iter()
        .map(|name| nachos_bench::job_for(&generate(&by_name(name).expect("spec"))))
        .collect();

    // The whole 8-config x 4-app matrix is one parallel differential
    // sweep: every stage subset becomes a NACHOS-SW variant.
    let cfg = SweepConfig {
        sim: SimConfig::default().with_invocations(32),
        variants: configs
            .iter()
            .map(|&(label, stages)| SweepVariant {
                label: label.to_owned(),
                backend: Backend::NachosSw,
                stages,
            })
            .collect(),
        ..SweepConfig::default()
    };
    let sweep = run_sweep(&jobs, &cfg);
    assert!(sweep.all_match(), "divergence: {:?}", sweep.mismatches());
    let full_idx = configs.len() - 1;

    print!("{:<10}", "config");
    for name in witnesses {
        print!(" | {name:>20}");
    }
    println!();
    println!(
        "{:-<10}{}",
        "",
        " | cycles  MDEs  %vs-full".repeat(witnesses.len())
    );

    for (ci, (label, _)) in configs.iter().enumerate() {
        print!("{label:<10}");
        for job in &sweep.jobs {
            let (run, full_cycles) = match (job.runs[ci].try_run(), job.runs[full_idx].try_run()) {
                (Ok(run), Ok(full)) => (run, full.sim.cycles),
                (Err(why), _) | (_, Err(why)) => {
                    eprintln!("{why}");
                    std::process::exit(1);
                }
            };
            let Some(analysis) = run.analysis.as_ref() else {
                eprintln!("{} [{label}]: NACHOS-SW run carries no analysis", job.name);
                std::process::exit(1);
            };
            let mdes = analysis.plan.num_mdes();
            print!(
                " | {:>7} {:>5} {:>+7.0}%",
                run.sim.cycles,
                mdes,
                pct_slowdown(run.sim.cycles, full_cycles)
            );
        }
        println!();
    }
    println!();
    println!("parser needs stage 2, equake stage 4, histogram both; stage 3");
    println!("cuts MDE counts without changing labels.");
}
