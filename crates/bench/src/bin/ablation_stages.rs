//! Ablation: every subset of the optional compiler stages (2/3/4), on the
//! workloads where each stage matters. Extends the paper's Figure 12,
//! which is the {stage 2, stage 4}-off point of this sweep.

use nachos::{pct_slowdown, run_backend_with_stages, Backend, EnergyModel, SimConfig};
use nachos_alias::{analyze, StageConfig};
use nachos_workloads::{by_name, generate};

fn main() {
    nachos_bench::banner(
        "Ablation: compiler stage subsets (NACHOS-SW vs full pipeline)",
        "an extension of Figure 12",
    );
    let configs: [(&str, StageConfig); 8] = [
        ("s1", StageConfig { stage2: false, stage3: false, stage4: false }),
        ("s1+s2", StageConfig { stage2: true, stage3: false, stage4: false }),
        ("s1+s3", StageConfig { stage2: false, stage3: true, stage4: false }),
        ("s1+s4", StageConfig { stage2: false, stage3: false, stage4: true }),
        ("s1+s2+s3", StageConfig { stage2: true, stage3: true, stage4: false }),
        ("s1+s2+s4", StageConfig { stage2: true, stage3: false, stage4: true }),
        ("s1+s3+s4", StageConfig { stage2: false, stage3: true, stage4: true }),
        ("full", StageConfig::full()),
    ];
    let witnesses = ["parser", "183.equake", "histog.", "453.povray"];
    let sim = SimConfig::default().with_invocations(32);
    let energy = EnergyModel::default();

    print!("{:<10}", "config");
    for name in witnesses {
        print!(" | {name:>20}");
    }
    println!();
    println!("{:-<10}{}", "", " | cycles  MDEs  %vs-full".repeat(witnesses.len()));

    let mut fulls = Vec::new();
    for name in witnesses {
        let w = generate(&by_name(name).expect("spec"));
        let full = run_backend_with_stages(
            &w.region, &w.binding, Backend::NachosSw, &sim, &energy, StageConfig::full(),
        )
        .expect("simulate");
        fulls.push((w, full.sim.cycles));
    }
    for (label, cfg) in configs {
        print!("{label:<10}");
        for (w, full_cycles) in &fulls {
            let a = analyze(&w.region, cfg);
            let run = run_backend_with_stages(
                &w.region, &w.binding, Backend::NachosSw, &sim, &energy, cfg,
            )
            .expect("simulate");
            print!(
                " | {:>7} {:>5} {:>+7.0}%",
                run.sim.cycles,
                a.plan.num_mdes(),
                pct_slowdown(run.sim.cycles, *full_cycles)
            );
        }
        println!();
    }
    println!();
    println!("parser needs stage 2, equake stage 4, histogram both; stage 3");
    println!("cuts MDE counts without changing labels.");
}
