//! `nachos-opt` — run the certificate-carrying MDE optimizer over the
//! Table II workloads, re-audit every rewrite, and gate on the results.
//!
//! For each workload × ablation the binary compiles the region, runs
//! [`nachos_alias::optimize`] (transitive reduction of ORDER tokens,
//! comparator-site coalescing, stage-5 MAY→NO upgrades), has the audit's
//! `CertLint` pass re-verify every rewrite certificate independently, and
//! times NACHOS-SW and NACHOS with and without the optimizer under the
//! differential equivalence check. Prints the byte-deterministic
//! `nachos-opt-v1` JSON report and exits nonzero on any certificate
//! error, divergence, or cycle regression — the CI `opt-audit` gate.
//!
//! With `--bench FILE`, additionally runs the full 27×5 sweep (the four
//! bench variants plus the IDEAL oracle), measures its wall-clock
//! throughput and steady-state heap allocations per arena-reset engine
//! run through a counting global allocator, and writes the combined
//! `nachos-bench-v2` perf artifact (the committed `BENCH_sweep.json`
//! trajectory). `--stats FILE` streams the matrix's cycle-level
//! `nachos-stats-v1` telemetry alongside.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

use nachos::{simulate_in, Backend, EnergyModel, SimArena, SimConfig};
use nachos_alias::StageConfig;
use nachos_bench::lint::standard_configs;
use nachos_bench::opt::{bench_artifact_json, run_opt_suite, OptOptions, SweepTiming};

/// Counts every heap allocation for the `--bench` artifact's allocs/run
/// column. Only the binary carries this; the workspace libraries keep
/// `forbid(unsafe_code)`.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const USAGE: &str = "\
nachos-opt: certificate-carrying MDE optimization over the workload suite

USAGE:
    nachos-opt [OPTIONS]

OPTIONS:
    --workload NAME      Optimize a single Table II workload (default: all)
    --config NAME        Optimize under a single ablation: full | baseline |
                         stage1-only | no-prune (default: all)
    --invocations N      Invocations per timing run (default: 64)
    --threads N          Worker threads for the --bench sweep (0 = auto)
    --out FILE           Write the nachos-opt-v1 report to FILE
                         instead of stdout
    --bench FILE         Also run the 27x5 sweep + throughput/allocation
                         census and write the nachos-bench-v2 perf
                         artifact to FILE
    --stats FILE         With --bench: stream the matrix's cycle-level
                         nachos-stats-v1 telemetry (stats.jsonl) to FILE
    --strict             Additionally require the acceptance thresholds:
                         >=10% ORDER edges removed or >=5% MAY upgraded,
                         and faster cycles on >=5 workloads (full suite)
    -h, --help           Show this help

EXIT CODES:
    0  every rewrite certified, no divergence, no regression
    1  usage or I/O error
    2  certificate/audit error, or an optimized run diverged from its
       unoptimized twin
    3  an optimized run regressed in cycles, or --strict thresholds unmet
";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

/// Steady-state heap allocations of one arena-reset NACHOS engine run:
/// the first run warms the arena, the second is measured.
fn allocs_per_run(w: &nachos_workloads::Workload, invocations: u64) -> u64 {
    let mut region = w.region.clone();
    let _ = nachos_alias::compile(&mut region, StageConfig::full());
    let config = SimConfig::default().with_invocations(invocations);
    let energy = EnergyModel::default();
    let mut arena = SimArena::new();
    let mut run = || {
        simulate_in(
            &mut arena,
            &region,
            &w.binding,
            Backend::Nachos,
            &config,
            &energy,
        )
        .expect("suite workloads simulate cleanly")
    };
    let _ = run();
    let before = ALLOCS.load(Ordering::Relaxed);
    let _ = run();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn write_or_print(json: &str, path: Option<&str>, what: &str) -> Result<(), ExitCode> {
    match path {
        Some(p) => {
            if let Err(e) = nachos::json::write_atomic(std::path::Path::new(p), json) {
                eprintln!("error: cannot write {p}: {e}");
                return Err(ExitCode::FAILURE);
            }
            eprintln!("{what} written to {p}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut options = OptOptions::default();
    let mut threads = 0usize;
    let mut out_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut stats_path: Option<String> = None;
    let mut strict = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => {
                let Some(v) = args.next() else {
                    return usage_error("--workload requires a name");
                };
                if nachos_workloads::by_name(&v).is_none() {
                    return usage_error(&format!("unknown workload `{v}`"));
                }
                options.workload = Some(v);
            }
            "--config" => {
                let Some(v) = args.next() else {
                    return usage_error("--config requires a name");
                };
                if !standard_configs().iter().any(|c| c.name == v) {
                    return usage_error(&format!("unknown config `{v}`"));
                }
                options.config = Some(v);
            }
            "--invocations" => {
                let Some(v) = args.next() else {
                    return usage_error("--invocations requires a count");
                };
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => options.invocations = n,
                    _ => return usage_error(&format!("bad invocation count `{v}`")),
                }
            }
            "--threads" => {
                let Some(v) = args.next() else {
                    return usage_error("--threads requires a count");
                };
                match v.parse::<usize>() {
                    Ok(n) => threads = n,
                    Err(_) => return usage_error(&format!("bad thread count `{v}`")),
                }
            }
            "--out" => {
                let Some(v) = args.next() else {
                    return usage_error("--out requires a path");
                };
                out_path = Some(v);
            }
            "--bench" => {
                let Some(v) = args.next() else {
                    return usage_error("--bench requires a path");
                };
                bench_path = Some(v);
            }
            "--stats" => {
                let Some(v) = args.next() else {
                    return usage_error("--stats requires a path");
                };
                stats_path = Some(v);
            }
            "--strict" => strict = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if bench_path.is_some() && (options.workload.is_some() || options.config.is_some()) {
        return usage_error("--bench covers the full suite; it takes no --workload/--config");
    }
    if stats_path.is_some() && bench_path.is_none() {
        return usage_error("--stats requires --bench (it streams the bench matrix)");
    }

    let report = run_opt_suite(&options);
    if let Err(code) = write_or_print(&report.to_json(), out_path.as_deref(), "report") {
        return code;
    }

    if let Some(path) = &bench_path {
        let t0 = std::time::Instant::now();
        let suite = match nachos_bench::try_run_suite_opts(options.invocations, threads, true) {
            Ok(s) => s,
            Err(why) => {
                eprintln!("error: bench sweep failed: {why}");
                return ExitCode::FAILURE;
            }
        };
        let wall = t0.elapsed().as_secs_f64();
        let runs = suite
            .results
            .len()
            .saturating_mul(suite.sweep.variants.len()) as u64;
        let timing = SweepTiming {
            runs,
            wall_seconds: wall,
        };
        eprintln!(
            "bench sweep: {runs} runs in {wall:.3}s ({:.1} runs/sec)",
            if wall > 0.0 { runs as f64 / wall } else { 0.0 },
        );
        let allocs: Vec<(String, u64)> = suite
            .results
            .iter()
            .map(|r| {
                (
                    r.spec.name.to_owned(),
                    allocs_per_run(&r.workload, options.invocations),
                )
            })
            .collect();
        let artifact =
            bench_artifact_json(&suite, &report, &allocs, options.invocations, Some(timing));
        if let Err(code) = write_or_print(&artifact, Some(path.as_str()), "perf artifact") {
            return code;
        }
        if let Some(stats) = &stats_path {
            let jobs = nachos_bench::suite_jobs();
            let cfg = nachos_bench::suite_config(options.invocations, 1, true);
            match nachos_bench::stats::write_stats_stream(stats, &jobs, &cfg) {
                Ok(n) => eprintln!("stats stream: {n} runs written to {stats}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let cert_errors = report.num_cert_errors();
    let divergences = report.num_divergences();
    if cert_errors + divergences > 0 {
        eprintln!("nachos-opt: {cert_errors} certificate error(s), {divergences} divergence(s)");
        return ExitCode::from(2);
    }
    let regressions = report.num_regressions();
    if regressions > 0 {
        eprintln!("nachos-opt: {regressions} cycle regression(s)");
        return ExitCode::from(3);
    }
    if strict {
        let order = report.order_removed_fraction();
        let may = report.may_upgraded_fraction();
        let improved = report.improved_workloads();
        if order < 0.10 && may < 0.05 {
            eprintln!(
                "nachos-opt: --strict: removed {:.1}% of ORDER edges and upgraded {:.1}% of \
                 MAY edges; neither meets the bar (10% / 5%)",
                order * 100.0,
                may * 100.0,
            );
            return ExitCode::from(3);
        }
        if improved < 5 {
            eprintln!("nachos-opt: --strict: cycles improved on only {improved} workload(s) (< 5)");
            return ExitCode::from(3);
        }
        eprintln!(
            "nachos-opt: removed {:.1}% of ORDER edges, upgraded {:.1}% of MAY edges, \
             improved {improved} workloads",
            order * 100.0,
            may * 100.0,
        );
    }
    ExitCode::SUCCESS
}
