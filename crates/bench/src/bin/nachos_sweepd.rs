//! `nachos-sweepd` — the resident sweep job service.
//!
//! Server mode binds a Unix domain socket and serves the
//! `nachos-jobs-v1` protocol (see `DESIGN.md §12`): clients submit
//! sweep matrices, watch job state, and fetch `nachos-sweep-v4`
//! reports. Every job transition is journaled durably under `--root`,
//! so `kill -9` + restart resumes every in-flight job and reproduces
//! its report byte-for-byte.
//!
//! ```text
//! nachos-sweepd --socket /tmp/nachos.sock --root /tmp/nachos-jobs
//! ```
//!
//! Control mode (`--ctl CMD`) is a one-shot client for scripts and CI:
//! it sends one request, prints the raw JSON response line to stdout,
//! and exits 0 iff the daemon answered `"ok": true`.
//!
//! ```text
//! nachos-sweepd --ctl ping   --socket /tmp/nachos.sock
//! nachos-sweepd --ctl submit --socket /tmp/nachos.sock --spec '{"invocations": 8}'
//! nachos-sweepd --ctl status --socket /tmp/nachos.sock --job 1
//! nachos-sweepd --ctl drain  --socket /tmp/nachos.sock
//! ```
//!
//! Exit codes follow the sweep contract: 0 success, 1 usage error,
//! 5 environment failure (socket, state directory, journal I/O).

use nachos::sweep::daemon::{Daemon, DaemonConfig, JobStatus, MatrixSpec};
use nachos::sweep::journal::parse_json;
use nachos_bench::exitcode::Verdict;
use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: nachos-sweepd --socket PATH --root DIR [--capacity N] \
                     [--retry-after-ms MS] [--poll-ms MS]\n\
       nachos-sweepd --ctl CMD --socket PATH [--job N] [--spec JSON]";

const HELP: &str = "\
The resident NACHOS sweep job service (protocol nachos-jobs-v1).

Server mode:
  --socket PATH        Unix domain socket to serve on (required)
  --root DIR           durable state directory: job journal, per-job
                       run journals, reports (required)
  --capacity N         admission bound: at most N jobs queued at once;
                       submissions past it get a structured queue_full
                       rejection with a retry_after_ms hint (default 16)
  --retry-after-ms MS  the backoff hint in queue_full rejections
                       (default 500)
  --poll-ms MS         internal poll cadence; liveness only, never
                       observable in journaled bytes (default 25)

The server runs until a client sends drain (finish every admitted job,
then exit 0) or shutdown (requeue the in-flight job durably, then exit
0). kill -9 is always safe: restarting over the same --root resumes
every job from its journal.

Control mode (one-shot client):
  --ctl CMD            one of: ping, list, status, watch, fetch,
                       cancel, submit, drain, shutdown
  --job N              job id (status/watch/fetch/cancel)
  --spec JSON          matrix spec object for submit (default: the
                       full 27-workload default matrix)

Prints the raw response line(s) to stdout. Exit codes: 0 the daemon
answered ok (for watch: the job settled), 1 usage error, 4 watch ended
in deadline_exceeded, 5 environment or daemon-side failure.
";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    Verdict::Usage.exit()
}

fn environment_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    Verdict::Environment.exit()
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut socket: Option<String> = None;
    let mut root: Option<String> = None;
    let mut capacity = 16usize;
    let mut retry_after_ms = 500u64;
    let mut poll_ms = 25u64;
    let mut ctl: Option<String> = None;
    let mut job: Option<u64> = None;
    let mut spec_json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--help" {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        let Some(value) = args.next() else {
            return usage_error(&format!("{a} requires a value"));
        };
        match a.as_str() {
            "--socket" => socket = Some(value),
            "--root" => root = Some(value),
            "--capacity" => match value.parse() {
                Ok(n) => capacity = n,
                Err(_) => return usage_error(&format!("--capacity takes a count, got {value:?}")),
            },
            "--retry-after-ms" => match value.parse() {
                Ok(ms) => retry_after_ms = ms,
                Err(_) => {
                    return usage_error(&format!(
                        "--retry-after-ms takes milliseconds, got {value:?}"
                    ))
                }
            },
            "--poll-ms" => match value.parse() {
                Ok(ms) => poll_ms = ms,
                Err(_) => {
                    return usage_error(&format!("--poll-ms takes milliseconds, got {value:?}"))
                }
            },
            "--ctl" => ctl = Some(value),
            "--job" => match value.parse() {
                Ok(n) => job = Some(n),
                Err(_) => return usage_error(&format!("--job takes a job id, got {value:?}")),
            },
            "--spec" => spec_json = Some(value),
            other => return usage_error(&format!("unknown argument: {other}")),
        }
    }
    let Some(socket) = socket else {
        return usage_error("--socket PATH is required");
    };

    if let Some(cmd) = ctl {
        return run_ctl(&socket, &cmd, job, spec_json.as_deref());
    }

    let Some(root) = root else {
        return usage_error("server mode requires --root DIR");
    };
    let mut cfg = DaemonConfig::new(root, &socket);
    cfg.capacity = capacity;
    cfg.retry_after_ms = retry_after_ms;
    cfg.poll = Duration::from_millis(poll_ms.max(1));
    let daemon = match Daemon::open(cfg, Arc::new(nachos_bench::matrix::resolve)) {
        Ok(d) => d,
        Err(e) => return environment_error(&format!("cannot open daemon state: {e}")),
    };
    let snaps = daemon.list();
    let queued = snaps
        .iter()
        .filter(|s| s.status == JobStatus::Queued)
        .count();
    eprintln!(
        "nachos-sweepd: {} jobs recovered ({} queued, {} unreadable journal lines), serving on {}",
        snaps.len(),
        queued,
        daemon.log_skipped(),
        socket,
    );
    match daemon.serve() {
        Ok(()) => {
            eprintln!("nachos-sweepd: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => environment_error(&format!("cannot serve on {socket}: {e}")),
    }
}

/// One-shot control client: send one request line, relay the response.
fn run_ctl(socket: &str, cmd: &str, job: Option<u64>, spec_json: Option<&str>) -> ExitCode {
    let needs_job = matches!(cmd, "status" | "watch" | "fetch" | "cancel");
    if !needs_job && !matches!(cmd, "ping" | "list" | "submit" | "drain" | "shutdown") {
        return usage_error(&format!("--ctl knows no command {cmd:?}"));
    }
    if needs_job && job.is_none() {
        return usage_error(&format!("--ctl {cmd} requires --job N"));
    }
    let spec = match spec_json {
        Some(text) => match parse_json(text).as_ref().and_then(MatrixSpec::from_json) {
            Some(s) => Some(s),
            None => return usage_error("--spec is not a valid matrix spec object"),
        },
        None => None,
    };
    let mut request = format!("{{\"jobs\": \"nachos-jobs-v1\", \"cmd\": \"{cmd}\"");
    if let Some(id) = job {
        request.push_str(&format!(", \"job\": {id}"));
    }
    if cmd == "submit" {
        let spec = spec.unwrap_or_default();
        request.push_str(&format!(", \"spec\": {}", spec.to_json()));
    }
    request.push_str("}\n");

    let stream = match UnixStream::connect(socket) {
        Ok(s) => s,
        Err(e) => return environment_error(&format!("cannot connect to {socket}: {e}")),
    };
    let Ok(read_half) = stream.try_clone() else {
        return environment_error("cannot clone socket stream");
    };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    if let Err(e) = out.write_all(request.as_bytes()) {
        return environment_error(&format!("cannot send request: {e}"));
    }
    // `watch` streams one line per state change; everything else
    // answers exactly once. Either way: relay every line, judge the
    // last one.
    let mut last = String::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                print!("{line}");
                last = line;
                if cmd != "watch" {
                    break;
                }
            }
            Err(e) => return environment_error(&format!("connection lost: {e}")),
        }
    }
    let Some(resp) = parse_json(last.trim()) else {
        return environment_error("daemon sent no parseable response");
    };
    let ok = resp
        .get("ok")
        .is_some_and(|v| matches!(v, nachos::sweep::journal::Json::Bool(true)));
    if cmd == "watch" && ok {
        // The stream's last state is the job's terminal state.
        match resp
            .get("state")
            .and_then(nachos::sweep::journal::Json::as_str)
        {
            Some("settled") => return ExitCode::SUCCESS,
            Some("deadline_exceeded") => return Verdict::DeadlineExceeded.exit(),
            _ => return Verdict::Environment.exit(),
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        Verdict::Environment.exit()
    }
}
