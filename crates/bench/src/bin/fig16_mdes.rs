//! Figure 16: memory dependency edges enforced by the full NACHOS
//! compiler relative to the baseline compiler (Stage 1 + Stage 3 only),
//! with the absolute number of MDEs per workload.

use nachos_alias::{analyze, StageConfig};
use nachos_workloads::generate;

fn main() {
    nachos_bench::banner(
        "Figure 16: MDEs enforced — NACHOS vs baseline compiler",
        "Figure 16 / §VIII-B",
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "App", "base MDEs", "nachos", "ratio", "MAY", "MUST"
    );
    let (mut total_mdes, mut with_mdes) = (0usize, 0usize);
    for spec in nachos_workloads::all() {
        let w = generate(&spec);
        let full = analyze(&w.region, StageConfig::full());
        let base = analyze(&w.region, StageConfig::baseline());
        let nachos_mdes = full.plan.num_mdes();
        let base_mdes = base.plan.num_mdes();
        let ratio = if base_mdes == 0 {
            if nachos_mdes == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            nachos_mdes as f64 / base_mdes as f64
        };
        if nachos_mdes > 0 {
            total_mdes += nachos_mdes;
            with_mdes += 1;
        }
        println!(
            "{:<14} {:>10} {:>10} {:>10.2} {:>10} {:>10}",
            spec.name,
            base_mdes,
            nachos_mdes,
            ratio,
            full.plan.may.len(),
            full.plan.order.len() + full.plan.forward.len(),
        );
    }
    println!();
    if let Some(avg) = total_mdes.checked_div(with_mdes) {
        println!("Average MDEs across workloads that need them: {avg} (paper: ~54; max ~296)");
    }
}
