//! Appendix: limits of decentralized checking. Evaluates the analytic
//! model `TOT_nachos/TOT_lsq = (Pairs_MAY/N)·(E_MAY/E_lsq)` on every
//! workload and cross-checks it against the simulator's measured energy.

use nachos::DecentralizedModel;
use nachos_bench::{run_suite, DEFAULT_INVOCATIONS};

fn main() {
    nachos_bench::banner(
        "Appendix: decentralized-checking energy model",
        "the Appendix equations",
    );
    let model = DecentralizedModel::default();
    println!(
        "Break-even MAY parents per memory op: {:.1} (paper: 6)",
        model.breakeven_may_per_op()
    );
    println!();
    println!(
        "{:<14} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "App", "#MEM", "MAY-MDEs", "MAY/op", "model ratio", "measured"
    );
    let results = run_suite(DEFAULT_INVOCATIONS);
    let mut exceeds = 0;
    for r in &results {
        let n = r.workload.region.num_global_mem_ops();
        if n == 0 {
            continue;
        }
        let may = r.analysis_full.plan.may.len();
        let per_op = may as f64 / n as f64;
        if per_op >= 1.0 {
            exceeds += 1;
        }
        let ratio = model.energy_ratio(may, n);
        // Measured: NACHOS disambiguation energy over the LSQ's.
        let measured = if r.lsq.sim.energy.lsq() > 0.0 {
            r.hw.sim.energy.mde / r.lsq.sim.energy.lsq()
        } else {
            0.0
        };
        println!(
            "{:<14} {:>8} {:>8} {:>12.2} {:>12.3} {:>12.3}",
            r.spec.name, n, may, per_op, ratio, measured
        );
    }
    println!();
    println!(
        "Workloads with >= 1 MAY alias per memory op: {exceeds} \
         (paper: 7 — bzip2, soplex, povray, fft, freqmine, sar, histogram)"
    );
    println!("Ratios below 1.0 mean decentralized checking is profitable.");
}
