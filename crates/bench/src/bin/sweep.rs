//! The machine-readable sweep: runs the full 27-workload × 4-variant
//! differential matrix on the parallel harness and emits the JSON report
//! (schema `nachos-sweep-v1`).
//!
//! Usage: `sweep [--threads N] [--invocations N] [--out FILE]`
//! (defaults: auto threads, 64 invocations, stdout).

use std::process::ExitCode;

const USAGE: &str = "usage: sweep [--threads N] [--invocations N] [--out FILE]";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut threads = 0usize;
    let mut invocations = nachos_bench::DEFAULT_INVOCATIONS;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let Some(value) = (match a.as_str() {
            "--threads" | "--invocations" | "--out" => args.next(),
            other => return usage_error(&format!("unknown argument: {other}")),
        }) else {
            return usage_error(&format!("{a} requires a value"));
        };
        match a.as_str() {
            "--threads" => match value.parse() {
                Ok(n) => threads = n,
                Err(_) => return usage_error(&format!("--threads takes a count, got {value:?}")),
            },
            "--invocations" => match value.parse() {
                Ok(n) => invocations = n,
                Err(_) => {
                    return usage_error(&format!("--invocations takes a count, got {value:?}"))
                }
            },
            _ => out = Some(value),
        }
    }

    let suite = nachos_bench::run_suite_threads(invocations, threads);
    let json = suite.sweep.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("writing the report file");
            eprintln!(
                "wrote {} jobs x {} variants to {path}",
                suite.sweep.jobs.len(),
                suite.sweep.variants.len()
            );
        }
        None => print!("{json}"),
    }
    if suite.sweep.all_match() {
        ExitCode::SUCCESS
    } else {
        // Unreachable today (run_suite_threads panics on divergence), but
        // keeps the bin honest if that policy ever loosens.
        eprintln!("DIVERGENCE: {:?}", suite.sweep.mismatches());
        ExitCode::FAILURE
    }
}
