//! The machine-readable sweep: runs the full 27-workload × 4-variant
//! differential matrix on the parallel harness and emits the JSON report
//! (schema `nachos-sweep-v4`).
//!
//! Crash-recoverable orchestration: with `--journal FILE` every completed
//! run is fsynced to an append-only JSONL journal as it finishes, and
//! `--resume` replays completed runs from that journal instead of
//! re-executing them — after a crash or a kill, the resumed sweep
//! produces a report byte-identical to an uninterrupted one. `--max-retries N`
//! retries transient per-run failures (panic/deadlock/error) under
//! deterministically derived seeds before giving up (a run panicking
//! through its whole budget is reported as `quarantined`).
//!
//! Process isolation: `--shards N` partitions the matrix by run key and
//! executes each shard in a separate worker OS process (this binary
//! re-invoked with `--shard-exec`), so an abort, OOM kill or segfault in
//! one cell costs one worker, not the campaign. The supervisor watches
//! per-shard journals for heartbeat growth, respawns dead or silent
//! workers under deterministic backoff, merges every shard into the
//! `--journal` file and emits a report byte-identical to a
//! single-process run. `--cache PATH` adds a persistent cross-campaign
//! result cache keyed by the same content hashes (`default` picks
//! `$XDG_CACHE_HOME/nachos/sweep`).
//!
//! `--filter SUBSTR` keeps only workloads whose name contains the
//! substring; `--variants a,b,c` selects report columns by label from
//! {opt-lsq, nachos-sw, nachos, nachos-sw-baseline, ideal}.
//!
//! `--poison NAME` injects a deterministic panic-on-event fault into the
//! named workload — every one of its runs panics on every attempt, so
//! with a retry budget it exercises the whole worker-supervision path
//! (retry, respawn, quarantine) while the other workloads complete
//! untouched. The CI soak-resume job kills exactly such a sweep
//! mid-flight and diffs the resumed report against a clean one.
//!
//! With `--inject smoke`, runs the fault-injection smoke suite instead:
//! one crafted scenario per fault class, each with a hard per-backend
//! status expectation (unsafe faults detected, benign faults result-
//! neutral, dropped tokens diagnosed as deadlocks). Exits non-zero on any
//! deviation.
//!
//! With `--ideal`, the IDEAL oracle (perfect disambiguation, the paper's
//! Figure 9 upper bound) is appended as a fifth variant column; without
//! it the report is byte-identical to the default four-variant matrix.
//!
//! With `--optimize`, every MDE run compiles through the
//! certificate-carrying `nachos-opt` optimizer (audit-gated by
//! `CertLint`) and reports its rewrite ledger per run; the flag is part
//! of the run fingerprint, so journals and caches never mix optimized
//! and unoptimized results.
//!
//! Reports land atomically (`<out>.tmp` + rename): a crash mid-write
//! never leaves a truncated report behind. Run `sweep --help` for the
//! exit-code contract.

use nachos::json::write_atomic;
use nachos::sweep::cache::ResultCache;
use nachos::sweep::shard::{run_shard_worker, run_sweep_sharded, ShardConfig};
use nachos::sweep::{journal::Journal, run_sweep_journaled, RunStatus, SweepResult};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: sweep [--threads N] [--invocations N] [--out FILE] [--ideal] \
                     [--optimize] [--journal FILE] [--resume] [--max-retries N] \
                     [--filter SUBSTR] [--variants LIST] [--poison NAME] [--inject smoke] \
                     [--shards N] [--cache PATH|default] [--heartbeat-interval MS] \
                     [--stats FILE] [--strict] [--shard-exec] [--help]";

const HELP: &str = "\
The NACHOS differential sweep harness.

Flags:
  --threads N             worker threads for in-process execution (0 = auto)
  --invocations N         accelerator invocations simulated per run
  --out FILE              write the JSON report atomically (default: stdout)
  --ideal                 append the IDEAL oracle as a fifth variant column
  --optimize              run the certificate-carrying MDE optimizer
                          (nachos-opt) after compilation in every MDE
                          run; each run then reports its rewrite ledger
  --journal FILE          fsync each completed run to an append-only journal
  --resume                replay completed runs from --journal FILE
  --max-retries N         retry budget for transient per-run failures
  --filter SUBSTR         keep only workloads whose name contains SUBSTR
  --variants LIST         comma-separated variant labels to run
  --poison NAME           inject a deterministic panic into workload NAME
  --inject smoke          run the fault-injection smoke suite instead
  --shards N              run the matrix across N worker OS processes
                          (requires --journal; report stays byte-identical
                          to a single-process run)
  --cache PATH            promote settled runs into a persistent
                          content-addressed cache at PATH and serve future
                          campaigns from it; the literal 'default' means
                          $XDG_CACHE_HOME/nachos/sweep (requires --shards)
  --heartbeat-interval MS worker liveness pulse period (0 disables; a
                          worker silent for ~10 intervals is respawned)
  --stats FILE            after the sweep, re-run the matrix serially with
                          cycle-level telemetry attached and stream the
                          nachos-stats-v1 JSONL (one run block per cell,
                          deterministic matrix order) to FILE; telemetry
                          is observation-only, so the report, journal and
                          cache fingerprints are unchanged
  --strict                degraded cells (quarantined, cancelled, panic,
                          deadlock, error, fault_detected) fail the run
  --shard-exec            internal: run as a shard worker, reading the
                          dispatch header and cell list from stdin
  --help                  this text

Exit codes:
  0  every run completed; without --strict, degraded-but-deterministic
     cells (e.g. a quarantined poison workload) also exit 0
  1  usage error, I/O error, or worker protocol error
  2  divergence: at least one run mismatched the reference executor
     (also: any --inject smoke deviation)
  3  --strict only: no mismatch, but at least one degraded cell

Cache layout and invalidation: entries live at <root>/<hh>/<key>.rec,
one checksum-framed record per file, where <key> is the 16-hex FNV-1a
content hash of (region, binding, variant, fault plan, simulator
config) and <hh> its first byte. Any input change changes the key, so
stale entries are never served — they are merely unreachable. Only
settled statuses (ok, mismatch, fault_detected) are cached; corrupt
entries are detected by checksum, removed, and re-executed.
";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// Maps a finished sweep to the documented exit contract: mismatches are
/// exit 2 always; other degradations are exit 3 under `--strict` and
/// exit 0 otherwise.
fn verdict(sweep: &SweepResult, strict: bool) -> ExitCode {
    let statuses = sweep.statuses();
    if statuses.iter().any(|(_, _, s)| *s == RunStatus::Mismatch) {
        return ExitCode::from(2);
    }
    if strict && statuses.iter().any(|(_, _, s)| *s != RunStatus::Ok) {
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}

/// Rebuilds the job list the standard sweep ran, for the `--stats` pass.
fn stats_jobs(filter: &Option<String>, poison: &Option<String>) -> Vec<nachos::sweep::SweepJob> {
    let mut jobs = nachos_bench::suite_jobs();
    if let Some(f) = filter {
        jobs.retain(|j| j.name.contains(f.as_str()));
    }
    if let Some(name) = poison {
        if let Some(job) = jobs.iter_mut().find(|j| &j.name == name) {
            job.fault = nachos::FaultPlan::single(nachos::FaultSpec::new(
                nachos::FaultKind::PanicOnEvent,
                0,
            ));
        }
    }
    jobs
}

/// Rebuilds the matrix configuration the standard sweep ran, for the
/// `--stats` pass (serial by construction, so threads are irrelevant).
fn stats_cfg(
    invocations: u64,
    variant_list: &Option<String>,
    ideal: bool,
    optimize: bool,
) -> nachos::sweep::SweepConfig {
    let mut cfg = nachos_bench::suite_config(invocations, 1, false);
    if let Some(list) = variant_list {
        let variants: Vec<_> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .filter_map(nachos_bench::variant_by_label)
            .collect();
        if !variants.is_empty() {
            cfg = cfg.with_variants(variants);
        }
    }
    if ideal && !cfg.variants.iter().any(|v| v.label == "ideal") {
        cfg = cfg.with_ideal();
    }
    if optimize {
        cfg = cfg.with_optimize(true);
    }
    cfg
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut threads = 0usize;
    let mut invocations = nachos_bench::DEFAULT_INVOCATIONS;
    let mut out: Option<String> = None;
    let mut inject: Option<String> = None;
    let mut ideal = false;
    let mut optimize = false;
    let mut journal_path: Option<String> = None;
    let mut resume = false;
    let mut max_retries = 0u32;
    let mut filter: Option<String> = None;
    let mut variant_list: Option<String> = None;
    let mut poison: Option<String> = None;
    let mut shards = 0usize;
    let mut shard_exec = false;
    let mut cache_arg: Option<String> = None;
    let mut heartbeat_ms = 200u64;
    let mut stats_path: Option<String> = None;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--ideal" => {
                ideal = true;
                continue;
            }
            "--optimize" => {
                optimize = true;
                continue;
            }
            "--resume" => {
                resume = true;
                continue;
            }
            "--shard-exec" => {
                shard_exec = true;
                continue;
            }
            "--strict" => {
                strict = true;
                continue;
            }
            _ => {}
        }
        let Some(value) = (match a.as_str() {
            "--threads"
            | "--invocations"
            | "--out"
            | "--inject"
            | "--journal"
            | "--max-retries"
            | "--filter"
            | "--variants"
            | "--poison"
            | "--shards"
            | "--cache"
            | "--heartbeat-interval"
            | "--stats" => args.next(),
            other => return usage_error(&format!("unknown argument: {other}")),
        }) else {
            return usage_error(&format!("{a} requires a value"));
        };
        match a.as_str() {
            "--threads" => match value.parse() {
                Ok(n) => threads = n,
                Err(_) => return usage_error(&format!("--threads takes a count, got {value:?}")),
            },
            "--invocations" => match value.parse() {
                Ok(n) => invocations = n,
                Err(_) => {
                    return usage_error(&format!("--invocations takes a count, got {value:?}"))
                }
            },
            "--max-retries" => match value.parse() {
                Ok(n) => max_retries = n,
                Err(_) => {
                    return usage_error(&format!("--max-retries takes a count, got {value:?}"))
                }
            },
            "--shards" => match value.parse() {
                Ok(n) => shards = n,
                Err(_) => return usage_error(&format!("--shards takes a count, got {value:?}")),
            },
            "--heartbeat-interval" => match value.parse() {
                Ok(ms) => heartbeat_ms = ms,
                Err(_) => {
                    return usage_error(&format!(
                        "--heartbeat-interval takes milliseconds, got {value:?}"
                    ))
                }
            },
            "--inject" => inject = Some(value),
            "--journal" => journal_path = Some(value),
            "--filter" => filter = Some(value),
            "--variants" => variant_list = Some(value),
            "--poison" => poison = Some(value),
            "--cache" => cache_arg = Some(value),
            "--stats" => stats_path = Some(value),
            _ => out = Some(value),
        }
    }
    if resume && journal_path.is_none() {
        return usage_error("--resume requires --journal FILE");
    }
    if shards > 0 && journal_path.is_none() {
        return usage_error("--shards requires --journal FILE (the merge target)");
    }
    if cache_arg.is_some() && shards == 0 && !shard_exec {
        return usage_error("--cache requires --shards N");
    }
    if shard_exec && (shards > 0 || journal_path.is_some() || out.is_some() || inject.is_some()) {
        return usage_error(
            "--shard-exec is the worker side: it takes its journal from the dispatch \
             header, not from --shards/--journal/--out/--inject",
        );
    }
    if inject.is_some() && shards > 0 {
        return usage_error("--inject smoke runs in-process; it takes no --shards");
    }
    if stats_path.is_some() && (inject.is_some() || shard_exec) {
        return usage_error("--stats applies to the standard sweep");
    }

    let (json, summary, code) = match inject.as_deref() {
        Some("smoke") if ideal => {
            return usage_error("--ideal applies to the standard sweep, not --inject smoke")
        }
        Some("smoke") if optimize => {
            return usage_error("--optimize applies to the standard sweep, not --inject smoke")
        }
        Some("smoke") => {
            let (sweep, failures) = nachos_bench::run_fault_smoke(threads);
            for f in &failures {
                eprintln!("SMOKE DEVIATION: {f}");
            }
            let statuses: Vec<String> = sweep
                .statuses()
                .iter()
                .map(|(job, variant, status)| format!("{job} [{variant}] {status}"))
                .collect();
            let code = if failures.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
            (
                sweep.to_json(),
                format!(
                    "fault-injection smoke: {} runs, {} deviations\n{}",
                    statuses.len(),
                    failures.len(),
                    statuses.join("\n"),
                ),
                code,
            )
        }
        Some(other) => return usage_error(&format!("--inject knows 'smoke', got {other:?}")),
        None => {
            let mut jobs = nachos_bench::suite_jobs();
            if let Some(f) = &filter {
                jobs.retain(|j| j.name.contains(f.as_str()));
                if jobs.is_empty() {
                    return usage_error(&format!("--filter {f:?} matches no workload"));
                }
            }
            if let Some(name) = &poison {
                let Some(job) = jobs.iter_mut().find(|j| &j.name == name) else {
                    return usage_error(&format!("--poison knows no workload {name:?}"));
                };
                job.fault = nachos::FaultPlan::single(nachos::FaultSpec::new(
                    nachos::FaultKind::PanicOnEvent,
                    0,
                ));
            }
            let mut cfg = nachos_bench::suite_config(invocations, threads, false);
            if let Some(list) = &variant_list {
                let mut variants = Vec::new();
                for label in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    match nachos_bench::variant_by_label(label) {
                        Some(v) => variants.push(v),
                        None => {
                            return usage_error(&format!("--variants knows no label {label:?}"))
                        }
                    }
                }
                if variants.is_empty() {
                    return usage_error("--variants requires at least one label");
                }
                cfg = cfg.with_variants(variants);
            }
            if ideal && !cfg.variants.iter().any(|v| v.label == "ideal") {
                cfg = cfg.with_ideal();
            }
            if optimize {
                cfg = cfg.with_optimize(true);
            }
            cfg = cfg.with_retries(max_retries);

            // Worker mode: execute the shard streamed over stdin and
            // exit — no report of its own.
            if shard_exec {
                return match run_shard_worker(&jobs, &cfg, std::io::stdin()) {
                    Ok(s) => {
                        eprintln!(
                            "shard {}: {} executed, {} replayed, {} protocol errors{}",
                            s.shard,
                            s.executed,
                            s.replayed,
                            s.protocol_errors,
                            if s.cancelled { ", cancelled" } else { "" },
                        );
                        if s.protocol_errors > 0 {
                            ExitCode::FAILURE
                        } else {
                            ExitCode::SUCCESS
                        }
                    }
                    Err(e) => {
                        eprintln!("shard worker failed: {e}");
                        ExitCode::FAILURE
                    }
                };
            }

            if shards > 0 {
                // Supervisor mode: the journal is the merge target; the
                // workers are this binary re-invoked with --shard-exec
                // and the matrix-defining flags forwarded verbatim.
                let journal = journal_path.clone().unwrap_or_default();
                let exe = match std::env::current_exe() {
                    Ok(p) => p.display().to_string(),
                    Err(e) => {
                        eprintln!("cannot locate own executable for workers: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut worker_cmd = vec![
                    exe,
                    "--shard-exec".into(),
                    "--invocations".into(),
                    invocations.to_string(),
                    "--max-retries".into(),
                    max_retries.to_string(),
                ];
                if ideal {
                    worker_cmd.push("--ideal".into());
                }
                // The optimizer changes the compiled MDE graph, so it is
                // part of the matrix definition: workers must agree with
                // the supervisor or every fingerprint misses.
                if optimize {
                    worker_cmd.push("--optimize".into());
                }
                for (flag, v) in [
                    ("--filter", &filter),
                    ("--variants", &variant_list),
                    ("--poison", &poison),
                ] {
                    if let Some(v) = v {
                        worker_cmd.push(flag.into());
                        worker_cmd.push(v.clone());
                    }
                }
                let mut scfg = ShardConfig::new(shards, worker_cmd, &journal);
                scfg.resume = resume;
                scfg.heartbeat = Duration::from_millis(heartbeat_ms);
                scfg.silence_budget = if heartbeat_ms == 0 {
                    Duration::ZERO
                } else {
                    Duration::from_millis((heartbeat_ms * 10).max(2000))
                };
                if let Some(arg) = &cache_arg {
                    let root = if arg == "default" {
                        ResultCache::default_root()
                    } else {
                        arg.clone().into()
                    };
                    match ResultCache::open(root) {
                        Ok(c) => scfg.cache = Some(c),
                        Err(e) => {
                            eprintln!("cannot open result cache: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                let (sweep, stats, sstats) = match run_sweep_sharded(&jobs, &cfg, &scfg) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("sharded sweep failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if !sweep.all_match() {
                    eprintln!("DIVERGENCE: {:?}", sweep.mismatches());
                }
                eprintln!(
                    "orchestration: {} shards, {} workers spawned ({} respawns, {} silent kills), \
                     {} cells dispatched, {} recovered from shard journals, {} corrupt lines \
                     dropped, {} quarantined by the supervisor, {} abandoned to the inline pass",
                    sstats.shards,
                    sstats.workers_spawned,
                    sstats.respawns,
                    sstats.silent_kills,
                    sstats.dispatched,
                    sstats.recovered,
                    sstats.corrupt_lines,
                    sstats.quarantined,
                    sstats.abandoned,
                );
                if scfg.cache.is_some() {
                    eprintln!(
                        "cache: {} hits, {} misses, {} corrupt entries healed, {} stored",
                        sstats.cache.hits,
                        sstats.cache.misses,
                        sstats.cache.corrupt,
                        sstats.cache.stored,
                    );
                }
                eprintln!(
                    "merge: {} runs replayed, {} executed inline, {} journal errors",
                    stats.replayed, stats.executed, stats.journal_errors,
                );
                let summary = format!(
                    "{} jobs x {} variants",
                    sweep.jobs.len(),
                    sweep.variants.len()
                );
                (sweep.to_json(), summary, verdict(&sweep, strict))
            } else {
                let journal = match &journal_path {
                    Some(p) => {
                        let opened = if resume {
                            Journal::resume(p)
                        } else {
                            Journal::create(p)
                        };
                        match opened {
                            Ok(j) => Some(j),
                            Err(e) => {
                                eprintln!("cannot open journal {p}: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    None => None,
                };
                if let Some(j) = &journal {
                    if j.replay_len() > 0 || j.skipped() > 0 {
                        eprintln!(
                            "journal {}: {} completed runs loaded, {} unreadable lines skipped \
                             ({} corrupt)",
                            j.path().display(),
                            j.replay_len(),
                            j.skipped(),
                            j.corrupt(),
                        );
                    }
                }
                let (sweep, stats) = run_sweep_journaled(&jobs, &cfg, journal.as_ref());
                if !sweep.all_match() {
                    eprintln!("DIVERGENCE: {:?}", sweep.mismatches());
                }
                if journal.is_some() {
                    eprintln!(
                        "orchestration: {} runs replayed from the journal, {} executed, {} journal errors",
                        stats.replayed, stats.executed, stats.journal_errors,
                    );
                }
                let summary = format!(
                    "{} jobs x {} variants",
                    sweep.jobs.len(),
                    sweep.variants.len()
                );
                (sweep.to_json(), summary, verdict(&sweep, strict))
            }
        }
    };

    if let Some(path) = &stats_path {
        // The telemetry pass re-executes the matrix serially so the
        // stream order is deterministic; the sweep report above is
        // untouched (telemetry is observation-only).
        let jobs = stats_jobs(&filter, &poison);
        let cfg = stats_cfg(invocations, &variant_list, ideal, optimize);
        match nachos_bench::stats::write_stats_stream(path, &jobs, &cfg) {
            Ok(n) => eprintln!("stats stream: {n} runs written to {path}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match out {
        Some(path) => {
            if let Err(e) = write_atomic(Path::new(&path), &json) {
                eprintln!("cannot write report {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {summary} to {path}");
        }
        None => {
            print!("{json}");
            eprintln!("{summary}");
        }
    }
    code
}
