//! The machine-readable sweep: runs the full 27-workload × 4-variant
//! differential matrix on the parallel harness and emits the JSON report
//! (schema `nachos-sweep-v3`).
//!
//! Crash-recoverable orchestration: with `--journal FILE` every completed
//! run is fsynced to an append-only JSONL journal as it finishes, and
//! `--resume` replays completed runs from that journal instead of
//! re-executing them — after a crash or a kill, the resumed sweep
//! produces a report byte-identical to an uninterrupted one. `--max-retries N`
//! retries transient per-run failures (panic/deadlock/error) under
//! deterministically derived seeds before giving up (a run panicking
//! through its whole budget is reported as `quarantined`).
//!
//! `--filter SUBSTR` keeps only workloads whose name contains the
//! substring; `--variants a,b,c` selects report columns by label from
//! {opt-lsq, nachos-sw, nachos, nachos-sw-baseline, ideal}.
//!
//! `--poison NAME` injects a deterministic panic-on-event fault into the
//! named workload — every one of its runs panics on every attempt, so
//! with a retry budget it exercises the whole worker-supervision path
//! (retry, respawn, quarantine) while the other workloads complete
//! untouched. The CI soak-resume job kills exactly such a sweep
//! mid-flight and diffs the resumed report against a clean one.
//!
//! With `--inject smoke`, runs the fault-injection smoke suite instead:
//! one crafted scenario per fault class, each with a hard per-backend
//! status expectation (unsafe faults detected, benign faults result-
//! neutral, dropped tokens diagnosed as deadlocks). Exits non-zero on any
//! deviation.
//!
//! With `--ideal`, the IDEAL oracle (perfect disambiguation, the paper's
//! Figure 9 upper bound) is appended as a fifth variant column; without
//! it the report is byte-identical to the default four-variant matrix.
//!
//! Reports land atomically (`<out>.tmp` + rename): a crash mid-write
//! never leaves a truncated report behind.
//!
//! Usage: `sweep [--threads N] [--invocations N] [--out FILE] [--ideal]
//! [--journal FILE] [--resume] [--max-retries N] [--filter SUBSTR]
//! [--variants LIST] [--poison NAME] [--inject smoke]`
//! (defaults: auto threads, 64 invocations, stdout, no journal).

use nachos::json::write_atomic;
use nachos::sweep::{journal::Journal, run_sweep_journaled};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: sweep [--threads N] [--invocations N] [--out FILE] [--ideal] \
                     [--journal FILE] [--resume] [--max-retries N] [--filter SUBSTR] \
                     [--variants LIST] [--poison NAME] [--inject smoke]";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut threads = 0usize;
    let mut invocations = nachos_bench::DEFAULT_INVOCATIONS;
    let mut out: Option<String> = None;
    let mut inject: Option<String> = None;
    let mut ideal = false;
    let mut journal_path: Option<String> = None;
    let mut resume = false;
    let mut max_retries = 0u32;
    let mut filter: Option<String> = None;
    let mut variant_list: Option<String> = None;
    let mut poison: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ideal" => {
                ideal = true;
                continue;
            }
            "--resume" => {
                resume = true;
                continue;
            }
            _ => {}
        }
        let Some(value) = (match a.as_str() {
            "--threads" | "--invocations" | "--out" | "--inject" | "--journal"
            | "--max-retries" | "--filter" | "--variants" | "--poison" => args.next(),
            other => return usage_error(&format!("unknown argument: {other}")),
        }) else {
            return usage_error(&format!("{a} requires a value"));
        };
        match a.as_str() {
            "--threads" => match value.parse() {
                Ok(n) => threads = n,
                Err(_) => return usage_error(&format!("--threads takes a count, got {value:?}")),
            },
            "--invocations" => match value.parse() {
                Ok(n) => invocations = n,
                Err(_) => {
                    return usage_error(&format!("--invocations takes a count, got {value:?}"))
                }
            },
            "--max-retries" => match value.parse() {
                Ok(n) => max_retries = n,
                Err(_) => {
                    return usage_error(&format!("--max-retries takes a count, got {value:?}"))
                }
            },
            "--inject" => inject = Some(value),
            "--journal" => journal_path = Some(value),
            "--filter" => filter = Some(value),
            "--variants" => variant_list = Some(value),
            "--poison" => poison = Some(value),
            _ => out = Some(value),
        }
    }
    if resume && journal_path.is_none() {
        return usage_error("--resume requires --journal FILE");
    }

    let (json, summary, ok) = match inject.as_deref() {
        Some("smoke") if ideal => {
            return usage_error("--ideal applies to the standard sweep, not --inject smoke")
        }
        Some("smoke") => {
            let (sweep, failures) = nachos_bench::run_fault_smoke(threads);
            for f in &failures {
                eprintln!("SMOKE DEVIATION: {f}");
            }
            let statuses: Vec<String> = sweep
                .statuses()
                .iter()
                .map(|(job, variant, status)| format!("{job} [{variant}] {status}"))
                .collect();
            (
                sweep.to_json(),
                format!(
                    "fault-injection smoke: {} runs, {} deviations\n{}",
                    statuses.len(),
                    failures.len(),
                    statuses.join("\n"),
                ),
                failures.is_empty(),
            )
        }
        Some(other) => return usage_error(&format!("--inject knows 'smoke', got {other:?}")),
        None => {
            let mut jobs = nachos_bench::suite_jobs();
            if let Some(f) = &filter {
                jobs.retain(|j| j.name.contains(f.as_str()));
                if jobs.is_empty() {
                    return usage_error(&format!("--filter {f:?} matches no workload"));
                }
            }
            if let Some(name) = &poison {
                let Some(job) = jobs.iter_mut().find(|j| &j.name == name) else {
                    return usage_error(&format!("--poison knows no workload {name:?}"));
                };
                job.fault = nachos::FaultPlan::single(nachos::FaultSpec::new(
                    nachos::FaultKind::PanicOnEvent,
                    0,
                ));
            }
            let mut cfg = nachos_bench::suite_config(invocations, threads, false);
            if let Some(list) = &variant_list {
                let mut variants = Vec::new();
                for label in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    match nachos_bench::variant_by_label(label) {
                        Some(v) => variants.push(v),
                        None => {
                            return usage_error(&format!("--variants knows no label {label:?}"))
                        }
                    }
                }
                if variants.is_empty() {
                    return usage_error("--variants requires at least one label");
                }
                cfg = cfg.with_variants(variants);
            }
            if ideal && !cfg.variants.iter().any(|v| v.label == "ideal") {
                cfg = cfg.with_ideal();
            }
            cfg = cfg.with_retries(max_retries);
            let journal = match &journal_path {
                Some(p) => {
                    let opened = if resume {
                        Journal::resume(p)
                    } else {
                        Journal::create(p)
                    };
                    match opened {
                        Ok(j) => Some(j),
                        Err(e) => {
                            eprintln!("cannot open journal {p}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => None,
            };
            if let Some(j) = &journal {
                if j.replay_len() > 0 || j.skipped() > 0 {
                    eprintln!(
                        "journal {}: {} completed runs loaded, {} unreadable lines skipped",
                        j.path().display(),
                        j.replay_len(),
                        j.skipped(),
                    );
                }
            }
            let (sweep, stats) = run_sweep_journaled(&jobs, &cfg, journal.as_ref());
            let ok = sweep.all_match();
            if !ok {
                eprintln!("DIVERGENCE: {:?}", sweep.mismatches());
            }
            if journal.is_some() {
                eprintln!(
                    "orchestration: {} runs replayed from the journal, {} executed, {} journal errors",
                    stats.replayed, stats.executed, stats.journal_errors,
                );
            }
            let summary = format!(
                "{} jobs x {} variants",
                sweep.jobs.len(),
                sweep.variants.len()
            );
            (sweep.to_json(), summary, ok)
        }
    };

    match out {
        Some(path) => {
            if let Err(e) = write_atomic(Path::new(&path), &json) {
                eprintln!("cannot write report {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {summary} to {path}");
        }
        None => {
            print!("{json}");
            eprintln!("{summary}");
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
