//! The machine-readable sweep: runs the full 27-workload × 4-variant
//! differential matrix on the parallel harness and emits the JSON report
//! (schema `nachos-sweep-v4`).
//!
//! Crash-recoverable orchestration: with `--journal FILE` every completed
//! run is fsynced to an append-only JSONL journal as it finishes, and
//! `--resume` replays completed runs from that journal instead of
//! re-executing them — after a crash or a kill, the resumed sweep
//! produces a report byte-identical to an uninterrupted one. `--max-retries N`
//! retries transient per-run failures (panic/deadlock/error) under
//! deterministically derived seeds before giving up (a run panicking
//! through its whole budget is reported as `quarantined`).
//!
//! Process isolation: `--shards N` partitions the matrix by run key and
//! executes each shard in a separate worker OS process (this binary
//! re-invoked with `--shard-exec`), so an abort, OOM kill or segfault in
//! one cell costs one worker, not the campaign. The supervisor watches
//! per-shard journals for heartbeat growth, respawns dead or silent
//! workers under deterministic backoff, merges every shard into the
//! `--journal` file and emits a report byte-identical to a
//! single-process run. `--cache PATH` adds a persistent cross-campaign
//! result cache keyed by the same content hashes (`default` picks
//! `$XDG_CACHE_HOME/nachos/sweep`).
//!
//! `--deadline-secs N` puts the whole invocation under a wall-clock
//! budget: when it expires, the sweep is cancelled cooperatively through
//! the shared [`CancelToken`] (workers included), cancelled cells are
//! *not* journaled (a later `--resume` re-executes them), and the
//! process exits with the dedicated code 4 — so CI soak jobs can bound a
//! sweep without ever hanging or corrupting its journal.
//!
//! `--connect PATH` turns this binary into a thin client of a running
//! `nachos-sweepd`: the matrix-defining flags become a `nachos-jobs-v1`
//! submission, the job is watched to a terminal state (transparently
//! reconnecting if the daemon restarts mid-job), and the fetched report
//! — byte-identical to a local run of the same matrix — lands at
//! `--out`. Backpressure is honored: a `queue_full` rejection waits the
//! daemon's `retry_after_ms` hint and resubmits.
//!
//! `--filter SUBSTR` keeps only workloads whose name contains the
//! substring; `--variants a,b,c` selects report columns by label from
//! {opt-lsq, nachos-sw, nachos, nachos-sw-baseline, ideal}.
//!
//! `--poison NAME` injects a deterministic panic-on-event fault into the
//! named workload — every one of its runs panics on every attempt, so
//! with a retry budget it exercises the whole worker-supervision path
//! (retry, respawn, quarantine) while the other workloads complete
//! untouched. The CI soak-resume job kills exactly such a sweep
//! mid-flight and diffs the resumed report against a clean one.
//!
//! With `--inject smoke`, runs the fault-injection smoke suite instead:
//! one crafted scenario per fault class, each with a hard per-backend
//! status expectation (unsafe faults detected, benign faults result-
//! neutral, dropped tokens diagnosed as deadlocks). Exits non-zero on any
//! deviation.
//!
//! With `--ideal`, the IDEAL oracle (perfect disambiguation, the paper's
//! Figure 9 upper bound) is appended as a fifth variant column; without
//! it the report is byte-identical to the default four-variant matrix.
//!
//! With `--optimize`, every MDE run compiles through the
//! certificate-carrying `nachos-opt` optimizer (audit-gated by
//! `CertLint`) and reports its rewrite ledger per run; the flag is part
//! of the run fingerprint, so journals and caches never mix optimized
//! and unoptimized results.
//!
//! Reports land atomically (`<out>.tmp` + rename): a crash mid-write
//! never leaves a truncated report behind. Run `sweep --help` for the
//! exit-code contract.

use nachos::json::write_atomic;
use nachos::sweep::cache::ResultCache;
use nachos::sweep::daemon::{JobStatus, MatrixSpec};
use nachos::sweep::journal::{parse_json, Json};
use nachos::sweep::shard::{run_shard_worker, run_sweep_sharded, ShardConfig};
use nachos::sweep::{journal::Journal, run_sweep_journaled, SweepResult};
use nachos::CancelToken;
use nachos_bench::exitcode::{self, Verdict};
use nachos_bench::matrix;
use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: sweep [--threads N] [--invocations N] [--out FILE] [--ideal] \
                     [--optimize] [--journal FILE] [--resume] [--max-retries N] \
                     [--filter SUBSTR] [--variants LIST] [--poison NAME] [--inject smoke] \
                     [--shards N] [--cache PATH|default] [--heartbeat-interval MS] \
                     [--deadline-secs N] [--connect PATH] [--stats FILE] [--strict] \
                     [--shard-exec] [--help]";

const HELP: &str = "\
The NACHOS differential sweep harness.

Flags:
  --threads N             worker threads for in-process execution (0 = auto)
  --invocations N         accelerator invocations simulated per run
  --out FILE              write the JSON report atomically (default: stdout)
  --ideal                 append the IDEAL oracle as a fifth variant column
  --optimize              run the certificate-carrying MDE optimizer
                          (nachos-opt) after compilation in every MDE
                          run; each run then reports its rewrite ledger
  --journal FILE          fsync each completed run to an append-only journal
  --resume                replay completed runs from --journal FILE
  --max-retries N         retry budget for transient per-run failures
  --filter SUBSTR         keep only workloads whose name contains SUBSTR
  --variants LIST         comma-separated variant labels to run
  --poison NAME           inject a deterministic panic into workload NAME
  --inject smoke          run the fault-injection smoke suite instead
  --shards N              run the matrix across N worker OS processes
                          (requires --journal; report stays byte-identical
                          to a single-process run)
  --cache PATH            promote settled runs into a persistent
                          content-addressed cache at PATH and serve future
                          campaigns from it; the literal 'default' means
                          $XDG_CACHE_HOME/nachos/sweep (requires --shards)
  --heartbeat-interval MS worker liveness pulse period (0 disables; a
                          worker silent for ~10 intervals is respawned)
  --deadline-secs N       wall-clock budget for the whole sweep: on
                          expiry the remaining cells are cancelled
                          cooperatively (shard workers included), the
                          journal stays clean and resumable (cancelled
                          cells are never journaled), and the process
                          exits 4
  --connect PATH          run as a client of the nachos-sweepd listening
                          on the Unix socket PATH: submit this matrix,
                          watch the job to a terminal state (reconnecting
                          across daemon restarts), fetch the report to
                          --out; incompatible with the local
                          orchestration flags (--journal/--resume/
                          --shards/--cache/--inject/--stats)
  --stats FILE            after the sweep, re-run the matrix serially with
                          cycle-level telemetry attached and stream the
                          nachos-stats-v1 JSONL (one run block per cell,
                          deterministic matrix order) to FILE; telemetry
                          is observation-only, so the report, journal and
                          cache fingerprints are unchanged
  --strict                degraded cells (quarantined, cancelled, panic,
                          deadlock, error, fault_detected) fail the run
  --shard-exec            internal: run as a shard worker, reading the
                          dispatch header and cell list from stdin
  --help                  this text

Exit codes — each reachable by exactly one condition:
  0  every run completed; without --strict, degraded-but-deterministic
     cells (e.g. a quarantined poison workload) also exit 0
  1  usage error: the invocation itself is wrong (unknown flag, bad
     value, a matrix spec that resolves to nothing)
  2  divergence: at least one run mismatched the reference executor
     (under --inject smoke: at least one expectation deviation)
  3  strict degradation (--strict only): no mismatch, but at least one
     degraded cell
  4  deadline exceeded: the --deadline-secs (or daemon-side) wall-clock
     budget cancelled the sweep before it settled
  5  environment failure: journal/report/cache I/O, a worker protocol
     error, or an unreachable daemon socket

Cache layout and invalidation: entries live at <root>/<hh>/<key>.rec,
one checksum-framed record per file, where <key> is the 16-hex FNV-1a
content hash of (region, binding, variant, fault plan, simulator
config) and <hh> its first byte. Any input change changes the key, so
stale entries are never served — they are merely unreachable. Only
settled statuses (ok, mismatch, fault_detected) are cached; corrupt
entries are detected by checksum, removed, and re-executed.
";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    Verdict::Usage.exit()
}

fn environment_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    Verdict::Environment.exit()
}

/// Maps a finished sweep to the documented exit contract.
fn verdict(sweep: &SweepResult, strict: bool, deadline_hit: bool) -> ExitCode {
    let (mismatches, degraded) = exitcode::counts(sweep);
    exitcode::classify(mismatches, degraded, strict, deadline_hit).exit()
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut threads = 0usize;
    let mut invocations = nachos_bench::DEFAULT_INVOCATIONS;
    let mut out: Option<String> = None;
    let mut inject: Option<String> = None;
    let mut ideal = false;
    let mut optimize = false;
    let mut journal_path: Option<String> = None;
    let mut resume = false;
    let mut max_retries = 0u32;
    let mut filter: Option<String> = None;
    let mut variant_list: Option<String> = None;
    let mut poison: Option<String> = None;
    let mut shards = 0usize;
    let mut shard_exec = false;
    let mut cache_arg: Option<String> = None;
    let mut heartbeat_ms = 200u64;
    let mut deadline_secs = 0u64;
    let mut connect: Option<String> = None;
    let mut stats_path: Option<String> = None;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--ideal" => {
                ideal = true;
                continue;
            }
            "--optimize" => {
                optimize = true;
                continue;
            }
            "--resume" => {
                resume = true;
                continue;
            }
            "--shard-exec" => {
                shard_exec = true;
                continue;
            }
            "--strict" => {
                strict = true;
                continue;
            }
            _ => {}
        }
        let Some(value) = (match a.as_str() {
            "--threads"
            | "--invocations"
            | "--out"
            | "--inject"
            | "--journal"
            | "--max-retries"
            | "--filter"
            | "--variants"
            | "--poison"
            | "--shards"
            | "--cache"
            | "--heartbeat-interval"
            | "--deadline-secs"
            | "--connect"
            | "--stats" => args.next(),
            other => return usage_error(&format!("unknown argument: {other}")),
        }) else {
            return usage_error(&format!("{a} requires a value"));
        };
        match a.as_str() {
            "--threads" => match value.parse() {
                Ok(n) => threads = n,
                Err(_) => return usage_error(&format!("--threads takes a count, got {value:?}")),
            },
            "--invocations" => match value.parse() {
                Ok(n) => invocations = n,
                Err(_) => {
                    return usage_error(&format!("--invocations takes a count, got {value:?}"))
                }
            },
            "--max-retries" => match value.parse() {
                Ok(n) => max_retries = n,
                Err(_) => {
                    return usage_error(&format!("--max-retries takes a count, got {value:?}"))
                }
            },
            "--shards" => match value.parse() {
                Ok(n) => shards = n,
                Err(_) => return usage_error(&format!("--shards takes a count, got {value:?}")),
            },
            "--heartbeat-interval" => match value.parse() {
                Ok(ms) => heartbeat_ms = ms,
                Err(_) => {
                    return usage_error(&format!(
                        "--heartbeat-interval takes milliseconds, got {value:?}"
                    ))
                }
            },
            "--deadline-secs" => match value.parse() {
                Ok(s) => deadline_secs = s,
                Err(_) => {
                    return usage_error(&format!("--deadline-secs takes seconds, got {value:?}"))
                }
            },
            "--inject" => inject = Some(value),
            "--journal" => journal_path = Some(value),
            "--filter" => filter = Some(value),
            "--variants" => variant_list = Some(value),
            "--poison" => poison = Some(value),
            "--cache" => cache_arg = Some(value),
            "--connect" => connect = Some(value),
            "--stats" => stats_path = Some(value),
            _ => out = Some(value),
        }
    }
    if resume && journal_path.is_none() {
        return usage_error("--resume requires --journal FILE");
    }
    if shards > 0 && journal_path.is_none() {
        return usage_error("--shards requires --journal FILE (the merge target)");
    }
    if cache_arg.is_some() && shards == 0 && !shard_exec {
        return usage_error("--cache requires --shards N");
    }
    if shard_exec && (shards > 0 || journal_path.is_some() || out.is_some() || inject.is_some()) {
        return usage_error(
            "--shard-exec is the worker side: it takes its journal from the dispatch \
             header, not from --shards/--journal/--out/--inject",
        );
    }
    if inject.is_some() && shards > 0 {
        return usage_error("--inject smoke runs in-process; it takes no --shards");
    }
    if stats_path.is_some() && (inject.is_some() || shard_exec) {
        return usage_error("--stats applies to the standard sweep");
    }
    if connect.is_some()
        && (journal_path.is_some()
            || resume
            || shards > 0
            || cache_arg.is_some()
            || inject.is_some()
            || stats_path.is_some()
            || shard_exec)
    {
        return usage_error(
            "--connect is the client side: orchestration (--journal/--resume/--shards/\
             --cache/--inject/--stats/--shard-exec) lives in the daemon",
        );
    }

    // The submitted (or locally-run) matrix, as data. One resolver —
    // `nachos_bench::matrix::resolve` — interprets it on both sides of
    // the socket, which is what keeps daemon-fetched reports
    // byte-identical to local runs.
    let spec = MatrixSpec {
        invocations,
        threads,
        ideal,
        optimize,
        max_retries,
        filter: filter.clone(),
        variants: matrix::parse_variants(variant_list.as_deref()),
        poison: poison.clone(),
        deadline_secs,
        watchdog: None,
    };

    if let Some(sock) = connect {
        return run_client(&sock, &spec, out.as_deref(), strict);
    }

    // The wall-clock deadline: one shared token, cancelled by a
    // detached timer thread. `run_sweep_sharded` forwards the token to
    // every worker, so the budget binds in both execution modes.
    let deadline_token = (deadline_secs > 0 && inject.is_none() && !shard_exec).then(|| {
        let token = CancelToken::new();
        let timer = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(deadline_secs));
            timer.cancel();
        });
        token
    });

    let (json, summary, code) = match inject.as_deref() {
        Some("smoke") if ideal => {
            return usage_error("--ideal applies to the standard sweep, not --inject smoke")
        }
        Some("smoke") if optimize => {
            return usage_error("--optimize applies to the standard sweep, not --inject smoke")
        }
        Some("smoke") => {
            let (sweep, failures) = nachos_bench::run_fault_smoke(threads);
            for f in &failures {
                eprintln!("SMOKE DEVIATION: {f}");
            }
            let statuses: Vec<String> = sweep
                .statuses()
                .iter()
                .map(|(job, variant, status)| format!("{job} [{variant}] {status}"))
                .collect();
            let code = if failures.is_empty() {
                Verdict::Success.exit()
            } else {
                Verdict::Divergence.exit()
            };
            (
                sweep.to_json(),
                format!(
                    "fault-injection smoke: {} runs, {} deviations\n{}",
                    statuses.len(),
                    failures.len(),
                    statuses.join("\n"),
                ),
                code,
            )
        }
        Some(other) => return usage_error(&format!("--inject knows 'smoke', got {other:?}")),
        None => {
            let (jobs, mut cfg) = match matrix::resolve(&spec) {
                Ok(r) => r,
                Err(e) => return usage_error(&e),
            };
            if let Some(token) = &deadline_token {
                cfg.sim.cancel = Some(token.clone());
            }

            // Worker mode: execute the shard streamed over stdin and
            // exit — no report of its own.
            if shard_exec {
                return match run_shard_worker(&jobs, &cfg, std::io::stdin()) {
                    Ok(s) => {
                        eprintln!(
                            "shard {}: {} executed, {} replayed, {} protocol errors{}",
                            s.shard,
                            s.executed,
                            s.replayed,
                            s.protocol_errors,
                            if s.cancelled { ", cancelled" } else { "" },
                        );
                        if s.protocol_errors > 0 {
                            Verdict::Environment.exit()
                        } else {
                            Verdict::Success.exit()
                        }
                    }
                    Err(e) => environment_error(&format!("shard worker failed: {e}")),
                };
            }

            if shards > 0 {
                // Supervisor mode: the journal is the merge target; the
                // workers are this binary re-invoked with --shard-exec
                // and the matrix-defining flags forwarded verbatim.
                let journal = journal_path.clone().unwrap_or_default();
                let exe = match std::env::current_exe() {
                    Ok(p) => p.display().to_string(),
                    Err(e) => {
                        return environment_error(&format!(
                            "cannot locate own executable for workers: {e}"
                        ))
                    }
                };
                let mut worker_cmd = vec![
                    exe,
                    "--shard-exec".into(),
                    "--invocations".into(),
                    invocations.to_string(),
                    "--max-retries".into(),
                    max_retries.to_string(),
                ];
                if ideal {
                    worker_cmd.push("--ideal".into());
                }
                // The optimizer changes the compiled MDE graph, so it is
                // part of the matrix definition: workers must agree with
                // the supervisor or every fingerprint misses.
                if optimize {
                    worker_cmd.push("--optimize".into());
                }
                for (flag, v) in [
                    ("--filter", &filter),
                    ("--variants", &variant_list),
                    ("--poison", &poison),
                ] {
                    if let Some(v) = v {
                        worker_cmd.push(flag.into());
                        worker_cmd.push(v.clone());
                    }
                }
                let mut scfg = ShardConfig::new(shards, worker_cmd, &journal);
                scfg.resume = resume;
                scfg.heartbeat = Duration::from_millis(heartbeat_ms);
                scfg.silence_budget = if heartbeat_ms == 0 {
                    Duration::ZERO
                } else {
                    Duration::from_millis((heartbeat_ms * 10).max(2000))
                };
                if let Some(arg) = &cache_arg {
                    let root = if arg == "default" {
                        ResultCache::default_root()
                    } else {
                        arg.clone().into()
                    };
                    match ResultCache::open(root) {
                        Ok(c) => scfg.cache = Some(c),
                        Err(e) => {
                            return environment_error(&format!("cannot open result cache: {e}"))
                        }
                    }
                }
                let (sweep, stats, sstats) = match run_sweep_sharded(&jobs, &cfg, &scfg) {
                    Ok(r) => r,
                    Err(e) => return environment_error(&format!("sharded sweep failed: {e}")),
                };
                if !sweep.all_match() {
                    eprintln!("DIVERGENCE: {:?}", sweep.mismatches());
                }
                eprintln!(
                    "orchestration: {} shards, {} workers spawned ({} respawns, {} silent kills), \
                     {} cells dispatched, {} recovered from shard journals, {} corrupt lines \
                     dropped, {} quarantined by the supervisor, {} abandoned to the inline pass",
                    sstats.shards,
                    sstats.workers_spawned,
                    sstats.respawns,
                    sstats.silent_kills,
                    sstats.dispatched,
                    sstats.recovered,
                    sstats.corrupt_lines,
                    sstats.quarantined,
                    sstats.abandoned,
                );
                if scfg.cache.is_some() {
                    eprintln!(
                        "cache: {} hits, {} misses, {} corrupt entries healed, {} stored",
                        sstats.cache.hits,
                        sstats.cache.misses,
                        sstats.cache.corrupt,
                        sstats.cache.stored,
                    );
                }
                eprintln!(
                    "merge: {} runs replayed, {} executed inline, {} journal errors",
                    stats.replayed, stats.executed, stats.journal_errors,
                );
                let summary = format!(
                    "{} jobs x {} variants",
                    sweep.jobs.len(),
                    sweep.variants.len()
                );
                let deadline_hit = deadline_token
                    .as_ref()
                    .is_some_and(CancelToken::is_cancelled);
                if deadline_hit {
                    eprintln!("DEADLINE: wall-clock budget of {deadline_secs}s exhausted");
                }
                (
                    sweep.to_json(),
                    summary,
                    verdict(&sweep, strict, deadline_hit),
                )
            } else {
                let journal = match &journal_path {
                    Some(p) => {
                        let opened = if resume {
                            Journal::resume(p)
                        } else {
                            Journal::create(p)
                        };
                        match opened {
                            Ok(j) => Some(j),
                            Err(e) => {
                                return environment_error(&format!("cannot open journal {p}: {e}"))
                            }
                        }
                    }
                    None => None,
                };
                if let Some(j) = &journal {
                    if j.replay_len() > 0 || j.skipped() > 0 {
                        eprintln!(
                            "journal {}: {} completed runs loaded, {} unreadable lines skipped \
                             ({} corrupt)",
                            j.path().display(),
                            j.replay_len(),
                            j.skipped(),
                            j.corrupt(),
                        );
                    }
                }
                let (sweep, stats) = run_sweep_journaled(&jobs, &cfg, journal.as_ref());
                if !sweep.all_match() {
                    eprintln!("DIVERGENCE: {:?}", sweep.mismatches());
                }
                if journal.is_some() {
                    eprintln!(
                        "orchestration: {} runs replayed from the journal, {} executed, {} journal errors",
                        stats.replayed, stats.executed, stats.journal_errors,
                    );
                }
                let summary = format!(
                    "{} jobs x {} variants",
                    sweep.jobs.len(),
                    sweep.variants.len()
                );
                let deadline_hit = deadline_token
                    .as_ref()
                    .is_some_and(CancelToken::is_cancelled);
                if deadline_hit {
                    eprintln!("DEADLINE: wall-clock budget of {deadline_secs}s exhausted");
                }
                (
                    sweep.to_json(),
                    summary,
                    verdict(&sweep, strict, deadline_hit),
                )
            }
        }
    };

    if let Some(path) = &stats_path {
        // The telemetry pass re-executes the matrix serially so the
        // stream order is deterministic; the sweep report above is
        // untouched (telemetry is observation-only).
        let serial = MatrixSpec {
            threads: 1,
            ..spec.clone()
        };
        let Ok((jobs, cfg)) = matrix::resolve(&serial) else {
            return usage_error("--stats could not re-resolve the matrix");
        };
        match nachos_bench::stats::write_stats_stream(path, &jobs, &cfg) {
            Ok(n) => eprintln!("stats stream: {n} runs written to {path}"),
            Err(e) => return environment_error(&e.to_string()),
        }
    }

    match out {
        Some(path) => {
            if let Err(e) = write_atomic(Path::new(&path), &json) {
                return environment_error(&format!("cannot write report {path}: {e}"));
            }
            eprintln!("wrote {summary} to {path}");
        }
        None => {
            print!("{json}");
            eprintln!("{summary}");
        }
    }
    code
}

// ---------------------------------------------------------------------
// Client mode (--connect)
// ---------------------------------------------------------------------

fn env_ms(name: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// Connects within a wall-clock budget, retrying while the socket is
/// absent or refusing (a daemon restart leaves both windows open).
fn connect_within(sock: &str, budget: Duration) -> std::io::Result<UnixStream> {
    let deadline = Instant::now() + budget;
    loop {
        match UnixStream::connect(sock) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

/// One request, one response line, on a fresh connection.
fn roundtrip(sock: &str, request: &str, budget: Duration) -> std::io::Result<Json> {
    let stream = connect_within(sock, budget)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    out.write_all(request.as_bytes())?;
    out.write_all(b"\n")?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    parse_json(line.trim()).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "daemon sent an unparseable response",
        )
    })
}

/// The `--connect` client: submit (honoring backpressure), watch to a
/// terminal state across daemon restarts, fetch the report, and map the
/// terminal state onto the exit-code contract.
#[allow(clippy::too_many_lines)]
fn run_client(sock: &str, spec: &MatrixSpec, out: Option<&str>, strict: bool) -> ExitCode {
    // Budgets are env-overridable so soak jobs can bound the client
    // without patching it: NACHOS_CONNECT_TIMEOUT_MS gates the first
    // contact, NACHOS_RECONNECT_TIMEOUT_MS every later reconnect (the
    // daemon may be mid-restart after a kill).
    let connect_budget = env_ms("NACHOS_CONNECT_TIMEOUT_MS", 15_000);
    let reconnect_budget = env_ms("NACHOS_RECONNECT_TIMEOUT_MS", 120_000);

    // Submit, resubmitting on queue_full after the daemon's own hint.
    let submit = format!(
        "{{\"jobs\": \"nachos-jobs-v1\", \"cmd\": \"submit\", \"spec\": {}}}",
        spec.to_json()
    );
    let mut budget = connect_budget;
    let job = loop {
        let resp = match roundtrip(sock, &submit, budget) {
            Ok(r) => r,
            Err(e) => return environment_error(&format!("cannot reach daemon at {sock}: {e}")),
        };
        if resp.get("ok") == Some(&Json::Bool(true)) {
            match resp.get("job").and_then(Json::as_u64) {
                Some(id) => break id,
                None => return environment_error("daemon accepted the job but sent no id"),
            }
        }
        match resp.get("error").and_then(Json::as_str) {
            Some("queue_full") => {
                let hint = resp
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(500);
                eprintln!("daemon queue full; retrying in {hint}ms");
                std::thread::sleep(Duration::from_millis(hint.min(5_000)));
                budget = reconnect_budget;
            }
            Some("bad_spec") => {
                return usage_error(
                    resp.get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or("daemon rejected the matrix spec"),
                )
            }
            Some(other) => return environment_error(&format!("daemon refused the job: {other}")),
            None => return environment_error("daemon sent a malformed rejection"),
        }
    };
    eprintln!("submitted as job {job} on {sock}");

    // Watch until terminal. A dropped connection (daemon killed or
    // restarting) is survivable: reconnect and re-watch — the job's
    // durable journal means its id and state outlive the process.
    let watch = format!("{{\"jobs\": \"nachos-jobs-v1\", \"cmd\": \"watch\", \"job\": {job}}}");
    let mut last_state: Option<String> = None;
    let terminal = 'outer: loop {
        let stream = match connect_within(sock, reconnect_budget) {
            Ok(s) => s,
            Err(e) => return environment_error(&format!("daemon never came back: {e}")),
        };
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(read_half);
        let mut w = stream;
        if w.write_all(watch.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
            continue;
        }
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    eprintln!("daemon connection lost; reconnecting");
                    break;
                }
                Ok(_) => {}
            }
            let Some(resp) = parse_json(line.trim()) else {
                continue;
            };
            if resp.get("ok") != Some(&Json::Bool(true)) {
                return environment_error(&format!("watch failed: {}", line.trim()));
            }
            let Some(state) = resp.get("state").and_then(Json::as_str) else {
                continue;
            };
            if last_state.as_deref() != Some(state) {
                eprintln!("job {job}: {state}");
                last_state = Some(state.to_owned());
            }
            let Some(status) = JobStatus::from_label(state) else {
                continue;
            };
            if status.is_terminal() {
                break 'outer (status, resp);
            }
        }
    };

    let (status, snap) = terminal;
    let detail = snap
        .get("detail")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_owned();
    match status {
        JobStatus::Settled => {}
        JobStatus::DeadlineExceeded => {
            eprintln!("job {job} exceeded its deadline: {detail}");
            return Verdict::DeadlineExceeded.exit();
        }
        other => {
            return environment_error(&format!("job {job} ended {other}: {detail}"));
        }
    }

    // Fetch the report — byte-identical to a local run of the same
    // matrix, because both sides resolve the same spec through the same
    // resolver and the same journaled harness.
    let fetch = format!("{{\"jobs\": \"nachos-jobs-v1\", \"cmd\": \"fetch\", \"job\": {job}}}");
    let resp = match roundtrip(sock, &fetch, reconnect_budget) {
        Ok(r) => r,
        Err(e) => return environment_error(&format!("cannot fetch report: {e}")),
    };
    if resp.get("ok") != Some(&Json::Bool(true)) {
        return environment_error(&format!("daemon would not serve the report: {resp:?}"));
    }
    let Some(report) = resp.get("report").and_then(Json::as_str) else {
        return environment_error("fetch response carries no report");
    };
    let mismatches = resp.get("mismatches").and_then(Json::as_u64).unwrap_or(0);
    let degraded = resp.get("degraded").and_then(Json::as_u64).unwrap_or(0);
    match out {
        Some(path) => {
            if let Err(e) = write_atomic(Path::new(&path), report) {
                return environment_error(&format!("cannot write report {path}: {e}"));
            }
            eprintln!("wrote job {job} report to {path}");
        }
        None => print!("{report}"),
    }
    if mismatches > 0 {
        eprintln!("DIVERGENCE: {mismatches} mismatched cells");
    }
    exitcode::classify(mismatches, degraded, strict, false).exit()
}
