//! The machine-readable sweep: runs the full 27-workload × 4-variant
//! differential matrix on the parallel harness and emits the JSON report
//! (schema `nachos-sweep-v2`).
//!
//! With `--inject smoke`, runs the fault-injection smoke suite instead:
//! one crafted scenario per fault class, each with a hard per-backend
//! status expectation (unsafe faults detected, benign faults result-
//! neutral, dropped tokens diagnosed as deadlocks). Exits non-zero on any
//! deviation.
//!
//! With `--ideal`, the IDEAL oracle (perfect disambiguation, the paper's
//! Figure 9 upper bound) is appended as a fifth variant column; without
//! it the report is byte-identical to the default four-variant matrix.
//!
//! Usage: `sweep [--threads N] [--invocations N] [--out FILE] [--ideal]
//! [--inject smoke]` (defaults: auto threads, 64 invocations, stdout).

use std::process::ExitCode;

const USAGE: &str =
    "usage: sweep [--threads N] [--invocations N] [--out FILE] [--ideal] [--inject smoke]";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut threads = 0usize;
    let mut invocations = nachos_bench::DEFAULT_INVOCATIONS;
    let mut out: Option<String> = None;
    let mut inject: Option<String> = None;
    let mut ideal = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--ideal" {
            ideal = true;
            continue;
        }
        let Some(value) = (match a.as_str() {
            "--threads" | "--invocations" | "--out" | "--inject" => args.next(),
            other => return usage_error(&format!("unknown argument: {other}")),
        }) else {
            return usage_error(&format!("{a} requires a value"));
        };
        match a.as_str() {
            "--threads" => match value.parse() {
                Ok(n) => threads = n,
                Err(_) => return usage_error(&format!("--threads takes a count, got {value:?}")),
            },
            "--invocations" => match value.parse() {
                Ok(n) => invocations = n,
                Err(_) => {
                    return usage_error(&format!("--invocations takes a count, got {value:?}"))
                }
            },
            "--inject" => inject = Some(value),
            _ => out = Some(value),
        }
    }

    let (json, summary, ok) = match inject.as_deref() {
        Some("smoke") if ideal => {
            return usage_error("--ideal applies to the standard sweep, not --inject smoke")
        }
        Some("smoke") => {
            let (sweep, failures) = nachos_bench::run_fault_smoke(threads);
            for f in &failures {
                eprintln!("SMOKE DEVIATION: {f}");
            }
            let statuses: Vec<String> = sweep
                .statuses()
                .iter()
                .map(|(job, variant, status)| format!("{job} [{variant}] {status}"))
                .collect();
            (
                sweep.to_json(),
                format!(
                    "fault-injection smoke: {} runs, {} deviations\n{}",
                    statuses.len(),
                    failures.len(),
                    statuses.join("\n"),
                ),
                failures.is_empty(),
            )
        }
        Some(other) => return usage_error(&format!("--inject knows 'smoke', got {other:?}")),
        None => {
            let suite = nachos_bench::run_suite_opts(invocations, threads, ideal);
            let ok = suite.sweep.all_match();
            if !ok {
                eprintln!("DIVERGENCE: {:?}", suite.sweep.mismatches());
            }
            let summary = format!(
                "{} jobs x {} variants",
                suite.sweep.jobs.len(),
                suite.sweep.variants.len()
            );
            (suite.sweep.to_json(), summary, ok)
        }
    };

    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("writing the report file");
            eprintln!("wrote {summary} to {path}");
        }
        None => {
            print!("{json}");
            eprintln!("{summary}");
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
