//! Ablation: store-to-load forwarding. Downgrades every FORWARD edge to a
//! plain ORDER edge (the load stalls until the store commits instead of
//! consuming the value directly) to measure what forwarding buys —
//! bodytrack is the paper's headline case (§VIII-A).

use nachos::{pct_slowdown, simulate, Backend, EnergyModel, SimConfig};
use nachos_alias::{compile, StageConfig};
use nachos_ir::EdgeKind;
use nachos_workloads::{by_name, generate};

fn main() {
    nachos_bench::banner(
        "Ablation: ST->LD forwarding vs ordering-only",
        "§VIII-A (bodytrack's forwarding benefit)",
    );
    let config = SimConfig::default().with_invocations(32);
    let energy = EnergyModel::default();
    println!(
        "{:<14} {:>9} {:>12} {:>14} {:>10}",
        "App", "forwards", "with (cyc)", "without (cyc)", "benefit"
    );
    for name in ["bodytrack", "453.povray", "namd", "freqmi."] {
        let w = generate(&by_name(name).expect("spec"));

        let mut with_fwd = w.region.clone();
        compile(&mut with_fwd, StageConfig::full());

        // Downgrade: rebuild the region with every forward edge replaced
        // by an order edge.
        let mut without_fwd = with_fwd.clone();
        let forwards: Vec<_> = without_fwd
            .dfg
            .edges()
            .filter(|e| e.kind == EdgeKind::Forward)
            .copied()
            .collect();
        let all_mdes: Vec<_> = without_fwd
            .dfg
            .edges()
            .filter(|e| e.kind.is_mde())
            .copied()
            .collect();
        without_fwd.dfg.clear_mdes();
        for e in &all_mdes {
            let kind = if e.kind == EdgeKind::Forward {
                EdgeKind::Order
            } else {
                e.kind
            };
            without_fwd
                .dfg
                .add_edge(e.src, e.dst, kind)
                .expect("re-inserting planned edges");
        }

        let base =
            simulate(&with_fwd, &w.binding, Backend::Nachos, &config, &energy).expect("simulate");
        let degraded = simulate(&without_fwd, &w.binding, Backend::Nachos, &config, &energy)
            .expect("simulate");
        println!(
            "{:<14} {:>9} {:>12} {:>14} {:>+9.1}%",
            name,
            forwards.len(),
            base.cycles,
            degraded.cycles,
            pct_slowdown(degraded.cycles, base.cycles),
        );
    }
    println!();
    println!("Forwarding converts a memory dependence into a data dependence; the");
    println!("benefit column is the slowdown suffered when it is disabled.");
}
