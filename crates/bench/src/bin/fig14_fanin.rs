//! Figure 14: distribution of the number of older MAY-alias parents per
//! memory operation (the fan-in each NACHOS `==?` site must arbitrate).

use nachos_alias::{analyze, may_fanin, StageConfig};
use nachos_workloads::generate;

fn main() {
    nachos_bench::banner(
        "Figure 14: MAY-alias fan-in per memory operation",
        "Figure 14 / §VII",
    );
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "App", "=0", "=1", "=2", ">2", "max"
    );
    let mut no_fanin_workloads = 0;
    for spec in nachos_workloads::all() {
        let w = generate(&spec);
        let a = analyze(&w.region, StageConfig::full());
        let fanin = may_fanin(&a);
        let n = fanin.len().max(1);
        let count = |pred: &dyn Fn(usize) -> bool| {
            100.0 * fanin.iter().filter(|&&f| pred(f)).count() as f64 / n as f64
        };
        let max = fanin.iter().copied().max().unwrap_or(0);
        if max == 0 {
            no_fanin_workloads += 1;
        }
        println!(
            "{:<14} {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}% {:>8}",
            spec.name,
            count(&|f| f == 0),
            count(&|f| f == 1),
            count(&|f| f == 2),
            count(&|f| f > 2),
            max
        );
    }
    println!();
    println!(
        "Workloads with no MAY fan-in at all: {no_fanin_workloads} \
         (paper: 9 with only independent ops; bzip2 has 3 ops with ~50 parents)"
    );
}
