//! Figure 6: Stage-1 MAY and MUST alias relationships between memory
//! operation pairs, over the top five accelerated paths per benchmark.

use nachos_alias::{analyze, StageConfig};
use nachos_workloads::generate_path;

fn main() {
    nachos_bench::banner(
        "Figure 6: Stage 1 — MAY/MUST pairwise alias relations (top 5 paths)",
        "Figure 6 / §V-B",
    );
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>10}",
        "App", "%MAY", "%MUST", "%NO", "pairs"
    );
    let mut resolved = 0;
    for spec in nachos_workloads::all() {
        // Aggregate over the top five paths, like the paper's plot.
        let (mut may, mut must, mut no, mut total) = (0usize, 0usize, 0usize, 0usize);
        for path in 0..5 {
            let w = generate_path(&spec, path);
            let a = analyze(&w.region, StageConfig::stage1_only());
            let c = a.report.after_stage1;
            may += c.may;
            must += c.must;
            no += c.no;
            total += c.total();
        }
        let pct = |x: usize| {
            if total == 0 {
                0.0
            } else {
                100.0 * x as f64 / total as f64
            }
        };
        if may == 0 {
            resolved += 1;
        }
        println!(
            "{:<14} {:>7.1}% {:>7.1}% {:>7.1}% {:>10}",
            spec.name,
            pct(may),
            pct(must),
            pct(no),
            total
        );
    }
    println!();
    println!("Workloads fully resolved by Stage 1 alone: {resolved} (paper: 7 of 27)");
}
