//! Ablation: the appendix's `E_MAY / E_lsq` ratio. The paper conservatively
//! assumes a 6x gap (500 fJ vs 3000 fJ); this sweep shows how the
//! profitability frontier (MAY parents per op) moves with the ratio.

use nachos::DecentralizedModel;
use nachos_alias::{analyze, StageConfig};
use nachos_workloads::generate_all;

fn main() {
    nachos_bench::banner(
        "Ablation: comparator-vs-LSQ energy ratio sweep",
        "the Appendix profitability bound",
    );
    let ratios = [2.0, 4.0, 6.0, 8.0, 12.0];
    println!(
        "{:>14} {:>12} {:>24}",
        "E_lsq/E_MAY", "break-even", "unprofitable workloads"
    );
    let shapes: Vec<(String, usize, usize)> = generate_all()
        .iter()
        .map(|w| {
            let a = analyze(&w.region, StageConfig::full());
            (
                w.spec.name.to_owned(),
                a.plan.may.len(),
                w.region.num_global_mem_ops(),
            )
        })
        .collect();
    for ratio in ratios {
        let model = DecentralizedModel {
            e_may: 500.0,
            e_lsq: 500.0 * ratio,
        };
        let losers: Vec<&str> = shapes
            .iter()
            .filter(|&&(_, may, ops)| ops > 0 && !model.profitable(may, ops))
            .map(|(name, _, _)| name.as_str())
            .collect();
        println!(
            "{:>14.1} {:>12.1} {:>4}: {}",
            ratio,
            model.breakeven_may_per_op(),
            losers.len(),
            if losers.is_empty() {
                "(none)".to_owned()
            } else {
                losers.join(", ")
            }
        );
    }
    println!();
    println!("Even at an aggressive 2x gap, decentralized checking stays profitable");
    println!("for every workload whose compiler filters most pairs (paper: only 7");
    println!("workloads exceed one MAY alias per memory operation).");
}
