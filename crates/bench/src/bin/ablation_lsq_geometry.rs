//! Ablation: OPT-LSQ geometry (banks × allocation bandwidth). The paper's
//! Challenge 2 (§VIII-C): no single LSQ configuration fits workloads whose
//! memory-operation counts span 0–215 and MLP spans 2–128.

use nachos::{run_backend, Backend, EnergyModel, SimConfig};
use nachos_workloads::{by_name, generate};

fn main() {
    nachos_bench::banner(
        "Ablation: OPT-LSQ geometry (banks x allocation bandwidth)",
        "§VIII-C Challenge 2",
    );
    let energy = EnergyModel::default();
    println!(
        "{:<14} {:>6} | {:>10} {:>10} {:>10} | {:>12}",
        "App", "#MEM", "2bk/1alloc", "4bk/2alloc", "8bk/4alloc", "overflows@2bk"
    );
    for name in ["gzip", "464.h264ref", "401.bzip2", "183.equake"] {
        let spec = by_name(name).expect("spec");
        let w = generate(&spec);
        print!("{name:<14} {:>6} |", spec.mem_ops);
        let mut overflow_small = 0;
        for (banks, alloc) in [(2usize, 1u32), (4, 2), (8, 4)] {
            let mut config = SimConfig::default().with_invocations(32);
            config.lsq.banks = banks;
            config.lsq.alloc_per_cycle = alloc;
            let run = run_backend(&w.region, &w.binding, Backend::OptLsq, &config, &energy)
                .expect("simulate");
            if banks == 2 {
                overflow_small = run.sim.events.lsq_bank_overflows;
            }
            print!(" {:>10}", run.sim.cycles);
        }
        println!(" | {overflow_small:>12}");
    }
    println!();
    println!("Small LSQs stall wide regions (cycles fall as geometry grows); the");
    println!("overflow column shows bank-capacity pressure at the smallest point.");
}
