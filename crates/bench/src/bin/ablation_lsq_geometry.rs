//! Ablation: OPT-LSQ geometry (banks × allocation bandwidth). The paper's
//! Challenge 2 (§VIII-C): no single LSQ configuration fits workloads whose
//! memory-operation counts span 0–215 and MLP spans 2–128.

use nachos::sweep::{run_sweep, SweepConfig, SweepJob, SweepVariant};
use nachos::{Backend, SimConfig};
use nachos_alias::StageConfig;
use nachos_workloads::{by_name, generate};

fn main() {
    nachos_bench::banner(
        "Ablation: OPT-LSQ geometry (banks x allocation bandwidth)",
        "§VIII-C Challenge 2",
    );
    let apps = ["gzip", "464.h264ref", "401.bzip2", "183.equake"];
    let mut jobs: Vec<SweepJob> = Vec::new();
    let mut mem_ops = Vec::new();
    for name in apps {
        let spec = by_name(name).expect("spec");
        mem_ops.push(spec.mem_ops);
        jobs.push(nachos_bench::job_for(&generate(&spec)));
    }

    // One parallel differential sweep per LSQ geometry, all apps each.
    let points = [(2usize, 1u32), (4, 2), (8, 4)];
    let sweeps: Vec<_> = points
        .iter()
        .map(|&(banks, alloc)| {
            let mut sim = SimConfig::default().with_invocations(32);
            sim.lsq.banks = banks;
            sim.lsq.alloc_per_cycle = alloc;
            let cfg = SweepConfig {
                sim,
                variants: vec![SweepVariant {
                    label: format!("opt-lsq-{banks}bk{alloc}al"),
                    backend: Backend::OptLsq,
                    stages: StageConfig::full(),
                }],
                ..SweepConfig::default()
            };
            run_sweep(&jobs, &cfg)
        })
        .collect();

    println!(
        "{:<14} {:>6} | {:>10} {:>10} {:>10} | {:>12}",
        "App", "#MEM", "2bk/1alloc", "4bk/2alloc", "8bk/4alloc", "overflows@2bk"
    );
    for (i, name) in apps.iter().enumerate() {
        print!("{name:<14} {:>6} |", mem_ops[i]);
        for sweep in &sweeps {
            let run = &sweep.jobs[i].runs[0];
            print!(" {:>10}", usable_cycles(name, run));
        }
        let small = &sweeps[0].jobs[i].runs[0];
        let overflow_small = match small.try_run() {
            Ok(r) => r.sim.events.lsq_bank_overflows,
            Err(why) => {
                eprintln!("{why}");
                std::process::exit(1);
            }
        };
        println!(" | {overflow_small:>12}");
    }
    println!();
    println!("Small LSQs stall wide regions (cycles fall as geometry grows); the");
    println!("overflow column shows bank-capacity pressure at the smallest point.");
}

/// The run's cycle count, or a diagnostic exit when the run is degraded
/// or diverged (the ablation table would be meaningless).
fn usable_cycles(name: &str, run: &nachos::sweep::VariantOutcome) -> u64 {
    match run.try_run() {
        Ok(r) if run.matches_reference() => r.sim.cycles,
        _ => {
            eprintln!(
                "{name} [{}] unusable: {} ({})",
                run.variant,
                run.status,
                run.detail.as_deref().unwrap_or("diverged from reference"),
            );
            std::process::exit(1);
        }
    }
}
