//! Figure 15: performance of NACHOS normalized to OPT-LSQ, with the
//! NACHOS-SW result as the marker the paper overlays.

use nachos_bench::{run_suite, DEFAULT_INVOCATIONS};

fn main() {
    nachos_bench::banner(
        "Figure 15: NACHOS vs OPT-LSQ performance (markers: NACHOS-SW)",
        "Figure 15 / §VIII-A",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "App", "LSQ cyc", "NACHOS cyc", "NACHOS %", "SW %", "may checks"
    );
    let results = run_suite(DEFAULT_INVOCATIONS);
    let (mut within, mut faster, mut slower) = (0, 0, 0);
    for r in &results {
        let hw = r.hw_slowdown_pct();
        let sw = r.sw_slowdown_pct();
        if hw.abs() <= 2.5 {
            within += 1;
        } else if hw < -2.5 {
            faster += 1;
        } else {
            slower += 1;
        }
        println!(
            "{:<14} {:>12} {:>12} {:>+11.1}% {:>+11.1}% {:>12}",
            r.spec.name, r.lsq.sim.cycles, r.hw.sim.cycles, hw, sw, r.hw.sim.events.may_checks
        );
    }
    println!();
    println!("Within 2.5% of OPT-LSQ: {within} (paper: 19)");
    println!("Faster than OPT-LSQ:    {faster} (paper: 6, by 6%-70%)");
    println!("Slower than OPT-LSQ:    {slower} (paper: 2 — bzip2/sar-pfa fan-in contention, ~8%)");
}
