//! The `--stats PATH` telemetry pass shared by the sweep and bench
//! binaries: streams `nachos-stats-v1` JSON lines for a whole experiment
//! matrix.
//!
//! Telemetry observes, it never orchestrates: the parallel sweep runs
//! exactly as it always has, and this pass re-executes the matrix
//! *serially* — one deterministic `(job, variant)` cell after another,
//! all into a single [`StatsWriter`] — so the stream's run-block order
//! never depends on worker-thread scheduling. Re-execution is sound
//! because simulation is deterministic and a `TelemetrySink` is proven
//! observation-only (`tests/prop_telemetry.rs`): the observed runs
//! produce bit-identical results to the sweep's own.

use std::fs::File;
use std::io::BufWriter;

use nachos::sweep::{SweepConfig, SweepJob};
use nachos::{run_backend_observed_in, SimArena, StatsWriter};

/// Runs every `(job, variant)` cell of the matrix serially with a
/// [`StatsWriter`] attached and writes the combined `nachos-stats-v1`
/// stream to `path`. One run block per cell, labelled `job/variant`, in
/// matrix order; returns the number of runs streamed.
///
/// # Errors
///
/// Returns a deterministic description of the first I/O failure or
/// simulation error. Faulting cells are skipped rather than streamed:
/// the sweep proper already reports them, and a half-written run block
/// would be misleading.
pub fn write_stats_stream(path: &str, jobs: &[SweepJob], cfg: &SweepConfig) -> Result<u64, String> {
    let file = File::create(path).map_err(|e| format!("cannot create stats stream {path}: {e}"))?;
    let mut writer = StatsWriter::new(BufWriter::new(file), path);
    let mut arena = SimArena::new();
    let mut runs = 0u64;
    for job in jobs {
        let mut config = cfg.sim.clone();
        config.fault.faults.extend(job.fault.faults.iter().copied());
        for v in &cfg.variants {
            let label = format!("{}/{}", job.name, v.label);
            writer.begin_run(&label, Some(v.backend));
            match run_backend_observed_in(
                &mut arena,
                &job.region,
                &job.binding,
                v.backend,
                &config,
                &cfg.energy,
                v.stages,
                &mut writer,
            ) {
                Ok(_) => runs += 1,
                Err(e) => eprintln!("stats pass: skipping {label}: {e}"),
            }
        }
    }
    writer
        .finish()
        .map_err(|e| format!("stats stream {path} write failed: {e}"))?;
    Ok(runs)
}
