//! End-to-end acceptance for the sharded sweep binary: real supervisor
//! and worker OS processes, real SIGKILLs, real cache files.
//!
//! Everything here drives the compiled `sweep` bin (via
//! `CARGO_BIN_EXE_sweep`) exactly as CI and a user would, and holds it
//! to the documented contract: the sharded report is byte-identical to
//! the single-process report through worker death, supervisor death,
//! resume under a different shard count, and cache corruption; exit
//! codes follow the `--help` table.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::Duration;

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nachos-shard-exec").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(args: &[&str]) -> Output {
    sweep()
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("sweep {args:?}: {e}"))
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed ({:?}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The headline contract on the full 27×5 Table II matrix (the bench
/// matrix plus the IDEAL oracle): `--shards 4` reproduces the
/// single-process report byte for byte.
#[test]
fn full_matrix_sharded_report_is_byte_identical() {
    let dir = scratch("full-matrix");
    let clean = dir.join("clean.json");
    let sharded = dir.join("sharded.json");
    assert_success(
        &run(&[
            "--invocations",
            "1",
            "--ideal",
            "--out",
            clean.to_str().unwrap(),
        ]),
        "single-process sweep",
    );
    assert_success(
        &run(&[
            "--invocations",
            "1",
            "--ideal",
            "--shards",
            "4",
            "--journal",
            dir.join("j.jsonl").to_str().unwrap(),
            "--out",
            sharded.to_str().unwrap(),
        ]),
        "sharded sweep",
    );
    assert_eq!(
        read(&sharded),
        read(&clean),
        "sharded report diverges from single-process"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The cross-campaign cache: a second campaign with a fresh journal is
/// served from cache and stays byte-identical; a flipped byte in a cache
/// entry is detected, healed, and the entry restored by re-execution.
#[test]
fn cache_serves_campaigns_and_heals_corrupt_entries() {
    let dir = scratch("cache");
    let cache = dir.join("cache");
    let base = |journal: &Path, out: &Path| {
        vec![
            "--filter".to_owned(),
            "mcf".to_owned(),
            "--invocations".to_owned(),
            "2".to_owned(),
            "--shards".to_owned(),
            "2".to_owned(),
            "--cache".to_owned(),
            cache.display().to_string(),
            "--journal".to_owned(),
            journal.display().to_string(),
            "--out".to_owned(),
            out.display().to_string(),
        ]
    };
    let first = dir.join("first.json");
    let out = sweep()
        .args(base(&dir.join("j1.jsonl"), &first))
        .output()
        .expect("first campaign");
    assert_success(&out, "first campaign");

    // Every settled record landed as one .rec file under <hh>/.
    let entries: Vec<PathBuf> = std::fs::read_dir(&cache)
        .expect("cache root")
        .flat_map(|d| std::fs::read_dir(d.expect("dir").path()).expect("fan-out dir"))
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rec"))
        .collect();
    assert!(!entries.is_empty(), "the campaign populated the cache");

    let second = dir.join("second.json");
    let out = sweep()
        .args(base(&dir.join("j2.jsonl"), &second))
        .output()
        .expect("second campaign");
    assert_success(&out, "second campaign");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("0 misses"),
        "second campaign must be served from cache:\n{stderr}"
    );
    assert_eq!(read(&second), read(&first));

    // Flip one byte mid-entry: the third campaign must notice, heal,
    // re-execute, and still match byte for byte.
    let victim = &entries[0];
    let mut bytes = std::fs::read(victim).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(victim, &bytes).expect("corrupt entry");
    let third = dir.join("third.json");
    let out = sweep()
        .args(base(&dir.join("j3.jsonl"), &third))
        .output()
        .expect("third campaign");
    assert_success(&out, "third campaign");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("1 corrupt entries healed"),
        "the flipped entry must be detected:\n{stderr}"
    );
    assert_eq!(read(&third), read(&first));
    assert!(
        victim.exists(),
        "the healed cell was promoted back into the cache"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The exit-code table from `--help`: a quarantined poison workload is
/// exit 0 without `--strict` and exit 3 with it, through the whole
/// supervisor/worker path.
#[test]
fn strict_flag_gates_degraded_exit_codes() {
    let dir = scratch("strict");
    let args = |journal: &str, strict: bool| {
        let mut v = vec![
            "--filter".to_owned(),
            "gzip".to_owned(),
            "--poison".to_owned(),
            "gzip".to_owned(),
            "--invocations".to_owned(),
            "1".to_owned(),
            "--shards".to_owned(),
            "2".to_owned(),
            "--journal".to_owned(),
            dir.join(journal).display().to_string(),
            "--out".to_owned(),
            dir.join("out.json").display().to_string(),
        ];
        if strict {
            v.push("--strict".to_owned());
        }
        v
    };
    let lax = sweep()
        .args(args("lax.jsonl", false))
        .output()
        .expect("lax");
    assert_success(&lax, "non-strict poison campaign");
    let strict = sweep()
        .args(args("strict.jsonl", true))
        .output()
        .expect("strict");
    assert_eq!(
        strict.status.code(),
        Some(3),
        "--strict must fail a degraded campaign:\n{}",
        String::from_utf8_lossy(&strict.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Supervisor death: SIGKILL the whole orchestrator mid-campaign, then
/// resume the same journal under a *different* shard count. The resumed
/// report must match an uninterrupted single-process run byte for byte.
#[test]
fn killed_supervisor_resumes_under_a_different_shard_count() {
    let dir = scratch("kill-supervisor");
    let journal = dir.join("j.jsonl");
    let out = dir.join("out.json");
    let mut child = sweep()
        .args([
            "--filter",
            "sar",
            "--invocations",
            "800",
            "--shards",
            "4",
            "--journal",
            journal.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn supervisor");
    std::thread::sleep(Duration::from_millis(300));
    let _ = child.kill();
    let _ = child.wait();
    // Orphaned workers see stdin EOF and wind down; give them a beat so
    // the resume below has the shard journals to itself.
    std::thread::sleep(Duration::from_millis(1000));

    assert_success(
        &run(&[
            "--filter",
            "sar",
            "--invocations",
            "800",
            "--shards",
            "3",
            "--resume",
            "--journal",
            journal.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]),
        "resumed supervisor",
    );
    let clean = dir.join("clean.json");
    assert_success(
        &run(&[
            "--filter",
            "sar",
            "--invocations",
            "800",
            "--out",
            clean.to_str().unwrap(),
        ]),
        "clean single-process sweep",
    );
    assert_eq!(
        read(&out),
        read(&clean),
        "a killed-and-resumed campaign changed report bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}
