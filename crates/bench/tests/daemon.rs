//! End-to-end acceptance for the sweep job service: a real
//! `nachos-sweepd` process on a real Unix socket, a real `sweep
//! --connect` client, real SIGKILLs.
//!
//! The headline contract mirrors `shard_exec.rs`'s: through daemon
//! death and restart, the fetched report stays byte-identical to an
//! uninterrupted one-shot run of the same matrix. The rest pins the
//! robustness surface — bounded admission with structured backpressure,
//! deadline exit codes, the drain path exiting 0, and the exit-code
//! table each code reachable by exactly one condition.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
}

fn sweepd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nachos-sweepd"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nachos-daemon-accept").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn spawn_daemon(sock: &Path, root: &Path, extra: &[&str]) -> Child {
    sweepd()
        .args([
            "--socket",
            sock.to_str().unwrap(),
            "--root",
            root.to_str().unwrap(),
        ])
        .args(extra)
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn nachos-sweepd")
}

/// Polls `--ctl ping` until the daemon answers, within a hard budget.
fn wait_ready(sock: &Path) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let out = sweepd()
            .args(["--ctl", "ping", "--socket", sock.to_str().unwrap()])
            .output()
            .expect("run ctl ping");
        if out.status.success() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Waits on a child with a manual budget, so a regression hangs the
/// test harness for minutes, not forever.
fn wait_within(child: &mut Child, budget: Duration, what: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + budget;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("{what} did not finish within {budget:?}");
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The headline: submit the full 27×5 matrix through the daemon,
/// SIGKILL the daemon mid-job, restart it over the same state root, and
/// the client — reconnecting on its own — fetches a report
/// byte-identical to an uninterrupted one-shot run.
#[test]
fn kill_dash_nine_then_restart_yields_byte_identical_report() {
    let dir = scratch("kill-restart");
    let sock = dir.join("d.sock");
    let root = dir.join("state");
    let daemon_json = dir.join("daemon.json");

    let mut daemon = spawn_daemon(&sock, &root, &[]);
    wait_ready(&sock);

    let mut client = sweep()
        .args([
            "--connect",
            sock.to_str().unwrap(),
            "--invocations",
            "4",
            "--ideal",
            "--out",
            daemon_json.to_str().unwrap(),
        ])
        .env("NACHOS_CONNECT_TIMEOUT_MS", "60000")
        .env("NACHOS_RECONNECT_TIMEOUT_MS", "180000")
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sweep client");

    // Let the job get properly into its cells, then kill the daemon
    // without ceremony. Child::kill is SIGKILL: no drain, no fsync
    // beyond what already happened per completed cell.
    std::thread::sleep(Duration::from_millis(1500));
    daemon.kill().expect("SIGKILL daemon");
    let _ = daemon.wait();

    let mut daemon = spawn_daemon(&sock, &root, &[]);
    let status = wait_within(&mut client, Duration::from_secs(300), "sweep client");
    assert!(
        status.success(),
        "client must ride out the daemon restart, got {status:?}"
    );

    let clean = dir.join("clean.json");
    let out = sweep()
        .args([
            "--invocations",
            "4",
            "--ideal",
            "--out",
            clean.to_str().unwrap(),
        ])
        .output()
        .expect("clean sweep");
    assert!(out.status.success(), "clean one-shot sweep failed");
    assert_eq!(
        read(&daemon_json),
        read(&clean),
        "a crash-recovered job changed report bytes"
    );

    // Drain: admission closes, the queue is already empty, the daemon
    // exits 0 — the graceful half of the lifecycle.
    let out = sweepd()
        .args(["--ctl", "drain", "--socket", sock.to_str().unwrap()])
        .output()
        .expect("ctl drain");
    assert!(out.status.success(), "drain must be acknowledged");
    let status = wait_within(&mut daemon, Duration::from_secs(60), "drained daemon");
    assert_eq!(status.code(), Some(0), "drain exits 0");
    std::fs::remove_dir_all(&dir).ok();
}

/// Admission is bounded: a `--capacity 0` daemon rejects every submit
/// with the structured `queue_full` record carrying the `retry_after_ms`
/// hint — it never buffers, never blocks the accept loop.
#[test]
fn full_queue_rejects_with_a_structured_retry_hint() {
    let dir = scratch("backpressure");
    let sock = dir.join("d.sock");
    let mut daemon = spawn_daemon(
        &sock,
        &dir.join("state"),
        &["--capacity", "0", "--retry-after-ms", "321"],
    );
    wait_ready(&sock);

    let out = sweepd()
        .args([
            "--ctl",
            "submit",
            "--socket",
            sock.to_str().unwrap(),
            "--spec",
            "{\"invocations\": 2, \"filter\": \"gzip\"}",
        ])
        .output()
        .expect("ctl submit");
    assert_eq!(out.status.code(), Some(5), "a refused submit is exit 5");
    let resp = String::from_utf8_lossy(&out.stdout);
    assert!(resp.contains("\"queue_full\""), "structured tag: {resp}");
    assert!(resp.contains("\"retry_after_ms\": 321"), "hint: {resp}");

    // The daemon is still fully live after shedding load.
    let out = sweepd()
        .args(["--ctl", "drain", "--socket", sock.to_str().unwrap()])
        .output()
        .expect("ctl drain");
    assert!(out.status.success());
    let status = wait_within(&mut daemon, Duration::from_secs(60), "drained daemon");
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

/// `--deadline-secs` on the one-shot binary: the wall-clock budget
/// cancels the sweep cooperatively and exits with the dedicated code 4;
/// the report still lands (cancelled cells and all) and the journal
/// stays resumable — a follow-up `--resume` run without the deadline
/// settles the matrix for real.
#[test]
fn one_shot_deadline_exits_4_and_leaves_a_resumable_journal() {
    let dir = scratch("deadline");
    let journal = dir.join("j.jsonl");
    let out_path = dir.join("out.json");
    let out = sweep()
        .args([
            "--filter",
            "gzip",
            "--invocations",
            "200000000",
            "--deadline-secs",
            "1",
            "--journal",
            journal.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("deadlined sweep");
    assert_eq!(
        out.status.code(),
        Some(4),
        "deadline exhaustion is exit 4, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        read(&out_path).contains("\"cancelled\""),
        "the report records the cancelled cells"
    );

    // The journal the deadline left behind resumes cleanly at a sane
    // invocation count and settles everything.
    let out = sweep()
        .args([
            "--filter",
            "gzip",
            "--invocations",
            "2",
            "--resume",
            "--journal",
            journal.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("resumed sweep");
    assert_eq!(out.status.code(), Some(0), "resume after deadline settles");
    std::fs::remove_dir_all(&dir).ok();
}

/// The exit-code table: each documented code, reached by exactly its
/// one documented condition (0 and 2–3 are pinned by `shard_exec.rs`
/// and the smoke suite; 4 above).
#[test]
fn usage_and_environment_failures_use_distinct_codes() {
    // 1: the invocation itself is wrong.
    let out = sweep().args(["--no-such-flag"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "unknown flag is a usage error");
    let out = sweep()
        .args(["--filter", "no-such-workload", "--out", "/dev/null"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "empty matrix is a usage error");

    // 5: the environment fails — an unwritable journal...
    let out = sweep()
        .args([
            "--journal",
            "/nonexistent-dir/j.jsonl",
            "--filter",
            "gzip",
            "--invocations",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "journal I/O is environmental");

    // ...or a daemon socket nobody serves.
    let out = sweep()
        .args(["--connect", "/nonexistent-dir/d.sock", "--invocations", "1"])
        .env("NACHOS_CONNECT_TIMEOUT_MS", "300")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "dead socket is environmental");

    // Client mode rejects local orchestration flags as usage errors.
    let out = sweep()
        .args(["--connect", "/tmp/x.sock", "--journal", "/tmp/j.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "--connect + --journal is usage");
}
