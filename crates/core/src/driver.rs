//! High-level driver: compile a region for a backend and simulate it.

use crate::config::{Backend, SimConfig};
use crate::energy::EnergyModel;
use crate::engine::{simulate_in, SimArena, SimResult};
use crate::error::SimError;
use nachos_alias::{compile, Analysis, StageConfig};
use nachos_ir::{Binding, Region};

/// The outcome of compiling and simulating one region under one backend.
#[derive(Clone, Debug)]
pub struct ExperimentRun {
    /// Compiler analysis (absent for OPT-LSQ, which needs no MDEs).
    pub analysis: Option<Analysis>,
    /// Simulation result.
    pub sim: SimResult,
}

/// Compiles `region` as required by `backend` (full NACHOS-SW pipeline for
/// the MDE backends, MDE-free for OPT-LSQ) and simulates it.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_backend(
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<ExperimentRun, SimError> {
    run_backend_with_stages(
        region,
        binding,
        backend,
        config,
        energy,
        StageConfig::full(),
    )
}

/// Like [`run_backend`] but with an explicit compiler stage configuration
/// (used for the baseline-compiler experiments of Figures 12 and 16).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_backend_with_stages(
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
    stages: StageConfig,
) -> Result<ExperimentRun, SimError> {
    let mut arena = SimArena::new();
    run_backend_with_stages_in(&mut arena, region, binding, backend, config, energy, stages)
}

/// Like [`run_backend`], but reuses the simulation state pooled in
/// `arena` (see [`SimArena`]); results are identical for any arena
/// history. The sweep harness holds one arena per worker thread.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_backend_in(
    arena: &mut SimArena,
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<ExperimentRun, SimError> {
    run_backend_with_stages_in(
        arena,
        region,
        binding,
        backend,
        config,
        energy,
        StageConfig::full(),
    )
}

/// Arena-reusing variant of [`run_backend_with_stages`].
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_backend_with_stages_in(
    arena: &mut SimArena,
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
    stages: StageConfig,
) -> Result<ExperimentRun, SimError> {
    // Fail fast on malformed input graphs before spending compile and
    // placement work; `simulate` re-validates the compiled region.
    nachos_ir::validate_region(region).map_err(SimError::Validation)?;
    let mut compiled = region.clone();
    let analysis = if backend.uses_mdes() {
        let mut analysis = compile(&mut compiled, stages);
        if config.optimize {
            nachos_alias::optimize(&mut compiled, &mut analysis);
        }
        // Post-compile audit: independently re-verify every alias verdict
        // and ordering chain — and, when the optimizer ran, every rewrite
        // certificate (`CertLint`) — before trusting the MDEs with
        // correctness. The quick configuration skips the enumeration
        // oracle, so this costs a small fraction of the compile itself.
        let errors: Vec<_> = nachos_alias::audit_with(
            &compiled,
            &analysis,
            stages,
            &nachos_alias::AuditConfig::quick(),
        )
        .into_iter()
        .filter(nachos_alias::Diagnostic::is_error)
        .collect();
        if !errors.is_empty() {
            return Err(SimError::Audit(errors));
        }
        Some(analysis)
    } else {
        // OPT-LSQ needs no MDEs for main memory, but scratchpad data
        // bypasses the LSQ in every scheme, so its compiler-known
        // dependencies must still be wired into the dataflow graph.
        compiled.dfg.clear_mdes();
        nachos_alias::wire_local_deps(&mut compiled);
        None
    };
    let sim = simulate_in(arena, &compiled, binding, backend, config, energy)?;
    Ok(ExperimentRun { analysis, sim })
}

/// Runs all three backends on the same region/binding, in the paper's
/// comparison order `[OPT-LSQ, NACHOS-SW, NACHOS]`.
///
/// # Errors
///
/// Propagates the first [`SimError`] encountered.
pub fn run_all_backends(
    region: &Region,
    binding: &Binding,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<[ExperimentRun; 3], SimError> {
    Ok([
        run_backend(region, binding, Backend::OptLsq, config, energy)?,
        run_backend(region, binding, Backend::NachosSw, config, energy)?,
        run_backend(region, binding, Backend::Nachos, config, energy)?,
    ])
}

/// Percent slowdown of `test` relative to `baseline` cycle counts
/// (negative = speedup), the normalization of Figures 11, 12 and 15.
#[must_use]
pub fn pct_slowdown(test_cycles: u64, baseline_cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        0.0
    } else {
        100.0 * (test_cycles as f64 - baseline_cycles as f64) / baseline_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_sign_convention() {
        assert_eq!(pct_slowdown(110, 100), 10.0);
        assert_eq!(pct_slowdown(90, 100), -10.0);
        assert_eq!(pct_slowdown(100, 0), 0.0);
    }
}
