//! High-level driver: compile a region for a backend and simulate it.

use crate::config::{Backend, SimConfig};
use crate::energy::EnergyModel;
use crate::engine::{simulate_in, simulate_with_telemetry, SimArena, SimResult, TelemetrySink};
use crate::error::SimError;
use nachos_alias::{compile, Analysis, StageConfig};
use nachos_ir::{Binding, Region};

/// The outcome of compiling and simulating one region under one backend.
#[derive(Clone, Debug)]
pub struct ExperimentRun {
    /// Compiler analysis (absent for OPT-LSQ, which needs no MDEs).
    pub analysis: Option<Analysis>,
    /// Simulation result.
    pub sim: SimResult,
}

/// A region prepared for simulation under one backend class: MDEs
/// compiled (and audited) for the NACHOS backends, or stripped and
/// rewired for OPT-LSQ. Compilation is deterministic in `(region,
/// stages, optimize, uses_mdes)`, so a `CompiledRegion` can be reused
/// across backends that share those inputs — the sweep harness compiles
/// each workload once per distinct stage configuration instead of once
/// per cell.
#[derive(Clone, Debug)]
pub struct CompiledRegion {
    /// The compiled (or de-MDE'd) region, ready for `simulate`.
    pub region: Region,
    /// Compiler analysis (absent for OPT-LSQ, which needs no MDEs).
    pub analysis: Option<Analysis>,
}

/// Compiles `region` as `backend` requires: the full MDE pipeline plus
/// post-compile audit for the NACHOS backends (honouring
/// `config.optimize`), or MDE stripping + scratchpad dependency wiring
/// for OPT-LSQ.
///
/// # Errors
///
/// Returns [`SimError::Validation`] for malformed input graphs and
/// [`SimError::Audit`] when the independent post-compile audit rejects
/// the analysis.
pub fn compile_for_backend(
    region: &Region,
    backend: Backend,
    config: &SimConfig,
    stages: StageConfig,
) -> Result<CompiledRegion, SimError> {
    // Fail fast on malformed input graphs before spending compile and
    // placement work; `simulate` re-validates the compiled region.
    nachos_ir::validate_region(region).map_err(SimError::Validation)?;
    let mut compiled = region.clone();
    let analysis = if backend.uses_mdes() {
        let mut analysis = compile(&mut compiled, stages);
        if config.optimize {
            nachos_alias::optimize(&mut compiled, &mut analysis);
        }
        // Post-compile audit: independently re-verify every alias verdict
        // and ordering chain — and, when the optimizer ran, every rewrite
        // certificate (`CertLint`) — before trusting the MDEs with
        // correctness. The quick configuration skips the enumeration
        // oracle, so this costs a small fraction of the compile itself.
        let errors: Vec<_> = nachos_alias::audit_with(
            &compiled,
            &analysis,
            stages,
            &nachos_alias::AuditConfig::quick(),
        )
        .into_iter()
        .filter(nachos_alias::Diagnostic::is_error)
        .collect();
        if !errors.is_empty() {
            return Err(SimError::Audit(errors));
        }
        Some(analysis)
    } else {
        // OPT-LSQ needs no MDEs for main memory, but scratchpad data
        // bypasses the LSQ in every scheme, so its compiler-known
        // dependencies must still be wired into the dataflow graph.
        compiled.dfg.clear_mdes();
        nachos_alias::wire_local_deps(&mut compiled);
        None
    };
    Ok(CompiledRegion {
        region: compiled,
        analysis,
    })
}

/// Simulates an already-[compiled](compile_for_backend) region,
/// reusing the state pooled in `arena`. Results are identical to
/// [`run_backend_with_stages_in`] on the original region with the same
/// stage configuration.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_backend_compiled_in(
    arena: &mut SimArena,
    compiled: &CompiledRegion,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<ExperimentRun, SimError> {
    let sim = simulate_in(arena, &compiled.region, binding, backend, config, energy)?;
    Ok(ExperimentRun {
        analysis: compiled.analysis.clone(),
        sim,
    })
}

/// Compiles `region` as required by `backend` (full NACHOS-SW pipeline for
/// the MDE backends, MDE-free for OPT-LSQ) and simulates it.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_backend(
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<ExperimentRun, SimError> {
    run_backend_with_stages(
        region,
        binding,
        backend,
        config,
        energy,
        StageConfig::full(),
    )
}

/// Like [`run_backend`] but with an explicit compiler stage configuration
/// (used for the baseline-compiler experiments of Figures 12 and 16).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_backend_with_stages(
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
    stages: StageConfig,
) -> Result<ExperimentRun, SimError> {
    let mut arena = SimArena::new();
    run_backend_with_stages_in(&mut arena, region, binding, backend, config, energy, stages)
}

/// Like [`run_backend`], but reuses the simulation state pooled in
/// `arena` (see [`SimArena`]); results are identical for any arena
/// history. The sweep harness holds one arena per worker thread.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_backend_in(
    arena: &mut SimArena,
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<ExperimentRun, SimError> {
    run_backend_with_stages_in(
        arena,
        region,
        binding,
        backend,
        config,
        energy,
        StageConfig::full(),
    )
}

/// Arena-reusing variant of [`run_backend_with_stages`].
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_backend_with_stages_in(
    arena: &mut SimArena,
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
    stages: StageConfig,
) -> Result<ExperimentRun, SimError> {
    let compiled = compile_for_backend(region, backend, config, stages)?;
    let sim = simulate_in(arena, &compiled.region, binding, backend, config, energy)?;
    Ok(ExperimentRun {
        analysis: compiled.analysis,
        sim,
    })
}

/// Like [`run_backend_with_stages_in`], with a [`TelemetrySink`]
/// observing the simulation (see [`crate::simulate_with_telemetry`]).
/// The sink never changes the result: cycles, stall counters and report
/// bytes are bit-identical to the unobserved run.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
#[allow(clippy::too_many_arguments)]
pub fn run_backend_observed_in(
    arena: &mut SimArena,
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
    stages: StageConfig,
    sink: &mut dyn TelemetrySink,
) -> Result<ExperimentRun, SimError> {
    let compiled = compile_for_backend(region, backend, config, stages)?;
    let sim = simulate_with_telemetry(
        arena,
        &compiled.region,
        binding,
        backend,
        config,
        energy,
        sink,
    )?;
    Ok(ExperimentRun {
        analysis: compiled.analysis,
        sim,
    })
}

/// Runs all three backends on the same region/binding, in the paper's
/// comparison order `[OPT-LSQ, NACHOS-SW, NACHOS]`.
///
/// # Errors
///
/// Propagates the first [`SimError`] encountered.
pub fn run_all_backends(
    region: &Region,
    binding: &Binding,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<[ExperimentRun; 3], SimError> {
    Ok([
        run_backend(region, binding, Backend::OptLsq, config, energy)?,
        run_backend(region, binding, Backend::NachosSw, config, energy)?,
        run_backend(region, binding, Backend::Nachos, config, energy)?,
    ])
}

/// Percent slowdown of `test` relative to `baseline` cycle counts
/// (negative = speedup), the normalization of Figures 11, 12 and 15.
#[must_use]
pub fn pct_slowdown(test_cycles: u64, baseline_cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        0.0
    } else {
        100.0 * (test_cycles as f64 - baseline_cycles as f64) / baseline_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_sign_convention() {
        assert_eq!(pct_slowdown(110, 100), 10.0);
        assert_eq!(pct_slowdown(90, 100), -10.0);
        assert_eq!(pct_slowdown(100, 0), 0.0);
    }
}
