//! Parallel differential-sweep harness.
//!
//! Runs a set of jobs (region + binding pairs) through a matrix of
//! simulation variants on a scoped worker pool, differential-checking
//! every run against the in-order [`crate::reference`] executor and
//! aggregating per-run cycle, energy, event and stall statistics into a
//! machine-readable report.
//!
//! Determinism contract: the sweep's output — including the JSON report
//! from [`SweepResult::to_json`] — depends only on the jobs, the variant
//! matrix and the [`SimConfig`], **never** on the worker-thread count or
//! on scheduling. Workers claim job indices from a shared counter and the
//! results are re-assembled in job order; no wall-clock quantity enters
//! the report. The contract holds for degraded runs too: a run that
//! deadlocks, errors or panics yields a deterministic [`RunStatus`] and
//! detail string, byte-identical for any thread count.
//!
//! Degradation contract: every run is isolated. A failing run — a
//! structured [`SimError`], a detected injected fault, even a panic —
//! records its [`RunStatus`] in its slot of the report and the remaining
//! runs proceed untouched; the sweep itself never fails.
//!
//! ```
//! use nachos::sweep::{run_sweep, SweepConfig, SweepJob, SweepVariant};
//! use nachos_ir::{AffineExpr, Binding, MemRef, RegionBuilder};
//!
//! let mut b = RegionBuilder::new("demo");
//! let g = b.global("g", 64, 0);
//! let m = MemRef::affine(g, AffineExpr::zero());
//! let x = b.input();
//! b.store(m.clone(), &[x]);
//! b.load(m, &[]);
//! let job = SweepJob::new(
//!     "demo",
//!     b.finish(),
//!     Binding { base_addrs: vec![0x1_0000], ..Binding::default() },
//! );
//! let cfg = SweepConfig::default().with_invocations(4);
//! let sweep = run_sweep(&[job], &cfg);
//! assert!(sweep.all_match());
//! ```

use crate::config::{Backend, SimConfig};
use crate::driver::{run_backend_with_stages_in, ExperimentRun};
use crate::energy::EnergyModel;
use crate::engine::SimArena;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::json::JsonWriter;
use crate::reference::{self, ReferenceResult};
use nachos_alias::StageConfig;
use nachos_ir::{Binding, Region};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::{fmt, thread};

/// One unit of sweep work: a compiled-from region with its address binding.
#[derive(Clone, Debug)]
pub struct SweepJob {
    /// Job name (workload name in the standard suite).
    pub name: String,
    /// The region to compile and simulate.
    pub region: Region,
    /// Address binding for the region's symbols.
    pub binding: Binding,
    /// Per-job fault-injection plan, appended to the sweep-wide plan in
    /// [`SweepConfig`]'s base [`SimConfig`] (empty by default).
    pub fault: FaultPlan,
}

impl SweepJob {
    /// A job with no fault injection.
    #[must_use]
    pub fn new(name: impl Into<String>, region: Region, binding: Binding) -> Self {
        Self {
            name: name.into(),
            region,
            binding,
            fault: FaultPlan::default(),
        }
    }

    /// Sets the job's fault plan, builder-style.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

/// One column of the sweep matrix: a backend plus its compiler staging.
#[derive(Clone, Debug)]
pub struct SweepVariant {
    /// Stable label used in reports (e.g. `"nachos-sw"`).
    pub label: String,
    /// Simulated backend.
    pub backend: Backend,
    /// Compiler stage configuration (ignored by [`Backend::OptLsq`]).
    pub stages: StageConfig,
}

impl SweepVariant {
    /// The paper's three-backend comparison matrix, in comparison order.
    #[must_use]
    pub fn paper_matrix() -> Vec<SweepVariant> {
        vec![
            SweepVariant {
                label: "opt-lsq".into(),
                backend: Backend::OptLsq,
                stages: StageConfig::full(),
            },
            SweepVariant {
                label: "nachos-sw".into(),
                backend: Backend::NachosSw,
                stages: StageConfig::full(),
            },
            SweepVariant {
                label: "nachos".into(),
                backend: Backend::Nachos,
                stages: StageConfig::full(),
            },
        ]
    }

    /// The experiment-harness matrix: the paper's three backends plus
    /// NACHOS-SW under the baseline compiler (Figures 12 and 16).
    #[must_use]
    pub fn bench_matrix() -> Vec<SweepVariant> {
        let mut v = Self::paper_matrix();
        v.push(SweepVariant {
            label: "nachos-sw-baseline".into(),
            backend: Backend::NachosSw,
            stages: StageConfig::baseline(),
        });
        v
    }

    /// The IDEAL oracle variant (perfect-disambiguation upper bound,
    /// paper Figure 9). Opt-in: never part of the default matrices, so
    /// default reports are unchanged; append it last (see
    /// [`SweepConfig::with_ideal`]) to keep the shared columns in the
    /// standard order.
    #[must_use]
    pub fn ideal() -> SweepVariant {
        SweepVariant {
            label: "ideal".into(),
            backend: Backend::Ideal,
            stages: StageConfig::full(),
        }
    }
}

/// Sweep-wide configuration.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Base simulator configuration (shared by every run).
    pub sim: SimConfig,
    /// Energy model (shared by every run).
    pub energy: EnergyModel,
    /// The variant matrix; every job runs every variant.
    pub variants: Vec<SweepVariant>,
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            sim: SimConfig::default(),
            energy: EnergyModel::default(),
            variants: SweepVariant::paper_matrix(),
            threads: 0,
        }
    }
}

impl SweepConfig {
    /// Sets the per-run invocation count, builder-style.
    #[must_use]
    pub fn with_invocations(mut self, invocations: u64) -> Self {
        self.sim.invocations = invocations;
        self
    }

    /// Sets the worker-thread count, builder-style (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the variant matrix, builder-style.
    #[must_use]
    pub fn with_variants(mut self, variants: Vec<SweepVariant>) -> Self {
        self.variants = variants;
        self
    }

    /// Appends the [`SweepVariant::ideal`] oracle column to the matrix
    /// (the sweep binary's `--ideal` flag). Appending keeps the existing
    /// columns — and therefore the default report prefix — untouched.
    #[must_use]
    pub fn with_ideal(mut self) -> Self {
        self.variants.push(SweepVariant::ideal());
        self
    }
}

/// Per-run verdict of the sweep harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Completed and matched the reference executor.
    Ok,
    /// Completed but diverged from the reference with no fault injected —
    /// a genuine correctness bug in the simulated backend.
    Mismatch,
    /// The engine watchdog diagnosed a deadlock ([`SimError::Deadlock`]).
    Deadlock,
    /// A fault-injection run in which the harness caught the injected
    /// perturbation: either a structured engine error under an active
    /// plan, or a divergence after an injected fault fired.
    FaultDetected,
    /// The run panicked; the panic was contained to this run.
    Panic,
    /// Any other structured [`SimError`] outside fault injection.
    Error,
}

impl RunStatus {
    /// Stable lowercase label used in the JSON report.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Mismatch => "mismatch",
            RunStatus::Deadlock => "deadlock",
            RunStatus::FaultDetected => "fault_detected",
            RunStatus::Panic => "panic",
            RunStatus::Error => "error",
        }
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One variant's run within a job, with its differential verdict.
#[derive(Clone, Debug)]
pub struct VariantOutcome {
    /// The variant's label.
    pub variant: String,
    /// The simulated backend.
    pub backend: Backend,
    /// The harness verdict for this run.
    pub status: RunStatus,
    /// The compiled-and-simulated run (absent when the run errored or
    /// panicked).
    pub run: Option<ExperimentRun>,
    /// The structured engine error, when the run returned one.
    pub error: Option<SimError>,
    /// Deterministic human-readable failure detail (error display or
    /// panic message); absent for [`RunStatus::Ok`].
    pub detail: Option<String>,
}

impl VariantOutcome {
    /// `true` iff the run completed and matched the reference executor.
    #[must_use]
    pub fn matches_reference(&self) -> bool {
        self.status == RunStatus::Ok
    }

    /// The completed run, for callers that require a clean sweep.
    ///
    /// # Panics
    ///
    /// Panics with the run's recorded detail when the run did not
    /// complete.
    #[must_use]
    pub fn expect_run(&self) -> &ExperimentRun {
        match &self.run {
            Some(run) => run,
            None => panic!(
                "sweep run [{}] did not complete: {} ({})",
                self.variant,
                self.status,
                self.detail.as_deref().unwrap_or("no detail"),
            ),
        }
    }

    /// Deterministic descriptions of injected faults that fired in this
    /// run (from the completed result or the deadlock dump).
    #[must_use]
    pub fn injected(&self) -> &[String] {
        if let Some(run) = &self.run {
            return &run.sim.injected;
        }
        if let Some(SimError::Deadlock(info)) = &self.error {
            return &info.injected;
        }
        &[]
    }
}

/// All of one job's runs plus the shared reference execution.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// Ground truth from the in-order reference executor.
    pub reference: ReferenceResult,
    /// One outcome per configured variant, in variant order.
    pub runs: Vec<VariantOutcome>,
}

/// The assembled sweep: job outcomes in job order.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Invocations simulated per run.
    pub invocations: u64,
    /// Variant labels, in matrix order.
    pub variants: Vec<String>,
    /// Per-job outcomes, in input-job order.
    pub jobs: Vec<JobOutcome>,
}

/// Runs every job through every variant on a scoped worker pool.
///
/// Results are identical for any worker-thread count; see the module
/// documentation for the determinism contract. Runs degrade gracefully:
/// a run that errors, deadlocks or panics records its [`RunStatus`] and
/// the sweep continues — this function never fails.
///
/// # Panics
///
/// Re-raises panics that escape the per-run isolation boundary (job
/// setup, the reference executor) — never a backend run's own panic.
pub fn run_sweep(jobs: &[SweepJob], cfg: &SweepConfig) -> SweepResult {
    let threads = effective_threads(cfg.threads, jobs.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<(usize, JobOutcome)> = Vec::with_capacity(jobs.len());
    thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    // One arena per worker: simulation state is built once
                    // and reset between runs instead of reallocated.
                    let mut arena = SimArena::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        mine.push((i, run_job(&jobs[i], cfg, &mut arena)));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => slots.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots.sort_by_key(|(i, _)| *i);
    SweepResult {
        invocations: cfg.sim.invocations,
        variants: cfg.variants.iter().map(|v| v.label.clone()).collect(),
        jobs: slots.into_iter().map(|(_, j)| j).collect(),
    }
}

fn effective_threads(requested: usize, jobs: usize) -> usize {
    let auto = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let n = if requested == 0 { auto } else { requested };
    n.clamp(1, jobs.max(1))
}

/// Runs one job through the whole variant matrix, sequentially, isolating
/// each run behind a panic boundary.
fn run_job(job: &SweepJob, cfg: &SweepConfig, arena: &mut SimArena) -> JobOutcome {
    let reference = reference::execute(&job.region, &job.binding, cfg.sim.invocations);
    let mut sim_cfg = cfg.sim.clone();
    sim_cfg
        .fault
        .faults
        .extend(job.fault.faults.iter().copied());
    let runs = cfg
        .variants
        .iter()
        .map(|v| run_variant(job, v, &sim_cfg, &cfg.energy, &reference, arena))
        .collect();
    JobOutcome {
        name: job.name.clone(),
        reference,
        runs,
    }
}

/// Runs one (job, variant) cell and classifies the outcome. This is the
/// per-run isolation boundary: a panic inside the engine is caught here
/// and recorded as [`RunStatus::Panic`] instead of poisoning the sweep.
fn run_variant(
    job: &SweepJob,
    v: &SweepVariant,
    sim_cfg: &SimConfig,
    energy: &EnergyModel,
    reference: &ReferenceResult,
    arena: &mut SimArena,
) -> VariantOutcome {
    let fault_active = sim_cfg.fault.applies_to(v.backend);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        run_backend_with_stages_in(
            arena,
            &job.region,
            &job.binding,
            v.backend,
            sim_cfg,
            energy,
            v.stages,
        )
    }));
    let (status, run, error, detail) = match caught {
        Err(payload) => {
            // The engine unwound while holding the arena's buffers; drop
            // whatever is left and start the next run from a fresh pool.
            *arena = SimArena::new();
            (
                RunStatus::Panic,
                None,
                None,
                Some(panic_message(payload.as_ref())),
            )
        }
        Ok(Err(e)) => {
            let status = match &e {
                SimError::Deadlock(_) => RunStatus::Deadlock,
                _ if fault_active => RunStatus::FaultDetected,
                _ => RunStatus::Error,
            };
            let detail = e.to_string();
            (status, None, Some(e), Some(detail))
        }
        Ok(Ok(run)) => {
            let diverged =
                run.sim.mem != reference.mem || run.sim.loads.digest() != reference.loads.digest();
            if !diverged {
                (RunStatus::Ok, Some(run), None, None)
            } else if run.sim.injected.is_empty() {
                (
                    RunStatus::Mismatch,
                    Some(run),
                    None,
                    Some("diverged from the in-order reference executor".into()),
                )
            } else {
                let detail = format!(
                    "diverged from the reference after injected faults: {}",
                    run.sim.injected.join(", ")
                );
                (RunStatus::FaultDetected, Some(run), None, Some(detail))
            }
        }
    };
    VariantOutcome {
        variant: v.label.clone(),
        backend: v.backend,
        status,
        run,
        error,
        detail,
    }
}

/// Extracts the deterministic message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".into()
    }
}

impl SweepResult {
    /// `true` iff every run of every job completed and matched the
    /// reference executor.
    #[must_use]
    pub fn all_match(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| j.runs.iter().all(|r| r.status == RunStatus::Ok))
    }

    /// `(job, variant)` labels of every non-[`RunStatus::Ok`] run, in
    /// sweep order.
    #[must_use]
    pub fn mismatches(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for j in &self.jobs {
            for r in &j.runs {
                if r.status != RunStatus::Ok {
                    out.push((j.name.clone(), r.variant.clone()));
                }
            }
        }
        out
    }

    /// Every run's `(job, variant, status)` triple, in sweep order.
    #[must_use]
    pub fn statuses(&self) -> Vec<(String, String, RunStatus)> {
        let mut out = Vec::new();
        for j in &self.jobs {
            for r in &j.runs {
                out.push((j.name.clone(), r.variant.clone(), r.status));
            }
        }
        out
    }

    /// Serializes the sweep to JSON (schema `nachos-sweep-v2`).
    ///
    /// The writer is hand-rolled (the workspace takes no serialization
    /// dependency) and emits keys in a fixed order; the output is
    /// byte-identical across runs and worker-thread counts — including
    /// for degraded runs, whose `status` and `detail` fields are
    /// deterministic.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_obj();
        w.str_field("schema", "nachos-sweep-v2");
        w.u64_field("invocations", self.invocations);
        w.key("variants");
        w.open_arr();
        for v in &self.variants {
            w.str_item(v);
        }
        w.close_arr();
        w.key("jobs");
        w.open_arr();
        for j in &self.jobs {
            j.write_json(&mut w);
        }
        w.close_arr();
        w.close_obj();
        w.finish()
    }
}

impl JobOutcome {
    fn write_json(&self, w: &mut JsonWriter) {
        w.open_obj();
        w.str_field("name", &self.name);
        w.key("reference");
        {
            let (hash, count) = self.reference.loads.digest();
            w.open_obj();
            w.u64_field("load_digest", hash);
            w.u64_field("load_count", count);
            w.u64_field("mem_footprint", self.reference.mem.footprint() as u64);
            w.close_obj();
        }
        w.key("runs");
        w.open_arr();
        for r in &self.runs {
            r.write_json(w);
        }
        w.close_arr();
        w.close_obj();
    }
}

impl VariantOutcome {
    fn write_json(&self, w: &mut JsonWriter) {
        w.open_obj();
        w.str_field("variant", &self.variant);
        w.str_field("backend", &self.backend.to_string());
        w.str_field("status", self.status.as_str());
        w.bool_field("matches_reference", self.status == RunStatus::Ok);
        if let Some(detail) = &self.detail {
            w.str_field("detail", detail);
        }
        let injected = self.injected();
        if !injected.is_empty() {
            w.key("injected");
            w.open_arr();
            for f in injected {
                w.str_item(f);
            }
            w.close_arr();
        }
        let Some(run) = &self.run else {
            // Degraded run: no simulation result to report.
            w.close_obj();
            return;
        };
        let sim = &run.sim;
        w.u64_field("cycles", sim.cycles);
        w.key("stalls");
        {
            let s = &sim.stalls;
            w.open_obj();
            w.u64_field("lsq_alloc", s.lsq_alloc);
            w.u64_field("lsq_search", s.lsq_search);
            w.u64_field("token", s.token);
            w.u64_field("may_gate", s.may_gate);
            w.u64_field("comparator", s.comparator);
            w.u64_field("mem_port", s.mem_port);
            w.u64_field("total", s.total());
            w.close_obj();
        }
        w.key("events");
        {
            let e = &sim.events;
            w.open_obj();
            w.u64_field("int_ops", e.int_ops);
            w.u64_field("fp_ops", e.fp_ops);
            w.u64_field("data_links", e.data_links);
            w.u64_field("mem_links", e.mem_links);
            w.u64_field("may_checks", e.may_checks);
            w.u64_field("must_tokens", e.must_tokens);
            w.u64_field("l1_accesses", e.l1_accesses);
            w.u64_field("lsq_allocs", e.lsq_allocs);
            w.u64_field("lsq_bank_overflows", e.lsq_bank_overflows);
            w.u64_field("lsq_bloom_queries", e.lsq_bloom_queries);
            w.u64_field("lsq_bloom_hits", e.lsq_bloom_hits);
            w.u64_field("lsq_cam_loads", e.lsq_cam_loads);
            w.u64_field("lsq_cam_stores", e.lsq_cam_stores);
            w.u64_field("forwards", e.forwards);
            w.close_obj();
        }
        w.key("energy_fj");
        {
            let en = &sim.energy;
            w.open_obj();
            w.f64_field("compute", en.compute);
            w.f64_field("mde", en.mde);
            w.f64_field("lsq_bloom", en.lsq_bloom);
            w.f64_field("lsq_cam", en.lsq_cam);
            w.f64_field("l1", en.l1);
            w.f64_field("total", en.total());
            w.close_obj();
        }
        w.key("l1");
        cache_json(w, sim.l1.hits, sim.l1.misses, sim.l1.writebacks);
        w.key("llc");
        cache_json(w, sim.llc.hits, sim.llc.misses, sim.llc.writebacks);
        w.close_obj();
    }
}

fn cache_json(w: &mut JsonWriter, hits: u64, misses: u64, writebacks: u64) {
    w.open_obj();
    w.u64_field("hits", hits);
    w.u64_field("misses", misses);
    w.u64_field("writebacks", writebacks);
    w.close_obj();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::store_load_region;

    fn demo_job(name: &str) -> SweepJob {
        let (region, binding) = store_load_region(name);
        SweepJob::new(name, region, binding)
    }

    #[test]
    fn sweep_runs_and_matches_reference() {
        let jobs = [demo_job("a"), demo_job("b")];
        let cfg = SweepConfig::default().with_invocations(4);
        let sweep = run_sweep(&jobs, &cfg);
        assert_eq!(sweep.jobs.len(), 2);
        assert_eq!(sweep.variants, ["opt-lsq", "nachos-sw", "nachos"]);
        assert!(sweep.all_match());
        assert!(sweep.mismatches().is_empty());
        for (_, _, status) in sweep.statuses() {
            assert_eq!(status, RunStatus::Ok);
        }
    }

    #[test]
    fn ideal_variant_is_appended_and_matches_reference() {
        let jobs = [demo_job("a")];
        let base = SweepConfig::default().with_invocations(4);
        let plain = run_sweep(&jobs, &base.clone());
        let with_ideal = run_sweep(&jobs, &base.with_ideal());
        assert_eq!(
            with_ideal.variants,
            ["opt-lsq", "nachos-sw", "nachos", "ideal"],
            "the oracle column is appended last"
        );
        assert!(with_ideal.all_match(), "IDEAL matches the reference too");
        // Opt-in contract: the shared columns are byte-identical to the
        // default report.
        let plain_json = plain.to_json();
        let ideal_json = with_ideal.to_json();
        for v in &plain.variants {
            assert!(ideal_json.contains(&format!("\"variant\": \"{v}\"")));
        }
        assert!(!plain_json.contains("\"variant\": \"ideal\""));
    }

    #[test]
    fn report_is_thread_count_independent() {
        let jobs: Vec<SweepJob> = (0..5).map(|i| demo_job(&format!("j{i}"))).collect();
        let base = SweepConfig::default().with_invocations(3);
        let serial = run_sweep(&jobs, &base.clone().with_threads(1));
        let wide = run_sweep(&jobs, &base.with_threads(4));
        assert_eq!(serial.to_json(), wide.to_json());
    }

    #[test]
    fn json_report_has_schema_and_balanced_structure() {
        let jobs = [demo_job("a")];
        let cfg = SweepConfig::default()
            .with_invocations(2)
            .with_variants(SweepVariant::bench_matrix());
        let sweep = run_sweep(&jobs, &cfg);
        let json = sweep.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"schema\": \"nachos-sweep-v2\""));
        assert!(json.contains("\"nachos-sw-baseline\""));
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"matches_reference\": true"));
        assert!(json.contains("\"stalls\""));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn degraded_runs_are_isolated_and_reported() {
        use crate::fault::{FaultKind, FaultSpec};
        // Job "b" panics while handling its very first engine event under
        // the NACHOS variant only; every other run must stay ok.
        let jobs = [
            demo_job("a"),
            demo_job("b").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::PanicOnEvent, 0).on_backend(Backend::Nachos),
            )),
            demo_job("c"),
        ];
        let cfg = SweepConfig::default().with_invocations(2);
        let sweep = run_sweep(&jobs, &cfg);
        assert!(!sweep.all_match());
        assert_eq!(
            sweep.mismatches(),
            [("b".to_string(), "nachos".to_string())]
        );
        let bad = &sweep.jobs[1].runs[2];
        assert_eq!(bad.status, RunStatus::Panic);
        assert!(bad.run.is_none());
        assert!(
            bad.detail
                .as_deref()
                .unwrap_or("")
                .contains("injected fault"),
            "panic detail carries the deterministic message"
        );
        let ok_runs = sweep
            .statuses()
            .iter()
            .filter(|(_, _, s)| *s == RunStatus::Ok)
            .count();
        assert_eq!(ok_runs, 8, "8 of 9 runs unaffected");
        let json = sweep.to_json();
        assert!(json.contains("\"status\": \"panic\""));
    }

    #[test]
    fn degraded_report_is_thread_count_independent() {
        use crate::fault::{FaultKind, FaultSpec};
        let mut jobs: Vec<SweepJob> = (0..6).map(|i| demo_job(&format!("j{i}"))).collect();
        // A panic, a deadlock and a detected corruption sprinkled across
        // the matrix must not disturb byte-determinism.
        jobs[1].fault = FaultPlan::single(
            FaultSpec::new(FaultKind::PanicOnEvent, 3).on_backend(Backend::OptLsq),
        );
        jobs[3].fault = FaultPlan::single(
            FaultSpec::new(FaultKind::DropToken, 0).on_backend(Backend::NachosSw),
        );
        jobs[4].fault = FaultPlan::single(
            FaultSpec::new(FaultKind::CorruptForward { mask: 0xff }, 0).on_backend(Backend::Nachos),
        );
        let base = SweepConfig::default().with_invocations(3);
        let serial = run_sweep(&jobs, &base.clone().with_threads(1));
        let wide = run_sweep(&jobs, &base.clone().with_threads(4));
        let wider = run_sweep(&jobs, &base.with_threads(8));
        assert_eq!(serial.to_json(), wide.to_json());
        assert_eq!(serial.to_json(), wider.to_json());
        assert!(!serial.all_match());
    }
}
