//! Parallel differential-sweep harness with crash-recoverable
//! orchestration.
//!
//! Runs a set of jobs (region + binding pairs) through a matrix of
//! simulation variants on a scoped worker pool, differential-checking
//! every run against the in-order [`crate::reference`] executor and
//! aggregating per-run cycle, energy, event and stall statistics into a
//! machine-readable report.
//!
//! Determinism contract: the sweep's output — including the JSON report
//! from [`SweepResult::to_json`] — depends only on the jobs, the variant
//! matrix and the [`SimConfig`], **never** on the worker-thread count or
//! on scheduling. Workers claim job indices from a shared counter and the
//! results are re-assembled in job order; no wall-clock quantity enters
//! the report. The contract holds for degraded runs too: a run that
//! deadlocks, errors or panics yields a deterministic [`RunStatus`] and
//! detail string, byte-identical for any thread count.
//!
//! Degradation contract: every run is isolated, in depth:
//!
//! * a failing run — a structured [`SimError`], a detected injected
//!   fault, even a panic — records its [`RunStatus`] in its slot of the
//!   report and the remaining runs proceed untouched;
//! * transient failures (panic, deadlock, error) are retried up to the
//!   configured [`RetryPolicy`] budget, each attempt under a seed derived
//!   deterministically from the run's content key
//!   ([`journal::derive_seed`] — no wall-clock), with every attempt
//!   recorded in the report;
//! * a run that still panics once its attempt budget is exhausted is
//!   elevated to [`RunStatus::Quarantined`] rather than poisoning the
//!   sweep;
//! * a panic that escapes the per-run boundary (job setup, the reference
//!   executor) kills only its worker thread; the supervisor respawns
//!   workers and, after [`SweepConfig::quarantine_after`] such strikes,
//!   quarantines the offending job wholesale.
//!
//! Crash-recovery contract: when a durable [`journal::Journal`] is
//! attached ([`run_sweep_journaled`]), every completed cell is fsynced to
//! an append-only JSONL file keyed by a content hash of its inputs. After
//! a crash — or a [`crate::CancelToken`] stop — re-running with the
//! resumed journal replays completed cells and re-executes only the rest,
//! and the final report is **byte-identical** to an uninterrupted run.
//!
//! ```
//! use nachos::sweep::{run_sweep, SweepConfig, SweepJob, SweepVariant};
//! use nachos_ir::{AffineExpr, Binding, MemRef, RegionBuilder};
//!
//! let mut b = RegionBuilder::new("demo");
//! let g = b.global("g", 64, 0);
//! let m = MemRef::affine(g, AffineExpr::zero());
//! let x = b.input();
//! b.store(m.clone(), &[x]);
//! b.load(m, &[]);
//! let job = SweepJob::new(
//!     "demo",
//!     b.finish(),
//!     Binding { base_addrs: vec![0x1_0000], ..Binding::default() },
//! );
//! let cfg = SweepConfig::default().with_invocations(4);
//! let sweep = run_sweep(&[job], &cfg);
//! assert!(sweep.all_match());
//! ```

pub mod cache;
pub mod daemon;
pub mod heartbeat;
pub mod journal;
pub mod shard;

use crate::config::{Backend, SimConfig};
use crate::driver::{compile_for_backend, run_backend_compiled_in, CompiledRegion, ExperimentRun};
use crate::energy::EnergyModel;
use crate::engine::SimArena;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::json::JsonWriter;
use crate::reference::{self, ReferenceResult};
use journal::{Attempt, Journal, OutcomeRecord, RunKey, RunMetrics, RunRecord};
use nachos_alias::StageConfig;
use nachos_ir::{Binding, Region};
use nachos_mem::DataMemory;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::{fmt, thread};

/// One unit of sweep work: a compiled-from region with its address binding.
#[derive(Clone, Debug)]
pub struct SweepJob {
    /// Job name (workload name in the standard suite).
    pub name: String,
    /// The region to compile and simulate.
    pub region: Region,
    /// Address binding for the region's symbols.
    pub binding: Binding,
    /// Per-job fault-injection plan, appended to the sweep-wide plan in
    /// [`SweepConfig`]'s base [`SimConfig`] (empty by default).
    pub fault: FaultPlan,
}

impl SweepJob {
    /// A job with no fault injection.
    #[must_use]
    pub fn new(name: impl Into<String>, region: Region, binding: Binding) -> Self {
        Self {
            name: name.into(),
            region,
            binding,
            fault: FaultPlan::default(),
        }
    }

    /// Sets the job's fault plan, builder-style.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

/// One column of the sweep matrix: a backend plus its compiler staging.
#[derive(Clone, Debug)]
pub struct SweepVariant {
    /// Stable label used in reports (e.g. `"nachos-sw"`).
    pub label: String,
    /// Simulated backend.
    pub backend: Backend,
    /// Compiler stage configuration (ignored by [`Backend::OptLsq`]).
    pub stages: StageConfig,
}

impl SweepVariant {
    /// The paper's three-backend comparison matrix, in comparison order.
    #[must_use]
    pub fn paper_matrix() -> Vec<SweepVariant> {
        vec![
            SweepVariant {
                label: "opt-lsq".into(),
                backend: Backend::OptLsq,
                stages: StageConfig::full(),
            },
            SweepVariant {
                label: "nachos-sw".into(),
                backend: Backend::NachosSw,
                stages: StageConfig::full(),
            },
            SweepVariant {
                label: "nachos".into(),
                backend: Backend::Nachos,
                stages: StageConfig::full(),
            },
        ]
    }

    /// The experiment-harness matrix: the paper's three backends plus
    /// NACHOS-SW under the baseline compiler (Figures 12 and 16).
    #[must_use]
    pub fn bench_matrix() -> Vec<SweepVariant> {
        let mut v = Self::paper_matrix();
        v.push(SweepVariant {
            label: "nachos-sw-baseline".into(),
            backend: Backend::NachosSw,
            stages: StageConfig::baseline(),
        });
        v
    }

    /// The IDEAL oracle variant (perfect-disambiguation upper bound,
    /// paper Figure 9). Opt-in: never part of the default matrices, so
    /// default reports are unchanged; append it last (see
    /// [`SweepConfig::with_ideal`]) to keep the shared columns in the
    /// standard order.
    #[must_use]
    pub fn ideal() -> SweepVariant {
        SweepVariant {
            label: "ideal".into(),
            backend: Backend::Ideal,
            stages: StageConfig::full(),
        }
    }
}

/// Bounded deterministic retry policy for transient run failures.
///
/// A transient status ([`RunStatus::is_transient`]: panic, deadlock,
/// error) is retried until it either resolves or the attempt budget of
/// `max_retries + 1` total attempts is exhausted. Each attempt runs under
/// a seed derived from the run's content key and the attempt index
/// ([`journal::derive_seed`]) — never from the wall clock — so the
/// attempt log in the report is byte-deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (default `0`: no retries).
    pub max_retries: u32,
}

impl RetryPolicy {
    /// A policy allowing `max_retries` extra attempts.
    #[must_use]
    pub fn retries(max_retries: u32) -> Self {
        Self { max_retries }
    }
}

/// Sweep-wide configuration.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Base simulator configuration (shared by every run).
    pub sim: SimConfig,
    /// Energy model (shared by every run).
    pub energy: EnergyModel,
    /// The variant matrix; every job runs every variant.
    pub variants: Vec<SweepVariant>,
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// Retry policy for transient per-run failures.
    pub retry: RetryPolicy,
    /// Worker-kill strikes before a job is quarantined wholesale: a panic
    /// that escapes the per-run boundary retires its worker thread, and a
    /// job that does so this many times stops being rescheduled (`0` is
    /// treated as `1`). Default `3`.
    pub quarantine_after: u32,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            sim: SimConfig::default(),
            energy: EnergyModel::default(),
            variants: SweepVariant::paper_matrix(),
            threads: 0,
            retry: RetryPolicy::default(),
            quarantine_after: 3,
        }
    }
}

impl SweepConfig {
    /// Sets the per-run invocation count, builder-style.
    #[must_use]
    pub fn with_invocations(mut self, invocations: u64) -> Self {
        self.sim.invocations = invocations;
        self
    }

    /// Sets the worker-thread count, builder-style (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the variant matrix, builder-style.
    #[must_use]
    pub fn with_variants(mut self, variants: Vec<SweepVariant>) -> Self {
        self.variants = variants;
        self
    }

    /// Sets the transient-failure retry budget, builder-style.
    #[must_use]
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.retry = RetryPolicy::retries(max_retries);
        self
    }

    /// Appends the [`SweepVariant::ideal`] oracle column to the matrix
    /// (the sweep binary's `--ideal` flag). Appending keeps the existing
    /// columns — and therefore the default report prefix — untouched.
    #[must_use]
    pub fn with_ideal(mut self) -> Self {
        self.variants.push(SweepVariant::ideal());
        self
    }

    /// Runs the certificate-carrying MDE optimizer (`nachos-opt`) on every
    /// MDE-backend cell, builder-style (the sweep binary's `--optimize`
    /// flag). Each run then reports its `opt` rewrite counters.
    #[must_use]
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.sim.optimize = optimize;
        self
    }
}

/// Per-run verdict of the sweep harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Completed and matched the reference executor.
    Ok,
    /// Completed but diverged from the reference with no fault injected —
    /// a genuine correctness bug in the simulated backend.
    Mismatch,
    /// The engine watchdog diagnosed a deadlock ([`SimError::Deadlock`]).
    Deadlock,
    /// A fault-injection run in which the harness caught the injected
    /// perturbation: either a structured engine error under an active
    /// plan, or a divergence after an injected fault fired.
    FaultDetected,
    /// The run panicked; the panic was contained to this run.
    Panic,
    /// Any other structured [`SimError`] outside fault injection.
    Error,
    /// The run (or its whole job) kept killing workers: it panicked on
    /// every attempt of an exhausted retry budget, or its job-level setup
    /// panicked [`SweepConfig::quarantine_after`] times. The run is
    /// parked so the rest of the sweep completes.
    Quarantined,
    /// The run was stopped through its [`crate::CancelToken`]. Cancelled
    /// runs are never journaled: resuming re-executes them.
    Cancelled,
}

impl RunStatus {
    /// Stable lowercase label used in the JSON report and the journal.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Mismatch => "mismatch",
            RunStatus::Deadlock => "deadlock",
            RunStatus::FaultDetected => "fault_detected",
            RunStatus::Panic => "panic",
            RunStatus::Error => "error",
            RunStatus::Quarantined => "quarantined",
            RunStatus::Cancelled => "cancelled",
        }
    }

    /// Parses the stable label back (journal replay).
    #[must_use]
    pub fn from_label(s: &str) -> Option<RunStatus> {
        Some(match s {
            "ok" => RunStatus::Ok,
            "mismatch" => RunStatus::Mismatch,
            "deadlock" => RunStatus::Deadlock,
            "fault_detected" => RunStatus::FaultDetected,
            "panic" => RunStatus::Panic,
            "error" => RunStatus::Error,
            "quarantined" => RunStatus::Quarantined,
            "cancelled" => RunStatus::Cancelled,
            _ => return None,
        })
    }

    /// `true` for statuses the [`RetryPolicy`] treats as retryable.
    /// Differential verdicts (`ok`/`mismatch`/`fault_detected`) are
    /// deterministic conclusions, quarantine is final, and cancellation
    /// is a user decision — none of those are retried.
    #[must_use]
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            RunStatus::Panic | RunStatus::Deadlock | RunStatus::Error
        )
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One variant's run within a job, with its differential verdict.
#[derive(Clone, Debug)]
pub struct VariantOutcome {
    /// The variant's label.
    pub variant: String,
    /// The simulated backend.
    pub backend: Backend,
    /// The harness verdict for this run.
    pub status: RunStatus,
    /// The compiled-and-simulated run. Present only for runs executed
    /// live in this process *and* completed; absent for degraded runs and
    /// for cells replayed from a journal (which carry [`Self::metrics`]
    /// instead).
    pub run: Option<ExperimentRun>,
    /// The structured engine error, when the run returned one live.
    pub error: Option<SimError>,
    /// Deterministic human-readable failure detail (error display or
    /// panic message); absent for [`RunStatus::Ok`].
    pub detail: Option<String>,
    /// Deterministic descriptions of injected faults that fired, in
    /// firing order.
    pub injected: Vec<String>,
    /// Every supervised attempt in attempt order (length ≥ 1), with its
    /// derived seed.
    pub attempts: Vec<Attempt>,
    /// The reportable metrics, present whenever the simulation produced a
    /// result (even a diverging one) — live or replayed.
    pub metrics: Option<RunMetrics>,
}

impl VariantOutcome {
    /// `true` iff the run completed and matched the reference executor.
    #[must_use]
    pub fn matches_reference(&self) -> bool {
        self.status == RunStatus::Ok
    }

    /// The completed live run, or a deterministic description of why it
    /// is unavailable (degraded status, or a journal-replayed cell that
    /// carries metrics but no live run).
    ///
    /// # Errors
    ///
    /// Returns the run's status and detail when no live run is present.
    pub fn try_run(&self) -> Result<&ExperimentRun, String> {
        self.run.as_ref().ok_or_else(|| {
            format!(
                "sweep run [{}] has no live result: {} ({})",
                self.variant,
                self.status,
                self.detail.as_deref().unwrap_or("no detail"),
            )
        })
    }

    /// The completed run, for callers that require a clean sweep.
    ///
    /// # Panics
    ///
    /// Panics with the run's recorded detail when the run did not
    /// complete. Fallible callers should prefer [`Self::try_run`].
    #[must_use]
    pub fn expect_run(&self) -> &ExperimentRun {
        match self.try_run() {
            Ok(run) => run,
            Err(why) => panic!("{why}"),
        }
    }

    /// Deterministic descriptions of injected faults that fired in this
    /// run (from the completed result, the deadlock dump, or the journal).
    #[must_use]
    pub fn injected(&self) -> &[String] {
        &self.injected
    }

    /// The journal form of this outcome.
    fn to_record(&self) -> OutcomeRecord {
        OutcomeRecord {
            status: self.status,
            detail: self.detail.clone(),
            injected: self.injected.clone(),
            attempts: self.attempts.clone(),
            metrics: self.metrics,
        }
    }

    /// Reconstructs an outcome from a journal record; the report bytes it
    /// produces are identical to the live run's.
    fn from_record(v: &SweepVariant, rec: OutcomeRecord) -> VariantOutcome {
        VariantOutcome {
            variant: v.label.clone(),
            backend: v.backend,
            status: rec.status,
            run: None,
            error: None,
            detail: rec.detail,
            injected: rec.injected,
            attempts: rec.attempts,
            metrics: rec.metrics,
        }
    }
}

/// All of one job's runs plus the shared reference execution.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// Ground truth from the in-order reference executor (empty for a
    /// quarantined job, whose setup never completed).
    pub reference: ReferenceResult,
    /// One outcome per configured variant, in variant order.
    pub runs: Vec<VariantOutcome>,
}

/// The assembled sweep: job outcomes in job order.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Invocations simulated per run.
    pub invocations: u64,
    /// Variant labels, in matrix order.
    pub variants: Vec<String>,
    /// Per-job outcomes, in input-job order.
    pub jobs: Vec<JobOutcome>,
}

/// Orchestration counters from a journaled sweep — how much work the
/// journal saved. Diagnostics only: none of this enters the report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Cells replayed from the journal without re-execution.
    pub replayed: usize,
    /// Cells executed live in this process.
    pub executed: usize,
    /// Journal appends that failed (the sweep continues; those cells are
    /// simply re-run on the next resume).
    pub journal_errors: usize,
}

/// Runs every job through every variant on a scoped worker pool.
///
/// Results are identical for any worker-thread count; see the module
/// documentation for the determinism contract. Runs degrade gracefully:
/// a run that errors, deadlocks or panics records its [`RunStatus`] and
/// the sweep continues — this function never fails. Equivalent to
/// [`run_sweep_journaled`] without a journal.
#[must_use]
pub fn run_sweep(jobs: &[SweepJob], cfg: &SweepConfig) -> SweepResult {
    run_sweep_journaled(jobs, cfg, None).0
}

/// [`run_sweep`] with an optional durable journal attached.
///
/// With a journal, every completed cell is appended (and fsynced) as it
/// finishes, and cells whose content key is already recorded are replayed
/// instead of re-executed — so a sweep interrupted by a crash, a kill or
/// a [`crate::CancelToken`] resumes where it left off and still produces
/// a report byte-identical to an uninterrupted run.
#[must_use]
pub fn run_sweep_journaled(
    jobs: &[SweepJob],
    cfg: &SweepConfig,
    journal: Option<&Journal>,
) -> (SweepResult, SweepStats) {
    let threads = effective_threads(cfg.threads, jobs.len());
    let sup = Supervisor::new();
    let mut slots: Vec<(usize, JobOutcome)> = Vec::with_capacity(jobs.len());
    thread::scope(|s| {
        // Supervision loop: spawn a round of workers, join them, and
        // respawn as long as a retired (panic-killed) worker left work
        // behind. A worker retires on every job-level panic, so each
        // round makes progress: the strike count of some job grows until
        // it either succeeds or is quarantined.
        loop {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let sup = &sup;
                    s.spawn(move || worker(jobs, cfg, journal, sup))
                })
                .collect();
            let mut any_retired = false;
            for h in handles {
                match h.join() {
                    Ok((part, retired)) => {
                        slots.extend(part);
                        any_retired |= retired;
                    }
                    // Unreachable in practice (workers catch job-level
                    // panics), kept as a backstop.
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            if !any_retired || !sup.work_left(jobs.len()) {
                break;
            }
        }
    });
    slots.sort_by_key(|(i, _)| *i);
    let stats = SweepStats {
        replayed: sup.replayed.load(Ordering::Relaxed),
        executed: sup.executed.load(Ordering::Relaxed),
        journal_errors: sup.journal_errors.load(Ordering::Relaxed),
    };
    let result = SweepResult {
        invocations: cfg.sim.invocations,
        variants: cfg.variants.iter().map(|v| v.label.clone()).collect(),
        jobs: slots.into_iter().map(|(_, j)| j).collect(),
    };
    (result, stats)
}

fn effective_threads(requested: usize, jobs: usize) -> usize {
    let auto = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let n = if requested == 0 { auto } else { requested };
    n.clamp(1, jobs.max(1))
}

/// Shared orchestration state: the claim counter, the requeue list for
/// jobs whose worker died, per-job strike counts, and the stats counters.
struct Supervisor {
    next: AtomicUsize,
    requeued: Mutex<Vec<usize>>,
    strikes: Mutex<HashMap<usize, u32>>,
    replayed: AtomicUsize,
    executed: AtomicUsize,
    journal_errors: AtomicUsize,
}

impl Supervisor {
    fn new() -> Self {
        Self {
            next: AtomicUsize::new(0),
            requeued: Mutex::new(Vec::new()),
            strikes: Mutex::new(HashMap::new()),
            replayed: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
            journal_errors: AtomicUsize::new(0),
        }
    }

    /// Claims the next job index: requeued strikes first, then the shared
    /// counter. Claim order does not affect the report (results are
    /// reassembled in job order and every outcome is deterministic).
    fn claim(&self, total: usize) -> Option<usize> {
        if let Ok(mut q) = self.requeued.lock() {
            if let Some(i) = q.pop() {
                return Some(i);
            }
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < total).then_some(i)
    }

    /// Records a worker-kill strike against job `i`, returning the new
    /// strike count.
    fn strike(&self, i: usize) -> u32 {
        match self.strikes.lock() {
            Ok(mut map) => {
                let n = map.entry(i).or_insert(0);
                *n += 1;
                *n
            }
            // A poisoned strike map means another worker panicked while
            // holding it, which cannot happen (the critical section is
            // panic-free); quarantine immediately as a safe fallback.
            Err(_) => u32::MAX,
        }
    }

    fn requeue(&self, i: usize) {
        if let Ok(mut q) = self.requeued.lock() {
            q.push(i);
        }
    }

    fn work_left(&self, total: usize) -> bool {
        let requeued = self.requeued.lock().map(|q| !q.is_empty()).unwrap_or(false);
        requeued || self.next.load(Ordering::Relaxed) < total
    }
}

/// One worker thread: claims jobs until none remain or a job-level panic
/// retires it. Returns its completed slots and whether it retired.
fn worker(
    jobs: &[SweepJob],
    cfg: &SweepConfig,
    journal: Option<&Journal>,
    sup: &Supervisor,
) -> (Vec<(usize, JobOutcome)>, bool) {
    let mut mine = Vec::new();
    // One arena per worker: simulation state is built once and reset
    // between runs instead of reallocated.
    let mut arena = SimArena::new();
    let mut retired = false;
    while let Some(i) = sup.claim(jobs.len()) {
        let job = &jobs[i];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_job(job, cfg, &mut arena, journal, sup)
        }));
        match caught {
            Ok(outcome) => mine.push((i, outcome)),
            Err(payload) => {
                // A panic escaped the per-run boundary (job setup or the
                // reference executor). This worker's arena state is
                // suspect and, in a real deployment, the thread itself
                // may be — retire it and let the supervisor respawn.
                let msg = panic_message(payload.as_ref());
                let strikes = sup.strike(i);
                if strikes >= cfg.quarantine_after.max(1) {
                    mine.push((i, quarantined_job(job, cfg, strikes, &msg)));
                } else {
                    sup.requeue(i);
                }
                retired = true;
                break;
            }
        }
    }
    (mine, retired)
}

/// The outcome of a job whose reference pass was cancelled: journaled
/// cells still replay (they settled before the cut and cost nothing),
/// every other cell is [`RunStatus::Cancelled`]. Nothing new is
/// journaled, so a resume re-executes the cancelled cells in full.
fn cancelled_job(
    job: &SweepJob,
    cfg: &SweepConfig,
    sim_cfg: &SimConfig,
    journal: Option<&Journal>,
    sup: &Supervisor,
) -> JobOutcome {
    let fp = journal::job_fingerprint(&job.region, &job.binding, sim_cfg);
    let runs = cfg
        .variants
        .iter()
        .map(|v| {
            let key = journal::run_key(fp, v);
            if let Some(rec) = journal.and_then(|j| j.lookup(key)) {
                sup.replayed.fetch_add(1, Ordering::Relaxed);
                return VariantOutcome::from_record(v, rec.clone());
            }
            VariantOutcome {
                variant: v.label.clone(),
                backend: v.backend,
                status: RunStatus::Cancelled,
                run: None,
                error: None,
                detail: Some("cancelled before the reference execution completed".to_owned()),
                injected: Vec::new(),
                attempts: vec![Attempt {
                    status: RunStatus::Cancelled,
                    seed: journal::derive_seed(key, 0),
                }],
                metrics: None,
            }
        })
        .collect();
    JobOutcome {
        name: job.name.clone(),
        reference: ReferenceResult {
            mem: DataMemory::new(),
            loads: crate::value::LoadObserver::new(),
        },
        runs,
    }
}

/// The outcome of a job whose setup killed `strikes` workers: every cell
/// is [`RunStatus::Quarantined`] with the deterministic panic message,
/// and the reference is empty (it never completed). Quarantined cells are
/// not journaled — if the underlying panic is deterministic a resume
/// reproduces the identical outcome, and if it was environmental the
/// resume gets a fresh chance at a real run.
fn quarantined_job(job: &SweepJob, cfg: &SweepConfig, strikes: u32, msg: &str) -> JobOutcome {
    let mut sim_cfg = cfg.sim.clone();
    sim_cfg
        .fault
        .faults
        .extend(job.fault.faults.iter().copied());
    let fp = journal::job_fingerprint(&job.region, &job.binding, &sim_cfg);
    let detail = format!("quarantined: job-level panic killed {strikes} workers: {msg}");
    let runs = cfg
        .variants
        .iter()
        .map(|v| {
            let key = journal::run_key(fp, v);
            VariantOutcome {
                variant: v.label.clone(),
                backend: v.backend,
                status: RunStatus::Quarantined,
                run: None,
                error: None,
                detail: Some(detail.clone()),
                injected: Vec::new(),
                attempts: vec![Attempt {
                    status: RunStatus::Quarantined,
                    seed: journal::derive_seed(key, 0),
                }],
                metrics: None,
            }
        })
        .collect();
    JobOutcome {
        name: job.name.clone(),
        reference: ReferenceResult {
            mem: DataMemory::new(),
            loads: crate::value::LoadObserver::new(),
        },
        runs,
    }
}

/// Runs one job through the whole variant matrix, sequentially, isolating
/// each run behind a panic boundary and replaying journaled cells.
fn run_job(
    job: &SweepJob,
    cfg: &SweepConfig,
    arena: &mut SimArena,
    journal: Option<&Journal>,
    sup: &Supervisor,
) -> JobOutcome {
    let mut sim_cfg = cfg.sim.clone();
    sim_cfg
        .fault
        .faults
        .extend(job.fault.faults.iter().copied());
    let fp = journal::job_fingerprint(&job.region, &job.binding, &sim_cfg);
    // A tripped cancel token stops even the reference pass: a sweep under
    // a wall-clock deadline must not hide in the in-order executor while
    // the engine (which polls per event) would have yielded long ago.
    let Some(reference) = reference::execute_cancellable(
        &job.region,
        &job.binding,
        cfg.sim.invocations,
        cfg.sim.cancel.as_ref(),
    ) else {
        return cancelled_job(job, cfg, &sim_cfg, journal, sup);
    };
    // Variants sharing a stage configuration and MDE requirement reuse
    // one compile: within a job, compilation depends only on those two
    // inputs (and `sim_cfg.optimize`, constant across the matrix).
    let mut compiles = CompileCache::default();
    let runs = cfg
        .variants
        .iter()
        .map(|v| {
            let key = journal::run_key(fp, v);
            if let Some(rec) = journal.and_then(|j| j.lookup(key)) {
                sup.replayed.fetch_add(1, Ordering::Relaxed);
                return VariantOutcome::from_record(v, rec.clone());
            }
            let out = run_cell(
                job,
                v,
                &sim_cfg,
                &cfg.energy,
                &reference,
                arena,
                &mut compiles,
                key,
                cfg.retry,
            );
            sup.executed.fetch_add(1, Ordering::Relaxed);
            // Cancelled cells stay out of the journal so a resumed sweep
            // re-executes them in full.
            if out.status != RunStatus::Cancelled {
                if let Some(j) = journal {
                    let rec = RunRecord {
                        key,
                        job: job.name.clone(),
                        variant: v.label.clone(),
                        outcome: out.to_record(),
                    };
                    if j.append(&rec).is_err() {
                        sup.journal_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            out
        })
        .collect();
    JobOutcome {
        name: job.name.clone(),
        reference,
        runs,
    }
}

/// Runs one (job, variant) cell under the retry policy: transient
/// failures are re-attempted under fresh derived seeds until they resolve
/// or the budget runs out, and a run that panicked on every allowed
/// attempt is elevated to [`RunStatus::Quarantined`].
#[allow(clippy::too_many_arguments)]
fn run_cell(
    job: &SweepJob,
    v: &SweepVariant,
    sim_cfg: &SimConfig,
    energy: &EnergyModel,
    reference: &ReferenceResult,
    arena: &mut SimArena,
    compiles: &mut CompileCache,
    key: RunKey,
    retry: RetryPolicy,
) -> VariantOutcome {
    let budget = retry.max_retries.saturating_add(1);
    let mut attempts: Vec<Attempt> = Vec::new();
    loop {
        let seed = journal::derive_seed(key, attempts.len() as u32);
        let mut out = run_variant(job, v, sim_cfg, energy, reference, arena, compiles);
        attempts.push(Attempt {
            status: out.status,
            seed,
        });
        if out.status.is_transient() && (attempts.len() as u32) < budget {
            continue;
        }
        if out.status == RunStatus::Panic && attempts.len() > 1 {
            out.status = RunStatus::Quarantined;
            out.detail = Some(format!(
                "quarantined after {} panicking attempts; last: {}",
                attempts.len(),
                out.detail.as_deref().unwrap_or("no detail"),
            ));
        }
        out.attempts = attempts;
        return out;
    }
}

/// A job-local cache of [`CompiledRegion`]s keyed by what compilation
/// actually depends on: the stage configuration and whether the backend
/// consumes MDEs (`sim_cfg.optimize` is constant across a job's variant
/// matrix, and fault plans apply at simulation time, never at compile
/// time). The bench matrix compiles each workload twice (full +
/// baseline stages) plus one MDE-free rewire instead of once per cell.
#[derive(Default)]
struct CompileCache {
    entries: Vec<(bool, StageConfig, CompiledRegion)>,
}

impl CompileCache {
    fn get_or_compile(
        &mut self,
        region: &Region,
        v: &SweepVariant,
        sim_cfg: &SimConfig,
    ) -> Result<&CompiledRegion, SimError> {
        let key = (v.backend.uses_mdes(), v.stages);
        if let Some(i) = self
            .entries
            .iter()
            .position(|(mdes, stages, _)| (*mdes, *stages) == key)
        {
            return Ok(&self.entries[i].2);
        }
        let compiled = compile_for_backend(region, v.backend, sim_cfg, v.stages)?;
        self.entries.push((key.0, key.1, compiled));
        Ok(&self.entries.last().expect("just pushed").2)
    }
}

/// Runs one attempt of a (job, variant) cell and classifies the outcome.
/// This is the per-run isolation boundary: a panic inside the engine is
/// caught here and recorded as [`RunStatus::Panic`] instead of poisoning
/// the sweep.
fn run_variant(
    job: &SweepJob,
    v: &SweepVariant,
    sim_cfg: &SimConfig,
    energy: &EnergyModel,
    reference: &ReferenceResult,
    arena: &mut SimArena,
    compiles: &mut CompileCache,
) -> VariantOutcome {
    let fault_active = sim_cfg.fault.applies_to(v.backend);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let compiled = compiles.get_or_compile(&job.region, v, sim_cfg)?;
        run_backend_compiled_in(arena, compiled, &job.binding, v.backend, sim_cfg, energy)
    }));
    let (status, run, error, detail) = match caught {
        Err(payload) => {
            // The engine unwound while holding the arena's buffers; drop
            // whatever is left and start the next run from a fresh pool.
            *arena = SimArena::new();
            (
                RunStatus::Panic,
                None,
                None,
                Some(panic_message(payload.as_ref())),
            )
        }
        Ok(Err(e)) => {
            let status = match &e {
                SimError::Cancelled { .. } => RunStatus::Cancelled,
                SimError::Deadlock(_) => RunStatus::Deadlock,
                _ if fault_active => RunStatus::FaultDetected,
                _ => RunStatus::Error,
            };
            let detail = e.to_string();
            (status, None, Some(e), Some(detail))
        }
        Ok(Ok(run)) => {
            let diverged =
                run.sim.mem != reference.mem || run.sim.loads.digest() != reference.loads.digest();
            if !diverged {
                (RunStatus::Ok, Some(run), None, None)
            } else if run.sim.injected.is_empty() {
                (
                    RunStatus::Mismatch,
                    Some(run),
                    None,
                    Some("diverged from the in-order reference executor".into()),
                )
            } else {
                let detail = format!(
                    "diverged from the reference after injected faults: {}",
                    run.sim.injected.join(", ")
                );
                (RunStatus::FaultDetected, Some(run), None, Some(detail))
            }
        }
    };
    let injected = if let Some(run) = &run {
        run.sim.injected.clone()
    } else if let Some(SimError::Deadlock(info)) = &error {
        info.injected.clone()
    } else {
        Vec::new()
    };
    let metrics = run.as_ref().map(RunMetrics::from_run);
    VariantOutcome {
        variant: v.label.clone(),
        backend: v.backend,
        status,
        run,
        error,
        detail,
        injected,
        attempts: Vec::new(),
        metrics,
    }
}

/// Extracts the deterministic message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".into()
    }
}

impl SweepResult {
    /// `true` iff every run of every job completed and matched the
    /// reference executor.
    #[must_use]
    pub fn all_match(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| j.runs.iter().all(|r| r.status == RunStatus::Ok))
    }

    /// `(job, variant)` labels of every non-[`RunStatus::Ok`] run, in
    /// sweep order.
    #[must_use]
    pub fn mismatches(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for j in &self.jobs {
            for r in &j.runs {
                if r.status != RunStatus::Ok {
                    out.push((j.name.clone(), r.variant.clone()));
                }
            }
        }
        out
    }

    /// Every run's `(job, variant, status)` triple, in sweep order.
    #[must_use]
    pub fn statuses(&self) -> Vec<(String, String, RunStatus)> {
        let mut out = Vec::new();
        for j in &self.jobs {
            for r in &j.runs {
                out.push((j.name.clone(), r.variant.clone(), r.status));
            }
        }
        out
    }

    /// Serializes the sweep to JSON (schema `nachos-sweep-v4`).
    ///
    /// The writer is hand-rolled (the workspace takes no serialization
    /// dependency) and emits keys in a fixed order; the output is
    /// byte-identical across runs, worker-thread counts and
    /// journal-resume boundaries — including for degraded runs, whose
    /// `status`, `detail` and `attempt_log` fields are deterministic.
    ///
    /// Changes from `nachos-sweep-v3`: each completed run reports its
    /// `comparator_sites` count and, when the run compiled with the MDE
    /// optimizer, an `opt` object with the rewrite ledger (edges before,
    /// removed, coalesced, upgraded). Every v3 field is unchanged.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_obj();
        w.str_field("schema", "nachos-sweep-v4");
        w.u64_field("invocations", self.invocations);
        w.key("variants");
        w.open_arr();
        for v in &self.variants {
            w.str_item(v);
        }
        w.close_arr();
        w.key("jobs");
        w.open_arr();
        for j in &self.jobs {
            j.write_json(&mut w);
        }
        w.close_arr();
        w.close_obj();
        w.finish()
    }
}

impl JobOutcome {
    fn write_json(&self, w: &mut JsonWriter) {
        w.open_obj();
        w.str_field("name", &self.name);
        w.key("reference");
        {
            let (hash, count) = self.reference.loads.digest();
            w.open_obj();
            w.u64_field("load_digest", hash);
            w.u64_field("load_count", count);
            w.u64_field("mem_footprint", self.reference.mem.footprint() as u64);
            w.close_obj();
        }
        w.key("runs");
        w.open_arr();
        for r in &self.runs {
            r.write_json(w);
        }
        w.close_arr();
        w.close_obj();
    }
}

impl VariantOutcome {
    fn write_json(&self, w: &mut JsonWriter) {
        w.open_obj();
        w.str_field("variant", &self.variant);
        w.str_field("backend", &self.backend.to_string());
        w.str_field("status", self.status.as_str());
        w.bool_field("matches_reference", self.status == RunStatus::Ok);
        w.u64_field("attempts", self.attempts.len().max(1) as u64);
        if self.attempts.len() > 1 {
            w.key("attempt_log");
            w.open_arr();
            for a in &self.attempts {
                w.open_obj();
                w.str_field("status", a.status.as_str());
                w.u64_field("seed", a.seed);
                w.close_obj();
            }
            w.close_arr();
        }
        if let Some(detail) = &self.detail {
            w.str_field("detail", detail);
        }
        if !self.injected.is_empty() {
            w.key("injected");
            w.open_arr();
            for f in &self.injected {
                w.str_item(f);
            }
            w.close_arr();
        }
        let Some(m) = &self.metrics else {
            // Degraded run: no simulation result to report.
            w.close_obj();
            return;
        };
        w.u64_field("cycles", m.cycles);
        w.key("stalls");
        {
            let s = &m.stalls;
            w.open_obj();
            w.u64_field("lsq_alloc", s.lsq_alloc);
            w.u64_field("lsq_search", s.lsq_search);
            w.u64_field("token", s.token);
            w.u64_field("may_gate", s.may_gate);
            w.u64_field("comparator", s.comparator);
            w.u64_field("mem_port", s.mem_port);
            w.u64_field("total", s.total());
            w.close_obj();
        }
        w.key("events");
        {
            let e = &m.events;
            w.open_obj();
            w.u64_field("int_ops", e.int_ops);
            w.u64_field("fp_ops", e.fp_ops);
            w.u64_field("data_links", e.data_links);
            w.u64_field("mem_links", e.mem_links);
            w.u64_field("may_checks", e.may_checks);
            w.u64_field("must_tokens", e.must_tokens);
            w.u64_field("l1_accesses", e.l1_accesses);
            w.u64_field("lsq_allocs", e.lsq_allocs);
            w.u64_field("lsq_bank_overflows", e.lsq_bank_overflows);
            w.u64_field("lsq_bloom_queries", e.lsq_bloom_queries);
            w.u64_field("lsq_bloom_hits", e.lsq_bloom_hits);
            w.u64_field("lsq_cam_loads", e.lsq_cam_loads);
            w.u64_field("lsq_cam_stores", e.lsq_cam_stores);
            w.u64_field("forwards", e.forwards);
            w.close_obj();
        }
        w.key("energy_fj");
        {
            let en = &m.energy;
            w.open_obj();
            w.f64_field("compute", en.compute);
            w.f64_field("mde", en.mde);
            w.f64_field("lsq_bloom", en.lsq_bloom);
            w.f64_field("lsq_cam", en.lsq_cam);
            w.f64_field("l1", en.l1);
            w.f64_field("total", en.total());
            w.close_obj();
        }
        w.key("l1");
        cache_json(w, m.l1.hits, m.l1.misses, m.l1.writebacks);
        w.key("llc");
        cache_json(w, m.llc.hits, m.llc.misses, m.llc.writebacks);
        w.u64_field("comparator_sites", m.comparator_sites);
        if let Some(o) = &m.opt {
            w.key("opt");
            w.open_obj();
            w.u64_field("order_before", o.order_before);
            w.u64_field("may_before", o.may_before);
            w.u64_field("order_removed", o.order_removed);
            w.u64_field("may_coalesced", o.may_coalesced);
            w.u64_field("may_upgraded", o.may_upgraded);
            w.u64_field("may_upgraded_edges", o.may_upgraded_edges);
            w.u64_field("edges_removed", o.edges_removed());
            w.close_obj();
        }
        w.close_obj();
    }
}

fn cache_json(w: &mut JsonWriter, hits: u64, misses: u64, writebacks: u64) {
    w.open_obj();
    w.u64_field("hits", hits);
    w.u64_field("misses", misses);
    w.u64_field("writebacks", writebacks);
    w.close_obj();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultSpec};
    use crate::testutil::store_load_region;

    fn demo_job(name: &str) -> SweepJob {
        let (region, binding) = store_load_region(name);
        SweepJob::new(name, region, binding)
    }

    #[test]
    fn sweep_runs_and_matches_reference() {
        let jobs = [demo_job("a"), demo_job("b")];
        let cfg = SweepConfig::default().with_invocations(4);
        let sweep = run_sweep(&jobs, &cfg);
        assert_eq!(sweep.jobs.len(), 2);
        assert_eq!(sweep.variants, ["opt-lsq", "nachos-sw", "nachos"]);
        assert!(sweep.all_match());
        assert!(sweep.mismatches().is_empty());
        for (_, _, status) in sweep.statuses() {
            assert_eq!(status, RunStatus::Ok);
        }
        for j in &sweep.jobs {
            for r in &j.runs {
                assert_eq!(r.attempts.len(), 1, "clean runs take one attempt");
                assert!(r.metrics.is_some());
            }
        }
    }

    #[test]
    fn ideal_variant_is_appended_and_matches_reference() {
        let jobs = [demo_job("a")];
        let base = SweepConfig::default().with_invocations(4);
        let plain = run_sweep(&jobs, &base.clone());
        let with_ideal = run_sweep(&jobs, &base.with_ideal());
        assert_eq!(
            with_ideal.variants,
            ["opt-lsq", "nachos-sw", "nachos", "ideal"],
            "the oracle column is appended last"
        );
        assert!(with_ideal.all_match(), "IDEAL matches the reference too");
        // Opt-in contract: the shared columns are byte-identical to the
        // default report.
        let plain_json = plain.to_json();
        let ideal_json = with_ideal.to_json();
        for v in &plain.variants {
            assert!(ideal_json.contains(&format!("\"variant\": \"{v}\"")));
        }
        assert!(!plain_json.contains("\"variant\": \"ideal\""));
    }

    #[test]
    fn report_is_thread_count_independent() {
        let jobs: Vec<SweepJob> = (0..5).map(|i| demo_job(&format!("j{i}"))).collect();
        let base = SweepConfig::default().with_invocations(3);
        let serial = run_sweep(&jobs, &base.clone().with_threads(1));
        let wide = run_sweep(&jobs, &base.with_threads(4));
        assert_eq!(serial.to_json(), wide.to_json());
    }

    #[test]
    fn json_report_has_schema_and_balanced_structure() {
        let jobs = [demo_job("a")];
        let cfg = SweepConfig::default()
            .with_invocations(2)
            .with_variants(SweepVariant::bench_matrix());
        let sweep = run_sweep(&jobs, &cfg);
        let json = sweep.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"schema\": \"nachos-sweep-v4\""));
        assert!(json.contains("\"nachos-sw-baseline\""));
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"matches_reference\": true"));
        assert!(json.contains("\"attempts\": 1"));
        assert!(
            !json.contains("\"attempt_log\""),
            "single attempts stay terse"
        );
        assert!(json.contains("\"stalls\""));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn degraded_runs_are_isolated_and_reported() {
        // Job "b" panics while handling its very first engine event under
        // the NACHOS variant only; every other run must stay ok.
        let jobs = [
            demo_job("a"),
            demo_job("b").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::PanicOnEvent, 0).on_backend(Backend::Nachos),
            )),
            demo_job("c"),
        ];
        let cfg = SweepConfig::default().with_invocations(2);
        let sweep = run_sweep(&jobs, &cfg);
        assert!(!sweep.all_match());
        assert_eq!(
            sweep.mismatches(),
            [("b".to_string(), "nachos".to_string())]
        );
        let bad = &sweep.jobs[1].runs[2];
        assert_eq!(bad.status, RunStatus::Panic, "no retries by default");
        assert!(bad.run.is_none());
        assert_eq!(bad.attempts.len(), 1);
        assert!(
            bad.detail
                .as_deref()
                .unwrap_or("")
                .contains("injected fault"),
            "panic detail carries the deterministic message"
        );
        let ok_runs = sweep
            .statuses()
            .iter()
            .filter(|(_, _, s)| *s == RunStatus::Ok)
            .count();
        assert_eq!(ok_runs, 8, "8 of 9 runs unaffected");
        let json = sweep.to_json();
        assert!(json.contains("\"status\": \"panic\""));
    }

    #[test]
    fn degraded_report_is_thread_count_independent() {
        let mut jobs: Vec<SweepJob> = (0..6).map(|i| demo_job(&format!("j{i}"))).collect();
        // A panic, a deadlock and a detected corruption sprinkled across
        // the matrix must not disturb byte-determinism.
        jobs[1].fault = FaultPlan::single(
            FaultSpec::new(FaultKind::PanicOnEvent, 3).on_backend(Backend::OptLsq),
        );
        jobs[3].fault = FaultPlan::single(
            FaultSpec::new(FaultKind::DropToken, 0).on_backend(Backend::NachosSw),
        );
        jobs[4].fault = FaultPlan::single(
            FaultSpec::new(FaultKind::CorruptForward { mask: 0xff }, 0).on_backend(Backend::Nachos),
        );
        let base = SweepConfig::default().with_invocations(3);
        let serial = run_sweep(&jobs, &base.clone().with_threads(1));
        let wide = run_sweep(&jobs, &base.clone().with_threads(4));
        let wider = run_sweep(&jobs, &base.with_threads(8));
        assert_eq!(serial.to_json(), wide.to_json());
        assert_eq!(serial.to_json(), wider.to_json());
        assert!(!serial.all_match());
    }

    #[test]
    fn persistent_panic_exhausts_retries_and_is_quarantined() {
        // Fault opportunity counters reset per attempt, so PanicOnEvent
        // fires on every retry: the cell burns its whole budget and is
        // parked as quarantined, with the attempt log telling the story.
        let jobs = [
            demo_job("a"),
            demo_job("poison").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::PanicOnEvent, 0).on_backend(Backend::Nachos),
            )),
        ];
        let cfg = SweepConfig::default().with_invocations(2).with_retries(2);
        let sweep = run_sweep(&jobs, &cfg);
        let bad = &sweep.jobs[1].runs[2];
        assert_eq!(bad.status, RunStatus::Quarantined);
        assert_eq!(bad.attempts.len(), 3, "1 attempt + 2 retries");
        assert!(bad.attempts.iter().all(|a| a.status == RunStatus::Panic));
        // Seeds are derived, distinct per attempt, and deterministic.
        let seeds: Vec<u64> = bad.attempts.iter().map(|a| a.seed).collect();
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
        let again = run_sweep(&jobs, &cfg);
        assert_eq!(sweep.to_json(), again.to_json());
        let json = sweep.to_json();
        assert!(json.contains("\"status\": \"quarantined\""));
        assert!(json.contains("\"attempt_log\""));
        // Everything else still completed.
        let ok_runs = sweep
            .statuses()
            .iter()
            .filter(|(_, _, s)| *s == RunStatus::Ok)
            .count();
        assert_eq!(ok_runs, 5);
    }

    #[test]
    fn job_level_panic_retires_workers_and_quarantines_the_job() {
        // An empty binding makes the reference executor itself panic —
        // outside the per-run boundary — so the job strikes out and is
        // quarantined wholesale while its neighbours finish.
        let mut poison = demo_job("poison");
        poison.binding.base_addrs.clear();
        let jobs = [demo_job("a"), poison, demo_job("b")];
        let cfg = SweepConfig::default().with_invocations(2);
        for threads in [1, 4] {
            let sweep = run_sweep(&jobs, &cfg.clone().with_threads(threads));
            assert_eq!(sweep.jobs.len(), 3, "every job reports");
            let q = &sweep.jobs[1];
            assert_eq!(q.name, "poison");
            assert!(q.runs.iter().all(|r| r.status == RunStatus::Quarantined));
            assert!(q.runs[0]
                .detail
                .as_deref()
                .unwrap_or("")
                .contains("job-level panic killed 3 workers"));
            assert_eq!(q.reference.loads.digest(), (0, 0), "empty reference");
            let ok_runs = sweep
                .statuses()
                .iter()
                .filter(|(_, _, s)| *s == RunStatus::Ok)
                .count();
            assert_eq!(ok_runs, 6, "both healthy jobs fully complete");
        }
        // Byte-determinism holds across thread counts here too.
        let serial = run_sweep(&jobs, &cfg.clone().with_threads(1));
        let wide = run_sweep(&jobs, &cfg.clone().with_threads(4));
        assert_eq!(serial.to_json(), wide.to_json());
    }

    #[test]
    fn cancelled_sweep_reports_cancelled_and_skips_journaling() {
        let token = crate::CancelToken::new();
        token.cancel();
        let mut cfg = SweepConfig::default().with_invocations(2);
        cfg.sim = cfg.sim.with_cancel(token);
        let dir = std::env::temp_dir().join("nachos-sweep-cancel-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let jrn = Journal::create(&path).unwrap();
        let jobs = [demo_job("a")];
        let (sweep, stats) = run_sweep_journaled(&jobs, &cfg, Some(&jrn));
        assert!(sweep
            .statuses()
            .iter()
            .all(|(_, _, s)| *s == RunStatus::Cancelled));
        assert_eq!(
            stats.executed, 0,
            "a pre-tripped token stops the job before its reference pass, \
             so no cell executes"
        );
        drop(jrn);
        let resumed = Journal::resume(&path).unwrap();
        assert_eq!(
            resumed.replay_len(),
            0,
            "cancelled cells are never journaled"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_sweep_resumes_byte_identically() {
        let jobs = [
            demo_job("a"),
            demo_job("b").with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::DropToken, 0).on_backend(Backend::NachosSw),
            )),
            demo_job("c"),
        ];
        let cfg = SweepConfig::default().with_invocations(3);
        let clean = run_sweep(&jobs, &cfg);
        let dir = std::env::temp_dir().join("nachos-sweep-journal-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        // First pass journals everything (simulating a completed shard of
        // an interrupted campaign: only jobs a and b ran).
        {
            let jrn = Journal::create(&path).unwrap();
            let (_, stats) = run_sweep_journaled(&jobs[..2], &cfg, Some(&jrn));
            assert_eq!(stats.executed, 6);
            assert_eq!(stats.replayed, 0);
        }
        // Resume over the full job list: a and b replay, c runs live, and
        // the report matches an uninterrupted sweep byte for byte.
        let jrn = Journal::resume(&path).unwrap();
        assert_eq!(jrn.replay_len(), 6);
        let (resumed, stats) = run_sweep_journaled(&jobs, &cfg, Some(&jrn));
        assert_eq!(stats.replayed, 6);
        assert_eq!(stats.executed, 3);
        assert_eq!(resumed.to_json(), clean.to_json());
        // A second resume replays everything.
        drop(jrn);
        let jrn = Journal::resume(&path).unwrap();
        let (replayed, stats) = run_sweep_journaled(&jobs, &cfg, Some(&jrn));
        assert_eq!(stats.replayed, 9);
        assert_eq!(stats.executed, 0);
        assert_eq!(replayed.to_json(), clean.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
