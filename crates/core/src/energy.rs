//! Event-based energy model (Aladdin-style).
//!
//! The simulator counts micro-architectural events; this module converts
//! them to femtojoules using the per-event costs of the paper's Figure 3
//! table: network 600 fJ/link, INT ALU 500 fJ, FP ALU 1500 fJ, MDE
//! 500 fJ/MAY edge and 250 fJ/MUST edge, LSQ CAM 2500 fJ/load search and
//! 3500 fJ/store search. The paper gives no explicit numbers for the bloom
//! probe, the LSQ entry write or the L1 array access; we use 150 fJ,
//! 2850 fJ and 4000 fJ respectively, calibrated so the per-operation
//! OPT-LSQ average lands near the appendix's `E_lsq ≈ 3000 fJ` and the
//! LSQ's share of total energy near the paper's reported fractions
//! (documented in DESIGN.md).

/// Per-event energy costs in femtojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// One operand traversing its static operand-network route (the
    /// paper's "600 fJ/link": links are the point-to-point connections of
    /// the configured network, charged per traversal).
    pub network_per_link: f64,
    /// One integer ALU activation.
    pub int_alu: f64,
    /// One FP ALU activation.
    pub fp_alu: f64,
    /// One MAY-edge hardware check (address transport + comparator).
    pub mde_may: f64,
    /// One MUST-edge activation (1-bit ordering token / forward control).
    pub mde_must: f64,
    /// One LSQ CAM search triggered by a load.
    pub lsq_cam_load: f64,
    /// One LSQ CAM search triggered by a store.
    pub lsq_cam_store: f64,
    /// One bloom-filter probe.
    pub lsq_bloom: f64,
    /// One LSQ entry allocation/write.
    pub lsq_alloc: f64,
    /// One L1 cache access.
    pub l1_access: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            network_per_link: 600.0,
            int_alu: 500.0,
            fp_alu: 1500.0,
            mde_may: 500.0,
            mde_must: 250.0,
            lsq_cam_load: 2500.0,
            lsq_cam_store: 3500.0,
            lsq_bloom: 150.0,
            lsq_alloc: 2850.0,
            l1_access: 4000.0,
        }
    }
}

/// Raw event counts accumulated by a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Integer ALU activations (includes load/store address generation).
    pub int_ops: u64,
    /// FP ALU activations.
    pub fp_ops: u64,
    /// Operand-network link traversals by data/forward payloads.
    pub data_links: u64,
    /// Link traversals between load/store FUs and the cache interface
    /// (request + response).
    pub mem_links: u64,
    /// Hardware MAY checks performed (NACHOS).
    pub may_checks: u64,
    /// MUST-edge (order/forward) token activations, including MAY edges
    /// serialized by NACHOS-SW.
    pub must_tokens: u64,
    /// L1 accesses.
    pub l1_accesses: u64,
    /// LSQ entry allocations.
    pub lsq_allocs: u64,
    /// Address bindings that found their bank at capacity (structural
    /// pressure; see `nachos_lsq::LsqStats::bank_overflows`).
    pub lsq_bank_overflows: u64,
    /// LSQ bloom probes.
    pub lsq_bloom_queries: u64,
    /// LSQ bloom probes that hit (CAM search required).
    pub lsq_bloom_hits: u64,
    /// LSQ CAM searches by loads.
    pub lsq_cam_loads: u64,
    /// LSQ CAM searches by stores.
    pub lsq_cam_stores: u64,
    /// Store-to-load forwards performed (either scheme).
    pub forwards: u64,
}

/// Energy totals by component, in femtojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// ALU activations plus operand-network traffic.
    pub compute: f64,
    /// Memory dependency edges: MAY checks plus MUST tokens.
    pub mde: f64,
    /// LSQ bloom probes.
    pub lsq_bloom: f64,
    /// LSQ CAM searches plus entry writes.
    pub lsq_cam: f64,
    /// L1 cache accesses (including the request/response network hops).
    pub l1: f64,
}

impl EnergyBreakdown {
    /// Computes the breakdown from event counts.
    #[must_use]
    pub fn from_events(ev: &EventCounts, model: &EnergyModel) -> Self {
        Self {
            compute: ev.int_ops as f64 * model.int_alu
                + ev.fp_ops as f64 * model.fp_alu
                + ev.data_links as f64 * model.network_per_link,
            mde: ev.may_checks as f64 * model.mde_may + ev.must_tokens as f64 * model.mde_must,
            lsq_bloom: ev.lsq_bloom_queries as f64 * model.lsq_bloom,
            lsq_cam: ev.lsq_cam_loads as f64 * model.lsq_cam_load
                + ev.lsq_cam_stores as f64 * model.lsq_cam_store
                + ev.lsq_allocs as f64 * model.lsq_alloc,
            l1: ev.l1_accesses as f64 * model.l1_access
                + ev.mem_links as f64 * model.network_per_link,
        }
    }

    /// Total energy across all components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute + self.mde + self.lsq_bloom + self.lsq_cam + self.l1
    }

    /// LSQ energy (bloom + CAM + allocation).
    #[must_use]
    pub fn lsq(&self) -> f64 {
        self.lsq_bloom + self.lsq_cam
    }

    /// A component's share of the total, in percent (0 for an empty run).
    #[must_use]
    pub fn pct(&self, component: f64) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            100.0 * component / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = EnergyModel::default();
        assert_eq!(m.network_per_link, 600.0);
        assert_eq!(m.int_alu, 500.0);
        assert_eq!(m.fp_alu, 1500.0);
        assert_eq!(m.mde_may, 500.0);
        assert_eq!(m.mde_must, 250.0);
        assert_eq!(m.lsq_cam_load, 2500.0);
        assert_eq!(m.lsq_cam_store, 3500.0);
    }

    #[test]
    fn breakdown_accounts_each_component() {
        let ev = EventCounts {
            int_ops: 2,
            fp_ops: 1,
            data_links: 10,
            mem_links: 4,
            may_checks: 3,
            must_tokens: 4,
            l1_accesses: 5,
            lsq_allocs: 5,
            lsq_bank_overflows: 0,
            lsq_bloom_queries: 5,
            lsq_bloom_hits: 2,
            lsq_cam_loads: 1,
            lsq_cam_stores: 1,
            forwards: 0,
        };
        let b = EnergyBreakdown::from_events(&ev, &EnergyModel::default());
        assert_eq!(b.compute, 2.0 * 500.0 + 1500.0 + 10.0 * 600.0);
        assert_eq!(b.mde, 3.0 * 500.0 + 4.0 * 250.0);
        assert_eq!(b.lsq_bloom, 5.0 * 150.0);
        assert_eq!(b.lsq_cam, 2500.0 + 3500.0 + 5.0 * 2850.0);
        assert_eq!(b.l1, 5.0 * 4000.0 + 4.0 * 600.0);
        let sum = b.compute + b.mde + b.lsq_bloom + b.lsq_cam + b.l1;
        assert!((b.total() - sum).abs() < 1e-9);
        assert!((b.pct(b.l1) - 100.0 * b.l1 / sum).abs() < 1e-9);
    }

    #[test]
    fn average_lsq_cost_near_appendix_constant() {
        // One op paying alloc + bloom + an average CAM mix should land in
        // the vicinity of the appendix's E_lsq ≈ 3000 fJ.
        let m = EnergyModel::default();
        let typical = m.lsq_alloc + m.lsq_bloom + 0.3 * (m.lsq_cam_load + m.lsq_cam_store) / 2.0;
        assert!((2000.0..4000.0).contains(&typical), "got {typical}");
    }

    #[test]
    fn empty_run_percentages() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.pct(b.compute), 0.0);
    }
}
