//! # nachos — software-driven hardware-assisted memory disambiguation
//!
//! The core crate of the reproduction of *NACHOS: Software-Driven
//! Hardware-Assisted Memory Disambiguation for Accelerators* (HPCA 2018).
//! It ties the substrates together:
//!
//! * the NACHOS-SW compiler ([`nachos_alias`]) labels memory-operation
//!   pairs NO/MAY/MUST and inserts memory dependency edges;
//! * the CGRA fabric ([`nachos_cgra`]) places the dataflow graph and
//!   prices the operand network;
//! * the memory substrate ([`nachos_mem`]) provides the L1/LLC/DRAM
//!   hierarchy; the OPT-LSQ baseline comes from [`nachos_lsq`];
//! * this crate's [`simulate`] runs the region cycle-by-cycle under one of
//!   the paper's three backends or the IDEAL oracle ([`Backend`]) with an
//!   event-based energy model
//!   ([`EnergyModel`]), and [`reference::execute`] provides the in-order
//!   ground truth every backend must match.
//!
//! ```
//! use nachos::{run_backend, Backend, EnergyModel, SimConfig};
//! use nachos_ir::{AffineExpr, Binding, MemRef, RegionBuilder};
//!
//! let mut b = RegionBuilder::new("demo");
//! let g = b.global("g", 64, 0);
//! let m = MemRef::affine(g, AffineExpr::zero());
//! let x = b.input();
//! b.store(m.clone(), &[x]);
//! b.load(m, &[]);
//! let region = b.finish();
//! let binding = Binding { base_addrs: vec![0x1_0000], ..Binding::default() };
//! let config = SimConfig::default().with_invocations(4);
//! let run = run_backend(&region, &binding, Backend::Nachos, &config, &EnergyModel::default())?;
//! assert!(run.sim.cycles > 0);
//! # Ok::<(), nachos::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytic;
mod config;
mod driver;
mod energy;
mod engine;
mod error;
mod fault;
pub mod json;
pub mod reference;
pub mod sweep;
pub mod testutil;
pub mod value;

pub use analytic::DecentralizedModel;
pub use config::{Backend, CancelToken, SimConfig, WatchdogConfig};
pub use driver::{
    compile_for_backend, pct_slowdown, run_all_backends, run_backend, run_backend_compiled_in,
    run_backend_in, run_backend_observed_in, run_backend_with_stages, run_backend_with_stages_in,
    CompiledRegion, ExperimentRun,
};
pub use energy::{EnergyBreakdown, EnergyModel, EventCounts};
pub use engine::{
    simulate, simulate_in, simulate_with_telemetry, BackpressureEvent, CycleRecord, NoopSink,
    RunSummary, SimArena, SimResult, StallCause, StallCounts, StatsWriter, TelemetrySink,
};
pub use error::{DeadlockCause, DeadlockInfo, SimError, StalledNode, WaitForEdge};
pub use fault::{FaultClass, FaultKind, FaultPlan, FaultSpec};
