//! Structured simulation errors and the deadlock diagnostic dump.
//!
//! The token/MDE protocol's safety argument (paper §IV–V) rests on the
//! engine never admitting an unsafe reordering *and never deadlocking*.
//! The failure half of that argument lives here: instead of panicking or
//! spinning, the engine returns a [`SimError`] whose [`DeadlockInfo`]
//! carries enough state — stalled nodes, the wait-for edges over their
//! outstanding token counts, the per-cause stall counters — to diagnose a
//! dropped token or a protocol bug from the report alone.

use crate::config::Backend;
use crate::engine::StallCounts;
use nachos_cgra::PlaceError;
use nachos_ir::ValidateError;
use std::fmt;

/// Simulation failure.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The region failed the legacy symbol validation.
    InvalidRegion(String),
    /// The region failed structural validation (see
    /// [`nachos_ir::validate_region`]); every diagnostic is carried.
    Validation(Vec<ValidateError>),
    /// The DFG does not fit on the grid.
    Placement(PlaceError),
    /// The binding lacks entries the region references.
    IncompleteBinding(String),
    /// A structural parameter is unusable (e.g. a zero-width calendar).
    BadConfig(String),
    /// The watchdog stopped a run that made no forward progress; the
    /// boxed dump names the stalled nodes and what they wait for.
    Deadlock(Box<DeadlockInfo>),
    /// The post-compile audit found Error-severity diagnostics: the
    /// compiled region carries an unsound alias verdict, a missing
    /// ordering chain, or drifted bookkeeping (see
    /// [`nachos_alias::audit`]). Running it would risk silently wrong
    /// results, so the driver refuses.
    Audit(Vec<nachos_alias::audit::Diagnostic>),
    /// The run was cooperatively cancelled through its
    /// [`crate::CancelToken`] (checked once per handled event, alongside
    /// the watchdog). Lets an external controller stop in-flight sweep
    /// work promptly without killing worker threads; cancelled runs are
    /// never journaled, so a resumed sweep re-executes them.
    Cancelled {
        /// Backend that was running when the token tripped.
        backend: Backend,
        /// Invocation index (0-based) at which the run stopped.
        invocation: u64,
        /// Simulated cycle at which the cancellation was observed.
        cycle: u64,
    },
    /// The token protocol was violated at run time (e.g. a completion
    /// token arrived at a node with no outstanding token count). Only
    /// reachable under fault injection or a genuine engine bug.
    ProtocolViolation {
        /// Backend that observed the violation.
        backend: Backend,
        /// Node index at which the violation was observed.
        node: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidRegion(m) => write!(f, "invalid region: {m}"),
            SimError::Validation(diags) => {
                write!(f, "region failed validation ({} finding", diags.len())?;
                if diags.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            SimError::Placement(e) => write!(f, "placement failed: {e}"),
            SimError::IncompleteBinding(m) => write!(f, "incomplete binding: {m}"),
            SimError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            SimError::Deadlock(info) => write!(f, "{info}"),
            SimError::Cancelled {
                backend,
                invocation,
                cycle,
            } => {
                write!(
                    f,
                    "cancelled under {backend} at invocation {invocation} cycle {cycle}"
                )
            }
            SimError::Audit(diags) => {
                write!(f, "compile audit failed ({} error", diags.len())?;
                if diags.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            SimError::ProtocolViolation {
                backend,
                node,
                message,
            } => {
                write!(
                    f,
                    "protocol violation at node {node} under {backend}: {message}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<PlaceError> for SimError {
    fn from(e: PlaceError) -> Self {
        SimError::Placement(e)
    }
}

/// Why the watchdog declared a deadlock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlockCause {
    /// The event heap drained with nodes still incomplete: some
    /// dependency token was never produced (e.g. a dropped token).
    Starved,
    /// Events were still pending past the cycle budget: the run was live
    /// but made no architectural progress within the allotted window.
    BudgetExhausted,
}

impl fmt::Display for DeadlockCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlockCause::Starved => f.write_str("starved (event heap drained early)"),
            DeadlockCause::BudgetExhausted => f.write_str("cycle budget exhausted"),
        }
    }
}

/// One incomplete node in a deadlock dump, with its outstanding gate
/// counts — which of the data/token/MAY gates never opened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StalledNode {
    /// Node index in the region's DFG.
    pub node: usize,
    /// Data/forward operands still outstanding.
    pub data_pending: u32,
    /// Ordering tokens still outstanding.
    pub token_pending: u32,
    /// MAY-gate releases still outstanding.
    pub may_pending: u32,
    /// Whether the node had fired (all data operands arrived).
    pub fired: bool,
    /// Whether the node had issued its memory stage.
    pub issued: bool,
}

/// One wait-for edge between two incomplete nodes: `to` cannot proceed
/// until `from` completes, but `from` is itself incomplete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitForEdge {
    /// The incomplete producer.
    pub from: usize,
    /// The blocked consumer.
    pub to: usize,
    /// The edge kind holding the consumer (`data`/`order`/`forward`/`may`).
    pub kind: String,
}

/// Diagnostic dump attached to [`SimError::Deadlock`].
#[derive(Clone, Debug)]
pub struct DeadlockInfo {
    /// Backend that deadlocked.
    pub backend: Backend,
    /// Invocation index (0-based) in which progress stopped.
    pub invocation: u64,
    /// Simulated cycle at which the watchdog fired.
    pub cycle: u64,
    /// The cycle budget derived from the region size.
    pub budget: u64,
    /// Why the watchdog fired.
    pub cause: DeadlockCause,
    /// Every node that never completed, with its outstanding gates.
    pub stalled: Vec<StalledNode>,
    /// Wait-for edges among the stalled nodes.
    pub wait_for: Vec<WaitForEdge>,
    /// Cycle-weighted stall attribution up to the point of death.
    pub stalls: StallCounts,
    /// Faults the injector had fired before the deadlock (deterministic
    /// descriptions; empty outside fault-injection runs).
    pub injected: Vec<String>,
}

impl fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock under {} at invocation {} cycle {} (budget {}): {}; {} stalled node",
            self.backend,
            self.invocation,
            self.cycle,
            self.budget,
            self.cause,
            self.stalled.len()
        )?;
        if self.stalled.len() != 1 {
            write!(f, "s")?;
        }
        for s in self.stalled.iter().take(8) {
            write!(
                f,
                "; n{} (data={}, token={}, may={}{}{})",
                s.node,
                s.data_pending,
                s.token_pending,
                s.may_pending,
                if s.fired { ", fired" } else { "" },
                if s.issued { ", issued" } else { "" },
            )?;
        }
        if self.stalled.len() > 8 {
            write!(f, "; ... {} more", self.stalled.len() - 8)?;
        }
        if !self.injected.is_empty() {
            write!(f, "; injected faults: {}", self.injected.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_info() -> DeadlockInfo {
        DeadlockInfo {
            backend: Backend::NachosSw,
            invocation: 3,
            cycle: 120,
            budget: 11_000,
            cause: DeadlockCause::Starved,
            stalled: vec![StalledNode {
                node: 5,
                data_pending: 0,
                token_pending: 1,
                may_pending: 0,
                fired: true,
                issued: false,
            }],
            wait_for: vec![WaitForEdge {
                from: 2,
                to: 5,
                kind: "order".into(),
            }],
            stalls: StallCounts::default(),
            injected: vec!["drop-token #0".into()],
        }
    }

    #[test]
    fn deadlock_display_names_the_evidence() {
        let e = SimError::Deadlock(Box::new(dummy_info()));
        let s = e.to_string();
        assert!(s.contains("deadlock under NACHOS-SW"));
        assert!(s.contains("invocation 3"));
        assert!(s.contains("n5"));
        assert!(s.contains("token=1"));
        assert!(s.contains("drop-token #0"));
    }

    #[test]
    fn validation_display_joins_diagnostics() {
        let region = {
            let mut r = nachos_ir::Region::new("bad");
            let m =
                nachos_ir::MemRef::affine(nachos_ir::BaseId::new(9), nachos_ir::AffineExpr::zero());
            r.dfg.add_node(nachos_ir::OpKind::Load(m)).unwrap();
            r
        };
        let diags = nachos_ir::validate_region(&region).unwrap_err();
        let e = SimError::Validation(diags);
        assert!(e.to_string().contains("failed validation"));
        assert!(e.to_string().contains("symbol error"));
    }

    #[test]
    fn cancelled_display_names_the_cut_point() {
        let e = SimError::Cancelled {
            backend: Backend::OptLsq,
            invocation: 9,
            cycle: 512,
        };
        let s = e.to_string();
        assert!(s.contains("cancelled under OPT-LSQ"));
        assert!(s.contains("invocation 9"));
        assert!(s.contains("cycle 512"));
    }

    #[test]
    fn protocol_violation_display() {
        let e = SimError::ProtocolViolation {
            backend: Backend::Nachos,
            node: 7,
            message: "an extra completion token arrived".into(),
        };
        assert!(e.to_string().contains("node 7"));
        assert!(e.to_string().contains("NACHOS"));
    }
}
