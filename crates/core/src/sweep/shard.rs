//! Process-isolated sharded sweep execution.
//!
//! [`super::run_sweep_journaled`] survives any failure the in-process
//! `catch_unwind` boundary can contain — but an abort, an OOM kill, a
//! stack overflow or a segfault in any one cell still takes down the
//! whole orchestrator. This module promotes the journaled sweep into a
//! supervisor/worker architecture where each failure domain is an OS
//! process:
//!
//! * the **supervisor** ([`run_sweep_sharded`]) partitions the
//!   job×variant cell matrix into `N` shards by [`RunKey`] and spawns
//!   one **worker process** per shard (the `sweep` bin re-invoked with
//!   `--shard-exec`); cells are streamed to the worker over stdin as
//!   JSON lines and results land in a per-shard journal;
//! * the **worker** ([`run_shard_worker`]) rebuilds the identical job
//!   list from its own CLI flags, verifies every dispatched [`RunKey`]
//!   against its own recomputation (a mismatch is a protocol error, not
//!   silent wrong work), executes cells through the same
//!   retry/quarantine machinery as the in-process sweep, and interleaves
//!   checksum-framed [`Heartbeat`] lines with its records so the journal
//!   doubles as a liveness channel;
//! * a worker that **dies** (SIGKILL, abort, OOM) or goes **silent**
//!   past the silence budget is killed and respawned under a bounded,
//!   deterministically-seeded backoff schedule ([`backoff_delay`]); the
//!   cell in flight at the time of death — identified from the last
//!   `start` heartbeat without a matching record — is charged a strike,
//!   and a cell that keeps killing workers is quarantined by the
//!   supervisor instead of wedging the campaign.
//!
//! # Determinism contract
//!
//! Wall-clock time drives **liveness decisions only** — silence kills,
//! backoff delays, cancellation grace. Nothing time-derived is ever
//! written to a journal record or a report byte. After all shards
//! settle, the supervisor absorbs every recovered record into the
//! single merged journal and runs the ordinary in-process
//! [`super::run_sweep_journaled`] over it: recorded cells replay
//! byte-exactly and any cell no worker completed (respawn budget
//! exhausted, hostile cell) executes inline. The final `nachos-sweep-v4`
//! report is therefore **byte-identical** to a single-process run of
//! the same matrix, for any shard count, worker death or resume
//! history.
//!
//! # Cancellation
//!
//! The workspace is std-only, so workers install no signal handlers;
//! cooperative cancellation travels over the same stdin pipe as the
//! cells (a `{"cancel":true}` line), and a worker treats stdin EOF as
//! cancel — a supervisor that dies takes its pipe with it, so orphaned
//! workers wind down instead of running unsupervised. The supervisor
//! escalates to SIGKILL (`Child::kill`) after a grace period, and its
//! worker slots kill their children on drop, so no exit path leaks
//! processes.

use super::cache::{CacheCounters, CacheLookup, ResultCache};
use super::heartbeat::{Heartbeat, HeartbeatPhase, Pulse};
use super::journal::{self, parse_json, Attempt, Journal, Json, LineError, RunKey, RunRecord};
use super::{OutcomeRecord, RunStatus, SweepConfig, SweepJob, SweepResult, SweepStats};
use crate::engine::SimArena;
use crate::json::JsonWriter;
use crate::reference;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, BufRead as _, BufReader, Read, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dispatch header schema tag; bump when the stdin wire format changes
/// so a mismatched supervisor/worker pair fails loudly instead of
/// misreading cells.
pub const SHARD_SCHEMA: &str = "nachos-shard-v1";

const END_LINE: &str = "{\"end\":true}\n";
const CANCEL_LINE: &str = "{\"cancel\":true}\n";

// ---------------------------------------------------------------------
// Cells and partitioning
// ---------------------------------------------------------------------

/// One dispatchable unit: a `(job, variant)` coordinate plus its content
/// key. The indexes address the supervisor's and the worker's *identical*
/// job/variant lists; the key lets the worker verify that identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Index into the job list.
    pub job: usize,
    /// Index into [`SweepConfig::variants`].
    pub variant: usize,
    /// Content hash of the cell's inputs.
    pub key: RunKey,
}

/// Enumerates every cell of the job×variant matrix with its [`RunKey`],
/// in (job, variant) order — exactly the keys [`super::run_sweep`] would
/// compute for the same inputs.
#[must_use]
pub fn enumerate_cells(jobs: &[SweepJob], cfg: &SweepConfig) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(jobs.len() * cfg.variants.len());
    for (ji, job) in jobs.iter().enumerate() {
        let sim = effective_sim(job, cfg);
        let fp = journal::job_fingerprint(&job.region, &job.binding, &sim);
        for (vi, v) in cfg.variants.iter().enumerate() {
            cells.push(Cell {
                job: ji,
                variant: vi,
                key: journal::run_key(fp, v),
            });
        }
    }
    cells
}

/// The job's effective simulator configuration: the sweep-wide base with
/// the job's fault plan merged in — the same merge [`super::run_sweep`]
/// performs, so fingerprints agree across processes.
fn effective_sim(job: &SweepJob, cfg: &SweepConfig) -> crate::config::SimConfig {
    let mut sim = cfg.sim.clone();
    sim.fault.faults.extend(job.fault.faults.iter().copied());
    sim
}

/// The shard a key belongs to, for a given shard count. Pure key
/// arithmetic: the same key lands in a stable shard for a fixed count,
/// and resuming with a *different* count is safe because completed work
/// is matched by key, never by shard.
#[must_use]
pub fn shard_of(key: RunKey, shards: usize) -> usize {
    (key.0 % shards.max(1) as u64) as usize
}

/// The directory holding per-shard journals for a merged journal at
/// `journal_path`: the sibling `<file-name>.d`.
#[must_use]
pub fn shard_dir(journal_path: &Path) -> PathBuf {
    let mut name = journal_path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("journal"), ToOwned::to_owned);
    name.push(".d");
    journal_path.with_file_name(name)
}

/// The journal path for shard `index` inside `dir`.
#[must_use]
pub fn shard_journal_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:04}.jsonl"))
}

/// The deterministic delay before respawn attempt `respawn` (1-based) of
/// shard `shard`: bounded exponential growth plus a splitmix64-seeded
/// jitter so simultaneous shard deaths don't respawn in lockstep. Pure
/// function of its arguments — the *schedule* is deterministic even
/// though the deaths it answers are not. Liveness only; never reported.
#[must_use]
pub fn backoff_delay(shard: usize, respawn: u32) -> Duration {
    let base_ms = 25u64 << respawn.min(6);
    let jitter = journal::splitmix64(((shard as u64) << 32) ^ u64::from(respawn)) % (base_ms / 4);
    Duration::from_millis(base_ms + jitter)
}

// ---------------------------------------------------------------------
// Wire format (supervisor → worker, over stdin)
// ---------------------------------------------------------------------

/// The parsed dispatch header a worker receives as its first stdin line.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Dispatch {
    index: usize,
    journal: PathBuf,
    heartbeat_ms: u64,
}

fn header_line(index: usize, journal: &Path, heartbeat_ms: u64) -> String {
    let mut w = JsonWriter::compact();
    w.open_obj();
    w.str_field("shard", SHARD_SCHEMA);
    w.u64_field("index", index as u64);
    w.str_field("journal", &journal.display().to_string());
    w.u64_field("heartbeat_ms", heartbeat_ms);
    w.close_obj();
    let mut line = w.finish().trim_end_matches('\n').to_owned();
    line.push('\n');
    line
}

fn parse_header(line: &str) -> Option<Dispatch> {
    let v = parse_json(line.trim())?;
    if v.get("shard")?.as_str()? != SHARD_SCHEMA {
        return None;
    }
    Some(Dispatch {
        index: usize::try_from(v.get("index")?.as_u64()?).ok()?,
        journal: PathBuf::from(v.get("journal")?.as_str()?),
        heartbeat_ms: v.get("heartbeat_ms")?.as_u64()?,
    })
}

fn cell_line(cell: &Cell) -> String {
    let mut w = JsonWriter::compact();
    w.open_obj();
    w.key("cell");
    w.open_obj();
    w.u64_field("job", cell.job as u64);
    w.u64_field("variant", cell.variant as u64);
    w.str_field("key", &cell.key.to_string());
    w.close_obj();
    w.close_obj();
    let mut line = w.finish().trim_end_matches('\n').to_owned();
    line.push('\n');
    line
}

fn parse_cell(v: &Json) -> Option<Cell> {
    let c = v.get("cell")?;
    Some(Cell {
        job: usize::try_from(c.get("job")?.as_u64()?).ok()?,
        variant: usize::try_from(c.get("variant")?.as_u64()?).ok()?,
        key: RunKey::parse(c.get("key")?.as_str()?)?,
    })
}

// ---------------------------------------------------------------------
// Shard journal scanning (supervisor side)
// ---------------------------------------------------------------------

/// Everything one pass over a shard journal recovers: the intact
/// records, the cell in flight when the writer stopped (per the
/// heartbeat trail), and how many lines failed their checksum frame.
#[derive(Debug, Default)]
struct ShardScan {
    records: Vec<RunRecord>,
    in_flight: Option<RunKey>,
    corrupt: usize,
}

fn scan_shard_journal(path: &Path) -> io::Result<ShardScan> {
    let mut scan = ShardScan::default();
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(e),
    };
    for raw in bytes.split(|b| *b == b'\n') {
        if raw.is_empty() {
            continue;
        }
        let Ok(line) = std::str::from_utf8(raw) else {
            scan.corrupt += 1;
            continue;
        };
        match RunRecord::parse_line(line) {
            Ok(rec) => {
                if scan.in_flight == Some(rec.key) {
                    scan.in_flight = None;
                }
                scan.records.push(rec);
            }
            Err(LineError::Corrupt) => scan.corrupt += 1,
            Err(LineError::Unusable) => {
                // Heartbeats share the file; anything else unusable is
                // a torn tail and costs nothing (the record it would
                // have been was never acknowledged).
                if let Some(hb) = Heartbeat::from_line(line) {
                    match hb.phase {
                        HeartbeatPhase::Start => scan.in_flight = hb.cell,
                        HeartbeatPhase::Done => {
                            if scan.in_flight == hb.cell {
                                scan.in_flight = None;
                            }
                        }
                        HeartbeatPhase::Alive => {}
                    }
                }
            }
        }
    }
    Ok(scan)
}

// ---------------------------------------------------------------------
// The supervisor
// ---------------------------------------------------------------------

/// Configuration for [`run_sweep_sharded`].
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Number of worker processes to partition the matrix across
    /// (clamped to ≥ 1).
    pub shards: usize,
    /// The worker process argv: `worker_cmd[0]` is the program (usually
    /// the current `sweep` binary with `--shard-exec`), the rest its
    /// arguments. The worker must rebuild the identical job list and
    /// [`SweepConfig`] from those arguments.
    pub worker_cmd: Vec<String>,
    /// The merged campaign journal. Per-shard journals live in the
    /// sibling [`shard_dir`].
    pub journal_path: PathBuf,
    /// Resume from an existing merged journal (and any leftover shard
    /// journals) instead of truncating.
    pub resume: bool,
    /// Optional cross-campaign result cache, probed before dispatch and
    /// repopulated after the merge.
    pub cache: Option<ResultCache>,
    /// Worker heartbeat interval (zero disables the worker pulse
    /// thread; `start`/`done` beats still flow).
    pub heartbeat: Duration,
    /// Kill a live worker whose shard journal has not grown for this
    /// long (zero disables silence kills — exit status still covers
    /// death).
    pub silence_budget: Duration,
    /// How long a cancelled worker gets to wind down cooperatively
    /// before SIGKILL.
    pub grace: Duration,
    /// Respawn budget per shard; a shard that exhausts it hands its
    /// remaining cells to the inline final pass.
    pub max_respawns: u32,
    /// Supervisor monitor-loop tick.
    pub poll: Duration,
}

impl ShardConfig {
    /// A config with conventional liveness settings: 200 ms heartbeats,
    /// a 10 s silence budget, 500 ms cancellation grace and 4 respawns
    /// per shard.
    #[must_use]
    pub fn new(shards: usize, worker_cmd: Vec<String>, journal_path: impl Into<PathBuf>) -> Self {
        Self {
            shards,
            worker_cmd,
            journal_path: journal_path.into(),
            resume: false,
            cache: None,
            heartbeat: Duration::from_millis(200),
            silence_budget: Duration::from_secs(10),
            grace: Duration::from_millis(500),
            max_respawns: 4,
            poll: Duration::from_millis(20),
        }
    }
}

/// Orchestration counters from a sharded campaign. Diagnostics only —
/// none of this enters report bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shards the matrix was partitioned into.
    pub shards: usize,
    /// Worker processes spawned, including respawns.
    pub workers_spawned: usize,
    /// Respawns after a worker death or silence kill.
    pub respawns: usize,
    /// Cells streamed to workers (a respawned shard re-dispatches its
    /// remaining cells, so this can exceed the matrix size).
    pub dispatched: usize,
    /// Records recovered from shard journals into the merged journal.
    pub recovered: usize,
    /// Journal lines (records or heartbeats, any shard) dropped for
    /// failing their checksum frame.
    pub corrupt_lines: usize,
    /// Workers killed for journal silence.
    pub silent_kills: usize,
    /// Cells quarantined by the supervisor after repeatedly killing
    /// workers.
    pub quarantined: usize,
    /// Cells abandoned to the inline final pass after a shard's respawn
    /// budget ran out.
    pub abandoned: usize,
    /// Result-cache traffic.
    pub cache: CacheCounters,
}

/// One shard's slot in the supervisor: its pending work, its live child
/// (if any) and its liveness bookkeeping. Dropping the slot kills the
/// child, so no supervisor exit path — including panics and early `?`
/// returns — leaks a worker process.
struct WorkerSlot {
    shard: usize,
    journal_path: PathBuf,
    pending: Vec<Cell>,
    child: Option<(Child, Option<ChildStdin>)>,
    respawns: u32,
    respawn_at: Option<Instant>,
    last_len: u64,
    last_growth: Instant,
    finished: bool,
}

impl Drop for WorkerSlot {
    fn drop(&mut self) {
        if let Some((mut child, stdin)) = self.child.take() {
            drop(stdin);
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl WorkerSlot {
    fn spawn(&mut self, scfg: &ShardConfig, stats: &mut ShardStats) -> io::Result<()> {
        let mut cmd = Command::new(&scfg.worker_cmd[0]);
        cmd.args(&scfg.worker_cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn()?;
        let mut stdin = child.stdin.take();
        if let Some(w) = stdin.as_mut() {
            // A worker that dies instantly closes the pipe; dispatch
            // errors are the monitor loop's problem, not ours.
            let _ = write_dispatch(w, self.shard, &self.journal_path, scfg, &self.pending);
        }
        stats.workers_spawned += 1;
        stats.dispatched += self.pending.len();
        self.child = Some((child, stdin));
        self.respawn_at = None;
        self.last_len = fs::metadata(&self.journal_path).map_or(0, |m| m.len());
        self.last_growth = Instant::now();
        Ok(())
    }
}

fn write_dispatch(
    w: &mut ChildStdin,
    shard: usize,
    journal: &Path,
    scfg: &ShardConfig,
    cells: &[Cell],
) -> io::Result<()> {
    w.write_all(header_line(shard, journal, scfg.heartbeat.as_millis() as u64).as_bytes())?;
    for cell in cells {
        w.write_all(cell_line(cell).as_bytes())?;
    }
    w.write_all(END_LINE.as_bytes())?;
    w.flush()
}

/// The record the supervisor synthesizes for a cell that killed (or
/// stalled) `strikes` worker processes: quarantined, with a
/// deterministic detail and the cell's first-attempt seed — no
/// wall-clock, so resumes reproduce it byte-exactly.
fn quarantined_cell_record(
    cell: Cell,
    jobs: &[SweepJob],
    cfg: &SweepConfig,
    strikes: u32,
) -> RunRecord {
    RunRecord {
        key: cell.key,
        job: jobs[cell.job].name.clone(),
        variant: cfg.variants[cell.variant].label.clone(),
        outcome: OutcomeRecord {
            status: RunStatus::Quarantined,
            detail: Some(format!(
                "quarantined: cell killed or stalled {strikes} worker processes"
            )),
            injected: Vec::new(),
            attempts: vec![Attempt {
                status: RunStatus::Quarantined,
                seed: journal::derive_seed(cell.key, 0),
            }],
            metrics: None,
        },
    }
}

/// Runs the sweep matrix across `shards` worker OS processes and returns
/// a report **byte-identical** to [`super::run_sweep_journaled`] on the
/// same inputs — see the module docs for the architecture and the
/// determinism contract.
///
/// # Errors
///
/// Propagates I/O errors from journal and cache management and from
/// spawning worker processes. Worker *deaths* are not errors — they are
/// the failure domain this exists to absorb.
///
/// # Panics
///
/// Panics only if a worker-slot invariant is violated (a slot claiming
/// work for a cell outside the matrix), which would be a bug here, not
/// an input condition.
pub fn run_sweep_sharded(
    jobs: &[SweepJob],
    cfg: &SweepConfig,
    scfg: &ShardConfig,
) -> io::Result<(SweepResult, SweepStats, ShardStats)> {
    if scfg.worker_cmd.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "shard worker command is empty",
        ));
    }
    let shards = scfg.shards.max(1);
    let mut stats = ShardStats {
        shards,
        ..ShardStats::default()
    };
    let cells = enumerate_cells(jobs, cfg);
    let mut merged = if scfg.resume {
        Journal::resume(&scfg.journal_path)?
    } else {
        Journal::create(&scfg.journal_path)?
    };
    stats.corrupt_lines += merged.corrupt();

    let dir = shard_dir(&scfg.journal_path);
    fs::create_dir_all(&dir)?;
    // Per-file corruption counts: shard journals are re-scanned on every
    // worker exit, so the latest scan per file wins (counts in one file
    // only grow).
    let mut corrupt_by_file: HashMap<PathBuf, usize> = HashMap::new();

    // A resumed campaign may find shard journals from a crashed
    // supervisor — possibly from a different shard count. Absorb every
    // record they hold before partitioning; matching is by key, so the
    // old partition is irrelevant.
    if scfg.resume {
        let mut leftovers: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        leftovers.sort();
        for path in leftovers {
            let scan = scan_shard_journal(&path)?;
            corrupt_by_file.insert(path, scan.corrupt);
            for rec in &scan.records {
                if merged.absorb(rec)? {
                    stats.recovered += 1;
                }
            }
        }
    }

    // Cross-campaign cache: serve every still-missing cell we can.
    if let Some(cache) = &scfg.cache {
        for cell in &cells {
            if merged.lookup(cell.key).is_some() {
                continue;
            }
            match cache.lookup(cell.key) {
                CacheLookup::Hit(rec) => {
                    stats.cache.hits += 1;
                    merged.absorb(&rec)?;
                }
                CacheLookup::Miss => stats.cache.misses += 1,
                CacheLookup::Corrupt => stats.cache.corrupt += 1,
            }
        }
    }

    // Partition the remaining work and spawn.
    let mut slots: Vec<WorkerSlot> = (0..shards)
        .map(|s| WorkerSlot {
            shard: s,
            journal_path: shard_journal_path(&dir, s),
            pending: cells
                .iter()
                .filter(|c| shard_of(c.key, shards) == s && merged.lookup(c.key).is_none())
                .copied()
                .collect(),
            child: None,
            respawns: 0,
            respawn_at: None,
            last_len: 0,
            last_growth: Instant::now(),
            finished: false,
        })
        .collect();
    let mut strikes: HashMap<u64, u32> = HashMap::new();
    for slot in &mut slots {
        if slot.pending.is_empty() {
            slot.finished = true;
        } else {
            slot.spawn(scfg, &mut stats)?;
        }
    }

    // Monitor loop: reap exits, absorb results, charge strikes, respawn
    // under backoff, kill the silent, propagate cancellation.
    let cancel = cfg.sim.cancel.clone();
    let mut cancel_sent: Option<Instant> = None;
    loop {
        if let Some(token) = &cancel {
            if token.is_cancelled() && cancel_sent.is_none() {
                for slot in &mut slots {
                    if let Some((_, Some(w))) = slot.child.as_mut() {
                        let _ = w.write_all(CANCEL_LINE.as_bytes());
                        let _ = w.flush();
                    }
                }
                cancel_sent = Some(Instant::now());
            }
        }
        if let Some(sent) = cancel_sent {
            if sent.elapsed() >= scfg.grace {
                for slot in &mut slots {
                    if let Some((child, _)) = slot.child.as_mut() {
                        let _ = child.kill();
                    }
                }
            }
        }

        let mut all_done = true;
        for slot in &mut slots {
            if slot.finished {
                continue;
            }
            all_done = false;
            if let Some((child, _)) = slot.child.as_mut() {
                match child.try_wait()? {
                    Some(_status) => {
                        // Reap: the exit status is deliberately not
                        // trusted for success — only the journal is.
                        slot.child = None;
                        let scan = scan_shard_journal(&slot.journal_path)?;
                        corrupt_by_file.insert(slot.journal_path.clone(), scan.corrupt);
                        for rec in &scan.records {
                            if merged.absorb(rec)? {
                                stats.recovered += 1;
                            }
                        }
                        slot.pending.retain(|c| merged.lookup(c.key).is_none());
                        if let Some(k) = scan.in_flight {
                            if let Some(cell) = slot.pending.iter().copied().find(|c| c.key == k) {
                                let n = strikes.entry(k.0).or_insert(0);
                                *n += 1;
                                if *n >= cfg.quarantine_after.max(1) {
                                    let rec = quarantined_cell_record(cell, jobs, cfg, *n);
                                    merged.absorb(&rec)?;
                                    stats.quarantined += 1;
                                    slot.pending.retain(|c| c.key != k);
                                }
                            }
                        }
                        if slot.pending.is_empty() || cancel_sent.is_some() {
                            slot.finished = true;
                        } else if slot.respawns >= scfg.max_respawns {
                            stats.abandoned += slot.pending.len();
                            slot.finished = true;
                        } else {
                            slot.respawns += 1;
                            stats.respawns += 1;
                            slot.respawn_at =
                                Some(Instant::now() + backoff_delay(slot.shard, slot.respawns));
                        }
                    }
                    None => {
                        // Alive: journal growth is the liveness signal.
                        let len = fs::metadata(&slot.journal_path).map_or(0, |m| m.len());
                        if len != slot.last_len {
                            slot.last_len = len;
                            slot.last_growth = Instant::now();
                        } else if !scfg.silence_budget.is_zero()
                            && slot.last_growth.elapsed() > scfg.silence_budget
                        {
                            stats.silent_kills += 1;
                            let _ = child.kill();
                        }
                    }
                }
            } else if cancel_sent.is_some() {
                slot.finished = true;
            } else if slot.respawn_at.is_some_and(|t| Instant::now() >= t) {
                slot.spawn(scfg, &mut stats)?;
            }
        }
        if all_done {
            break;
        }
        std::thread::sleep(scfg.poll);
    }
    drop(slots);
    stats.corrupt_lines += corrupt_by_file.values().sum::<usize>();

    // Final pass: replay everything recovered, execute anything left
    // inline, and assemble the report exactly as a single-process run
    // would. This is what makes byte-identity a structural property
    // instead of a merge-ordering accident.
    let (result, sweep_stats) = super::run_sweep_journaled(jobs, cfg, Some(&merged));

    // Promote settled outcomes into the cross-campaign cache.
    if let Some(cache) = &scfg.cache {
        let mut key_of: HashMap<(usize, usize), RunKey> = HashMap::new();
        for c in &cells {
            key_of.insert((c.job, c.variant), c.key);
        }
        for (ji, job) in result.jobs.iter().enumerate() {
            for (vi, run) in job.runs.iter().enumerate() {
                let Some(&key) = key_of.get(&(ji, vi)) else {
                    continue;
                };
                let rec = RunRecord {
                    key,
                    job: job.name.clone(),
                    variant: run.variant.clone(),
                    outcome: run.to_record(),
                };
                if matches!(cache.store(&rec), Ok(true)) {
                    stats.cache.stored += 1;
                }
            }
        }
    }
    Ok((result, sweep_stats, stats))
}

// ---------------------------------------------------------------------
// The worker
// ---------------------------------------------------------------------

/// What one worker invocation did, for the bin's diagnostics and exit
/// code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The shard index from the dispatch header.
    pub shard: usize,
    /// Cells executed and journaled this invocation.
    pub executed: usize,
    /// Dispatched cells already present in the shard journal (a
    /// respawned worker resuming its predecessor's work).
    pub replayed: usize,
    /// Dispatched cells refused: unknown job/variant index, or a
    /// [`RunKey`] that does not match the worker's own recomputation
    /// (supervisor and worker disagree about the matrix).
    pub protocol_errors: usize,
    /// The worker stopped early on a cancel line, stdin EOF, or a
    /// cancelled cell.
    pub cancelled: bool,
}

/// Executes one shard: reads the dispatch header and cell list from
/// `input` (the worker's stdin), runs each cell through the standard
/// retry/quarantine machinery, journals results to the shard journal
/// named in the header, and interleaves heartbeats. See the module docs
/// for the protocol and the cancellation contract; `jobs` and `cfg`
/// must be rebuilt identically to the supervisor's (the per-cell key
/// check enforces it).
///
/// # Errors
///
/// Returns `InvalidData` for a missing or malformed dispatch header and
/// propagates journal I/O errors — a worker that cannot record results
/// durably must die (and be respawned) rather than burn work.
pub fn run_shard_worker<R>(
    jobs: &[SweepJob],
    cfg: &SweepConfig,
    input: R,
) -> io::Result<WorkerSummary>
where
    R: Read + Send + 'static,
{
    let mut reader = BufReader::new(input);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "shard worker: missing dispatch header on stdin",
        ));
    }
    let header = parse_header(&line).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("shard worker: bad dispatch header: {}", line.trim()),
        )
    })?;
    let mut summary = WorkerSummary {
        shard: header.index,
        ..WorkerSummary::default()
    };

    // Read the cell list up to the end marker. EOF first means the
    // supervisor died mid-dispatch: wind down, run nothing.
    let mut cells: Vec<Cell> = Vec::new();
    let mut end_seen = false;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Some(v) = parse_json(trimmed) else {
            summary.protocol_errors += 1;
            continue;
        };
        if v.get("end").is_some() {
            end_seen = true;
            break;
        }
        if v.get("cancel").is_some() {
            summary.cancelled = true;
            return Ok(summary);
        }
        if let Some(c) = parse_cell(&v) {
            cells.push(c);
        } else {
            summary.protocol_errors += 1;
        }
    }
    if !end_seen {
        summary.cancelled = true;
        return Ok(summary);
    }

    // Resume (never truncate) the shard journal: a respawned worker
    // inherits its predecessor's completed records and skips them.
    let shard_journal = Arc::new(Journal::resume(&header.journal)?);

    // Cooperative cancellation: the caller's token if one is installed,
    // else our own; a watcher thread trips it on a cancel line or on
    // stdin EOF (dead supervisor), so workers never outlive supervision.
    let token = cfg.sim.cancel.clone().unwrap_or_default();
    {
        let token = token.clone();
        std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if parse_json(line.trim()).is_some_and(|v| v.get("cancel").is_some()) {
                            break;
                        }
                    }
                }
            }
            token.cancel();
        });
    }

    let sink = {
        let j = Arc::clone(&shard_journal);
        Arc::new(move |hb: &Heartbeat| {
            let _ = j.append_raw(&hb.to_line());
        }) as Arc<dyn Fn(&Heartbeat) + Send + Sync>
    };
    let pulse = Pulse::start(sink, Duration::from_millis(header.heartbeat_ms));

    // Group cells by job so the reference executes once per job, exactly
    // like the in-process sweep. Within-shard order is irrelevant to the
    // report (records are keyed), so BTreeMap order is fine.
    let mut by_job: BTreeMap<usize, Vec<Cell>> = BTreeMap::new();
    for c in cells {
        by_job.entry(c.job).or_default().push(c);
    }
    let mut arena = SimArena::new();
    'jobs: for (ji, group) in by_job {
        let Some(job) = jobs.get(ji) else {
            summary.protocol_errors += group.len();
            continue;
        };
        let mut sim_cfg = effective_sim(job, cfg);
        let fp = journal::job_fingerprint(&job.region, &job.binding, &sim_cfg);
        sim_cfg.cancel = Some(token.clone());
        let Some(reference) = reference::execute_cancellable(
            &job.region,
            &job.binding,
            cfg.sim.invocations,
            Some(&token),
        ) else {
            summary.cancelled = true;
            break 'jobs;
        };
        let mut compiles = super::CompileCache::default();
        for c in group {
            if token.is_cancelled() {
                summary.cancelled = true;
                break 'jobs;
            }
            let Some(v) = cfg.variants.get(c.variant) else {
                summary.protocol_errors += 1;
                continue;
            };
            let key = journal::run_key(fp, v);
            if key != c.key {
                summary.protocol_errors += 1;
                continue;
            }
            if shard_journal.lookup(key).is_some() {
                summary.replayed += 1;
                continue;
            }
            pulse.cell_start(key);
            let out = super::run_cell(
                job,
                v,
                &sim_cfg,
                &cfg.energy,
                &reference,
                &mut arena,
                &mut compiles,
                key,
                cfg.retry,
            );
            if out.status == RunStatus::Cancelled {
                // Cancelled cells are never journaled; the next worker
                // (or the inline pass) runs them for real.
                pulse.cell_done(key);
                summary.cancelled = true;
                break 'jobs;
            }
            let rec = RunRecord {
                key,
                job: job.name.clone(),
                variant: v.label.clone(),
                outcome: out.to_record(),
            };
            shard_journal.append(&rec)?;
            pulse.cell_done(key);
            summary.executed += 1;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::store_load_region;

    fn demo_jobs(n: usize) -> Vec<SweepJob> {
        (0..n)
            .map(|i| {
                let (region, binding) = store_load_region(&format!("job-{i}"));
                SweepJob::new(format!("job-{i}"), region, binding)
            })
            .collect()
    }

    fn demo_cfg() -> SweepConfig {
        SweepConfig::default().with_invocations(2)
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nachos-shard-unit").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A reader that never returns — the test stand-in for a supervisor
    /// keeping the stdin pipe open. Without it, `Cursor` EOF reads as
    /// "supervisor died" and the worker correctly cancels itself.
    struct HoldOpen;

    impl Read for HoldOpen {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            loop {
                std::thread::park();
            }
        }
    }

    fn held_open(input: String) -> impl Read + Send + 'static {
        io::Cursor::new(input).chain(HoldOpen)
    }

    #[test]
    fn wire_lines_roundtrip() {
        let cell = Cell {
            job: 3,
            variant: 1,
            key: RunKey(0xfeed_face_cafe_0001),
        };
        let parsed = parse_cell(&parse_json(cell_line(&cell).trim()).unwrap()).unwrap();
        assert_eq!(parsed, cell);
        let header = header_line(7, Path::new("/tmp/x/shard-0007.jsonl"), 250);
        assert_eq!(
            parse_header(&header),
            Some(Dispatch {
                index: 7,
                journal: PathBuf::from("/tmp/x/shard-0007.jsonl"),
                heartbeat_ms: 250,
            })
        );
        assert!(parse_header("{\"shard\":\"nachos-shard-v9\"}").is_none());
        assert!(parse_json(END_LINE.trim()).unwrap().get("end").is_some());
        assert!(parse_json(CANCEL_LINE.trim())
            .unwrap()
            .get("cancel")
            .is_some());
    }

    #[test]
    fn partition_is_stable_and_total() {
        let jobs = demo_jobs(4);
        let cfg = demo_cfg();
        let cells = enumerate_cells(&jobs, &cfg);
        assert_eq!(cells.len(), jobs.len() * cfg.variants.len());
        for shards in [1usize, 2, 3, 7] {
            let mut seen = 0usize;
            for s in 0..shards {
                seen += cells
                    .iter()
                    .filter(|c| shard_of(c.key, shards) == s)
                    .count();
            }
            assert_eq!(seen, cells.len(), "every cell lands in exactly one shard");
        }
        // Keys (and so shards) are stable across recomputation.
        assert_eq!(cells, enumerate_cells(&jobs, &cfg));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for shard in 0..4usize {
            for respawn in 1..10u32 {
                let d = backoff_delay(shard, respawn);
                assert_eq!(d, backoff_delay(shard, respawn));
                assert!(d >= Duration::from_millis(25));
                assert!(d <= Duration::from_millis(2000));
            }
        }
        // Different shards jitter apart (at least somewhere).
        assert!((0..4).any(|s| backoff_delay(s, 1) != backoff_delay(s + 4, 1)));
    }

    #[test]
    fn worker_executes_dispatched_cells_and_respawn_replays_them() {
        let dir = scratch("worker-exec");
        let jobs = demo_jobs(2);
        let cfg = demo_cfg();
        let cells = enumerate_cells(&jobs, &cfg);
        let journal_path = dir.join("shard-0000.jsonl");
        let mut input = header_line(0, &journal_path, 0);
        for c in &cells {
            input.push_str(&cell_line(c));
        }
        input.push_str(END_LINE);
        let summary = run_shard_worker(&jobs, &cfg, held_open(input.clone())).unwrap();
        assert_eq!(summary.executed, cells.len());
        assert_eq!(summary.protocol_errors, 0);
        assert!(!summary.cancelled);
        let j = Journal::resume(&journal_path).unwrap();
        assert_eq!(j.replay_len(), cells.len());
        // A respawned worker re-dispatched the same cells replays, not
        // re-executes.
        let again = run_shard_worker(&jobs, &cfg, held_open(input)).unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.replayed, cells.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_rejects_mismatched_keys_and_unknown_indexes() {
        let dir = scratch("worker-proto");
        let jobs = demo_jobs(1);
        let cfg = demo_cfg();
        let cells = enumerate_cells(&jobs, &cfg);
        let journal_path = dir.join("shard-0000.jsonl");
        let mut input = header_line(0, &journal_path, 0);
        // Wrong key, unknown job, unknown variant: all refused.
        input.push_str(&cell_line(&Cell {
            key: RunKey(cells[0].key.0 ^ 1),
            ..cells[0]
        }));
        input.push_str(&cell_line(&Cell {
            job: 99,
            ..cells[0]
        }));
        input.push_str(&cell_line(&Cell {
            variant: 99,
            ..cells[0]
        }));
        input.push_str(END_LINE);
        let summary = run_shard_worker(&jobs, &cfg, held_open(input)).unwrap();
        assert_eq!(summary.executed, 0);
        assert_eq!(summary.protocol_errors, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_treats_eof_before_end_as_cancel() {
        let jobs = demo_jobs(1);
        let cfg = demo_cfg();
        let cells = enumerate_cells(&jobs, &cfg);
        let dir = scratch("worker-eof");
        let mut input = header_line(0, &dir.join("s.jsonl"), 0);
        input.push_str(&cell_line(&cells[0]));
        // No end marker: the supervisor died mid-dispatch.
        let summary = run_shard_worker(&jobs, &cfg, io::Cursor::new(input)).unwrap();
        assert!(summary.cancelled);
        assert_eq!(summary.executed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_report_matches_single_process_even_when_workers_never_run() {
        // Workers are `true`: they exit without reading a single cell,
        // the respawn budget burns out, and every cell lands in the
        // inline final pass — the degenerate worst case, which must
        // still be byte-identical to the single-process report.
        let dir = scratch("supervisor-inline");
        let jobs = demo_jobs(3);
        let cfg = demo_cfg();
        let mut scfg = ShardConfig::new(2, vec!["true".into()], dir.join("campaign.jsonl"));
        scfg.max_respawns = 1;
        scfg.poll = Duration::from_millis(2);
        scfg.silence_budget = Duration::ZERO;
        let (sharded, _, stats) = run_sweep_sharded(&jobs, &cfg, &scfg).unwrap();
        assert_eq!(stats.abandoned, jobs.len() * cfg.variants.len());
        assert!(stats.workers_spawned >= 2);
        let single = super::super::run_sweep(&jobs, &cfg);
        assert_eq!(sharded.to_json(), single.to_json());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervisor_absorbs_prefilled_shard_journals_without_spawning_real_work() {
        // Simulate recovery: a previous campaign's workers completed
        // every cell into shard journals, then the supervisor crashed
        // before merging. Resume must absorb them and spawn no work.
        let dir = scratch("supervisor-absorb");
        let jobs = demo_jobs(2);
        let cfg = demo_cfg();
        let journal_path = dir.join("campaign.jsonl");
        // Run single-process with a journal to get authentic records.
        let donor = Journal::create(dir.join("donor.jsonl")).unwrap();
        let (single, _) = super::super::run_sweep_journaled(&jobs, &cfg, Some(&donor));
        drop(donor);
        let sdir = shard_dir(&journal_path);
        fs::create_dir_all(&sdir).unwrap();
        // Scatter the donor lines across three shard journals (a
        // different count than we resume with).
        let donor_lines = fs::read_to_string(dir.join("donor.jsonl")).unwrap();
        let mut writers: Vec<String> = vec![String::new(); 3];
        for (i, l) in donor_lines.lines().enumerate() {
            writers[i % 3].push_str(l);
            writers[i % 3].push('\n');
        }
        for (i, content) in writers.iter().enumerate() {
            fs::write(shard_journal_path(&sdir, i), content).unwrap();
        }
        let mut scfg = ShardConfig::new(2, vec!["true".into()], &journal_path);
        scfg.resume = true;
        scfg.max_respawns = 0;
        scfg.poll = Duration::from_millis(2);
        let (sharded, sweep_stats, stats) = run_sweep_sharded(&jobs, &cfg, &scfg).unwrap();
        assert_eq!(stats.recovered, jobs.len() * cfg.variants.len());
        assert_eq!(stats.workers_spawned, 0, "nothing left to dispatch");
        assert_eq!(sweep_stats.executed, 0);
        assert_eq!(sharded.to_json(), single.to_json());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_round_trips_a_campaign() {
        let dir = scratch("supervisor-cache");
        let jobs = demo_jobs(2);
        let cfg = demo_cfg();
        let cache = ResultCache::open(dir.join("cache")).unwrap();
        let total = jobs.len() * cfg.variants.len();
        // First campaign: all misses, everything stored.
        let mut scfg = ShardConfig::new(1, vec!["true".into()], dir.join("c1.jsonl"));
        scfg.cache = Some(cache.clone());
        scfg.max_respawns = 0;
        scfg.poll = Duration::from_millis(2);
        let (first, _, stats1) = run_sweep_sharded(&jobs, &cfg, &scfg).unwrap();
        assert_eq!(stats1.cache.misses, total);
        assert_eq!(stats1.cache.stored, total);
        // Second campaign, fresh journal: served entirely from cache.
        let mut scfg2 = ShardConfig::new(1, vec!["true".into()], dir.join("c2.jsonl"));
        scfg2.cache = Some(cache);
        scfg2.max_respawns = 0;
        scfg2.poll = Duration::from_millis(2);
        let (second, sweep_stats2, stats2) = run_sweep_sharded(&jobs, &cfg, &scfg2).unwrap();
        assert_eq!(stats2.cache.hits, total);
        assert_eq!(stats2.workers_spawned, 0);
        assert_eq!(sweep_stats2.executed, 0);
        assert_eq!(second.to_json(), first.to_json());
        let _ = fs::remove_dir_all(&dir);
    }
}
