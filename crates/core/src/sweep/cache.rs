//! Persistent cross-campaign content-addressed result cache.
//!
//! The journal makes one campaign resumable; the cache makes *repeated*
//! campaigns cheap. Every completed cell is identified by its FNV-1a
//! [`RunKey`] — a content hash of the region, binding, variant and
//! effective simulator configuration — so a cell whose inputs are
//! unchanged produces byte-identical report output no matter which
//! campaign, process or machine ran it. The cache is therefore just a
//! key-addressed store of [`RunRecord`] lines:
//!
//! ```text
//! <root>/ab/abcdef0123456789.rec     // first byte of the key fans out
//! ```
//!
//! Invalidation is structural, not temporal: any change to a region,
//! binding, fault plan, variant or simulator knob changes the key, so
//! stale entries are never *wrong*, merely unreachable garbage. The
//! schema tag inside each record guards against layout changes, and the
//! per-record checksum frame ([`crate::json::checksum_frame`]) guards
//! against disk corruption: a flipped byte makes [`ResultCache::lookup`]
//! report [`CacheLookup::Corrupt`], the entry is removed, and the cell
//! simply re-executes.
//!
//! Only **settled** outcomes are cached: `ok`, `mismatch` and
//! `fault_detected` are deterministic conclusions about the inputs.
//! Transient failures (panic, deadlock, error), quarantines and
//! cancellations stay campaign-local — a new campaign deserves a fresh
//! attempt, with its own retry budget, at anything that did not settle.

use super::journal::{RunKey, RunRecord};
use super::RunStatus;
use crate::json::write_atomic;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Handle to a cache root directory. Cheap to clone; all state lives on
/// disk, so concurrent supervisors sharing a root are safe (entries are
/// written atomically and content-addressed — the worst race is two
/// processes writing the identical record).
#[derive(Clone, Debug)]
pub struct ResultCache {
    root: PathBuf,
}

/// Outcome of a cache probe.
#[derive(Clone, Debug, PartialEq)]
pub enum CacheLookup {
    /// A valid record for the key (the record's own key was verified
    /// against the probe, so a misfiled entry cannot be served). Boxed:
    /// a record is large and `Miss` is the common campaign-start case.
    Hit(Box<RunRecord>),
    /// No entry.
    Miss,
    /// An entry existed but failed its checksum, failed to parse, or
    /// carried the wrong key; it has been removed (best effort) and the
    /// caller should re-execute the cell.
    Corrupt,
}

/// Aggregate counters from cache interactions during one campaign.
/// Diagnostics only — none of this enters report bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Probes served from the cache.
    pub hits: usize,
    /// Probes with no entry.
    pub misses: usize,
    /// Entries dropped (and removed) as corrupt.
    pub corrupt: usize,
    /// Records newly promoted into the cache.
    pub stored: usize,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation errors.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultCache { root })
    }

    /// The conventional cache location: `$XDG_CACHE_HOME/nachos/sweep`,
    /// falling back to `~/.cache/nachos/sweep`, falling back to a
    /// `nachos-sweep-cache` directory under the system temp dir when no
    /// home is known (sandboxed CI).
    #[must_use]
    pub fn default_root() -> PathBuf {
        if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME").filter(|v| !v.is_empty()) {
            return PathBuf::from(xdg).join("nachos").join("sweep");
        }
        if let Some(home) = std::env::var_os("HOME").filter(|v| !v.is_empty()) {
            return PathBuf::from(home)
                .join(".cache")
                .join("nachos")
                .join("sweep");
        }
        std::env::temp_dir().join("nachos-sweep-cache")
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether `status` settles a cell permanently enough to serve it
    /// to future campaigns (see the module docs for the policy).
    #[must_use]
    pub fn cacheable(status: RunStatus) -> bool {
        matches!(
            status,
            RunStatus::Ok | RunStatus::Mismatch | RunStatus::FaultDetected
        )
    }

    fn entry_path(&self, key: RunKey) -> PathBuf {
        let hex = key.to_string();
        self.root.join(&hex[..2]).join(format!("{hex}.rec"))
    }

    /// Probes the cache for `key`. Corrupt entries (checksum failure,
    /// parse failure, key mismatch) are removed on a best-effort basis
    /// so they cost one re-execution, once.
    #[must_use]
    pub fn lookup(&self, key: RunKey) -> CacheLookup {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheLookup::Miss,
            // An unreadable entry is indistinguishable from a corrupt
            // one for our purposes: re-execute.
            Err(_) => return CacheLookup::Corrupt,
        };
        let parsed = std::str::from_utf8(&bytes)
            .ok()
            .and_then(|s| RunRecord::from_line(s.trim_end()));
        match parsed {
            Some(rec) if rec.key == key && Self::cacheable(rec.outcome.status) => {
                CacheLookup::Hit(Box::new(rec))
            }
            _ => {
                let _ = fs::remove_file(&path);
                CacheLookup::Corrupt
            }
        }
    }

    /// Promotes one settled record into the cache. Returns `false`
    /// without writing when the record's status is not [cacheable]
    /// (`Self::cacheable`) or an entry already exists (first write
    /// wins; any valid entry for a key encodes the identical outcome).
    ///
    /// The entry lands atomically (`tmp` + rename), so a crash
    /// mid-store can never leave a torn entry that later reads as
    /// corrupt.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the atomic write.
    pub fn store(&self, record: &RunRecord) -> io::Result<bool> {
        if !Self::cacheable(record.outcome.status) {
            return Ok(false);
        }
        let path = self.entry_path(record.key);
        if path.exists() {
            return Ok(false);
        }
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        write_atomic(&path, &record.to_line())?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::super::journal::{Attempt, OutcomeRecord};
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nachos-cache-unit").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(key: u64, status: RunStatus) -> RunRecord {
        RunRecord {
            key: RunKey(key),
            job: "j".into(),
            variant: "nachos".into(),
            outcome: OutcomeRecord {
                status,
                detail: None,
                injected: Vec::new(),
                attempts: vec![Attempt { status, seed: 7 }],
                metrics: None,
            },
        }
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let cache = ResultCache::open(scratch("roundtrip")).unwrap();
        let rec = record(0xabcd_ef01_2345_6789, RunStatus::Ok);
        assert!(cache.store(&rec).unwrap());
        assert!(!cache.store(&rec).unwrap(), "second store is a no-op");
        assert_eq!(
            cache.lookup(rec.key),
            CacheLookup::Hit(Box::new(rec.clone()))
        );
        assert_eq!(cache.lookup(RunKey(1)), CacheLookup::Miss);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn unsettled_statuses_are_never_cached() {
        let cache = ResultCache::open(scratch("policy")).unwrap();
        for status in [
            RunStatus::Panic,
            RunStatus::Deadlock,
            RunStatus::Error,
            RunStatus::Quarantined,
            RunStatus::Cancelled,
        ] {
            let rec = record(status as u64 + 100, status);
            assert!(!cache.store(&rec).unwrap(), "{status} must not be cached");
            assert_eq!(cache.lookup(rec.key), CacheLookup::Miss);
        }
        for status in [RunStatus::Ok, RunStatus::Mismatch, RunStatus::FaultDetected] {
            let rec = record(status as u64 + 200, status);
            assert!(cache.store(&rec).unwrap());
        }
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entry_is_detected_and_self_healed() {
        let cache = ResultCache::open(scratch("corrupt")).unwrap();
        let rec = record(0x1111_2222_3333_4444, RunStatus::Ok);
        assert!(cache.store(&rec).unwrap());
        let path = cache.entry_path(rec.key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.lookup(rec.key), CacheLookup::Corrupt);
        assert!(!path.exists(), "the corrupt entry was removed");
        assert_eq!(cache.lookup(rec.key), CacheLookup::Miss, "cost paid once");
        // The cell can be re-stored after re-execution.
        assert!(cache.store(&rec).unwrap());
        assert_eq!(cache.lookup(rec.key), CacheLookup::Hit(Box::new(rec)));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn misfiled_entry_is_rejected() {
        let cache = ResultCache::open(scratch("misfiled")).unwrap();
        let rec = record(0x5555_6666_7777_8888, RunStatus::Ok);
        assert!(cache.store(&rec).unwrap());
        // Copy the (internally valid) entry under a different key's
        // path: the content-address check must refuse to serve it.
        let wrong = RunKey(0x9999_aaaa_bbbb_cccc);
        let wrong_path = cache.entry_path(wrong);
        fs::create_dir_all(wrong_path.parent().unwrap()).unwrap();
        fs::copy(cache.entry_path(rec.key), &wrong_path).unwrap();
        assert_eq!(cache.lookup(wrong), CacheLookup::Corrupt);
        assert!(!wrong_path.exists());
        let _ = fs::remove_dir_all(cache.root());
    }
}
