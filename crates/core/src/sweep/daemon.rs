//! The crash-safe sweep job service behind `nachos-sweepd`.
//!
//! One-shot sweeps (journaled, sharded, cached) already survive kills;
//! this module promotes that discipline to a *resident* process: a
//! long-running daemon that accepts sweep matrices over a Unix domain
//! socket, runs them through the same journaled harness, and hands
//! reports back — while surviving `kill -9`, enforcing deadlines and
//! shedding load instead of buffering it.
//!
//! # Protocol (`nachos-jobs-v1`)
//!
//! Line-delimited JSON over a Unix domain socket. Every request is one
//! line; every response is one line (except `watch`, which streams one
//! status line per observed state change until the job is terminal):
//!
//! ```text
//! {"jobs": "nachos-jobs-v1", "cmd": "submit", "spec": {...}}
//! {"jobs": "nachos-jobs-v1", "cmd": "status", "job": 1}
//! {"jobs": "nachos-jobs-v1", "cmd": "watch",  "job": 1}
//! {"jobs": "nachos-jobs-v1", "cmd": "fetch",  "job": 1}
//! {"jobs": "nachos-jobs-v1", "cmd": "cancel", "job": 1}
//! {"jobs": "nachos-jobs-v1", "cmd": "list"}
//! {"jobs": "nachos-jobs-v1", "cmd": "ping"}
//! {"jobs": "nachos-jobs-v1", "cmd": "drain"}
//! {"jobs": "nachos-jobs-v1", "cmd": "shutdown"}
//! ```
//!
//! Responses always carry `"ok": true|false`; failures carry a stable
//! `"error"` tag (`queue_full`, `draining`, `bad_spec`, `bad_request`,
//! `unknown_job`, `not_settled`, `already_terminal`,
//! `oversized_request`). A `queue_full` rejection includes
//! `"retry_after_ms"` — the backpressure contract is an explicit
//! structured rejection, never unbounded buffering and never a blocked
//! accept loop.
//!
//! # Job state machine
//!
//! ```text
//!             ┌────────────────────────────┐ (crash / shutdown requeue)
//!             v                            │
//! submit → queued ──→ running ──→ settled  │
//!             │          │ ├───→ cancelled │
//!             │          │ ├───→ quarantined
//!             │          │ └───→ deadline_exceeded
//!             │          └──────────────────┘
//!             └────→ cancelled
//! ```
//!
//! Every transition is appended (checksum-framed, fsynced) to a durable
//! job journal before it is visible, and each job's cells run under its
//! own run [`Journal`] — so `kill -9` of the daemon loses nothing: on
//! restart the job journal replays, every job caught `running` is
//! requeued, its run journal replays the completed cells, and the
//! eventual report is byte-identical to an uninterrupted run. No
//! wall-clock value is ever journaled; deadlines live only in memory
//! and reduce to deterministic *statuses*.
//!
//! # Drain vs. shutdown
//!
//! `drain` closes admission and lets every already-admitted job run to
//! completion (its cells checkpoint continuously), then the daemon
//! exits 0. `shutdown` also closes admission but cancels the in-flight
//! job cooperatively and *requeues it durably* — the daemon exits 0
//! immediately with a journal a future restart resumes from.

use super::journal::{
    file_lacks_final_newline, parse_json, read_bounded_line, BoundedLine, Journal, Json,
    MAX_RECORD_LEN,
};
use super::{run_sweep_journaled, RunStatus, SweepConfig, SweepJob};
use crate::config::CancelToken;
use crate::json::{checksum_frame, checksum_unframe, write_atomic, JsonWriter};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Wire-protocol schema tag, present in every response.
pub const JOBS_SCHEMA: &str = "nachos-jobs-v1";

/// Job-journal schema tag (the daemon's durable state-machine log).
pub const JOBD_SCHEMA: &str = "nachos-jobd-v1";

/// Upper bound on one client request line. A half-written or hostile
/// request beyond this is answered with `oversized_request` and the
/// connection dropped — the server never buffers an unbounded line.
pub const MAX_REQUEST_LEN: usize = 64 * 1024;

// ---------------------------------------------------------------------
// The submitted matrix
// ---------------------------------------------------------------------

/// A sweep matrix as submitted over the wire: the data form of the
/// `sweep` CLI's matrix-defining flags. The daemon itself does not know
/// how to turn a spec into jobs — the embedding binary supplies a
/// [`MatrixResolver`] (the `nachos-bench` suite for `nachos-sweepd`),
/// which keeps this module free of workload-crate dependencies and
/// guarantees the daemon and the one-shot CLI resolve *identically*
/// when they share the resolver.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixSpec {
    /// Accelerator invocations per run.
    pub invocations: u64,
    /// Worker threads for the in-process harness (`0` = auto).
    pub threads: usize,
    /// Append the IDEAL oracle column.
    pub ideal: bool,
    /// Run the certificate-carrying MDE optimizer per MDE cell.
    pub optimize: bool,
    /// Retry budget for transient per-run failures.
    pub max_retries: u32,
    /// Keep only workloads whose name contains this substring.
    pub filter: Option<String>,
    /// Explicit variant labels (`None` = the default matrix).
    pub variants: Option<Vec<String>>,
    /// Inject a deterministic panic into the named workload.
    pub poison: Option<String>,
    /// Per-job wall-clock budget in seconds (`0` = none). Enforced by
    /// the daemon through the job's [`CancelToken`]; never part of the
    /// matrix content, so it does not perturb run fingerprints.
    pub deadline_secs: u64,
    /// Per-cell cycle-budget override as `(base_cycles,
    /// cycles_per_node)` for the engine watchdog (`None` = defaults).
    /// Unlike the deadline this *is* matrix content: it changes
    /// simulated behavior and therefore run fingerprints.
    pub watchdog: Option<(u64, u64)>,
}

impl Default for MatrixSpec {
    fn default() -> Self {
        Self {
            invocations: 64,
            threads: 0,
            ideal: false,
            optimize: false,
            max_retries: 0,
            filter: None,
            variants: None,
            poison: None,
            deadline_secs: 0,
            watchdog: None,
        }
    }
}

impl MatrixSpec {
    /// Serializes the spec as one compact JSON object (wire and journal
    /// form; fixed key order, so identical specs are identical bytes).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::compact();
        self.write(&mut w);
        let mut s = w.finish();
        s.pop(); // compact object, no trailing newline
        s
    }

    fn write(&self, w: &mut JsonWriter) {
        w.open_obj();
        w.u64_field("invocations", self.invocations);
        w.u64_field("threads", self.threads as u64);
        w.bool_field("ideal", self.ideal);
        w.bool_field("optimize", self.optimize);
        w.u64_field("max_retries", u64::from(self.max_retries));
        w.u64_field("deadline_secs", self.deadline_secs);
        if let Some(f) = &self.filter {
            w.str_field("filter", f);
        }
        if let Some(labels) = &self.variants {
            w.key("variants");
            w.open_arr();
            for l in labels {
                w.str_item(l);
            }
            w.close_arr();
        }
        if let Some(p) = &self.poison {
            w.str_field("poison", p);
        }
        if let Some((base, per_node)) = self.watchdog {
            w.key("watchdog");
            w.open_obj();
            w.u64_field("base_cycles", base);
            w.u64_field("cycles_per_node", per_node);
            w.close_obj();
        }
        w.close_obj();
    }

    /// Parses a spec from its JSON object form. Absent optional fields
    /// take their defaults; present fields of the wrong type fail.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<MatrixSpec> {
        if !matches!(v, Json::Obj(_)) {
            return None;
        }
        let mut spec = MatrixSpec::default();
        if let Some(n) = v.get("invocations") {
            spec.invocations = n.as_u64()?;
        }
        if let Some(n) = v.get("threads") {
            spec.threads = usize::try_from(n.as_u64()?).ok()?;
        }
        if let Some(b) = v.get("ideal") {
            spec.ideal = matches!(b, Json::Bool(true));
        }
        if let Some(b) = v.get("optimize") {
            spec.optimize = matches!(b, Json::Bool(true));
        }
        if let Some(n) = v.get("max_retries") {
            spec.max_retries = u32::try_from(n.as_u64()?).ok()?;
        }
        if let Some(n) = v.get("deadline_secs") {
            spec.deadline_secs = n.as_u64()?;
        }
        if let Some(f) = v.get("filter") {
            spec.filter = Some(f.as_str()?.to_owned());
        }
        if let Some(arr) = v.get("variants") {
            let mut labels = Vec::new();
            for item in arr.as_arr()? {
                labels.push(item.as_str()?.to_owned());
            }
            spec.variants = Some(labels);
        }
        if let Some(p) = v.get("poison") {
            spec.poison = Some(p.as_str()?.to_owned());
        }
        if let Some(wd) = v.get("watchdog") {
            spec.watchdog = Some((
                wd.get("base_cycles")?.as_u64()?,
                wd.get("cycles_per_node")?.as_u64()?,
            ));
        }
        Some(spec)
    }
}

/// Maps a [`MatrixSpec`] to the jobs and configuration the harness
/// runs. Supplied by the embedding binary; resolution errors are
/// reported to the submitting client as `bad_spec` and never admit the
/// job.
pub type MatrixResolver =
    Arc<dyn Fn(&MatrixSpec) -> Result<(Vec<SweepJob>, SweepConfig), String> + Send + Sync>;

// ---------------------------------------------------------------------
// Job state machine
// ---------------------------------------------------------------------

/// A job's position in the durable state machine. `Queued` and
/// `Running` are live; everything else is terminal and absorbing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted and waiting for the executor.
    Queued,
    /// The executor is running (or resuming) the job's cells.
    Running,
    /// Every cell reached a verdict; the report exists on disk.
    Settled,
    /// Cancelled by a client (while queued or mid-run).
    Cancelled,
    /// The job itself could not execute (spec resolution or journal
    /// I/O failed) — parked with a detail, like a quarantined cell.
    Quarantined,
    /// The per-job wall-clock deadline expired mid-run; remaining cells
    /// were cooperatively cancelled. A structured outcome, not a hang.
    DeadlineExceeded,
}

impl JobStatus {
    /// Stable lowercase label (wire protocol and job journal).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Settled => "settled",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Quarantined => "quarantined",
            JobStatus::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// Parses the stable label back (journal replay).
    #[must_use]
    pub fn from_label(s: &str) -> Option<JobStatus> {
        Some(match s {
            "queued" => JobStatus::Queued,
            "running" => JobStatus::Running,
            "settled" => JobStatus::Settled,
            "cancelled" => JobStatus::Cancelled,
            "quarantined" => JobStatus::Quarantined,
            "deadline_exceeded" => JobStatus::DeadlineExceeded,
            _ => return None,
        })
    }

    /// `true` once a job can never change state again.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }

    /// The legal state-machine edges. Everything the daemon does —
    /// executor progress, client cancels, crash recovery, shutdown
    /// requeues — must be one of these; [`Daemon`] refuses (and the
    /// journal replay skips) anything else, so concurrent clients can
    /// never corrupt a job's lifecycle.
    #[must_use]
    pub fn can_transition(from: JobStatus, to: JobStatus) -> bool {
        matches!(
            (from, to),
            (JobStatus::Queued, JobStatus::Running)
                | (JobStatus::Queued, JobStatus::Cancelled)
                | (JobStatus::Running, JobStatus::Settled)
                | (JobStatus::Running, JobStatus::Cancelled)
                | (JobStatus::Running, JobStatus::Quarantined)
                | (JobStatus::Running, JobStatus::DeadlineExceeded)
                | (JobStatus::Running, JobStatus::Queued)
        )
    }
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One durable line of the job journal.
#[derive(Clone, Debug, PartialEq)]
pub enum JobEvent {
    /// A job was admitted with this spec.
    Submitted {
        /// The job id (sequential from 1).
        job: u64,
        /// The submitted matrix.
        spec: MatrixSpec,
    },
    /// A job moved to `to`. `mismatches`/`degraded` summarize the
    /// report for `settled` transitions (deterministic — derived from
    /// the byte-deterministic report) so restarted daemons can answer
    /// verdict queries without re-parsing reports.
    Transition {
        /// The job id.
        job: u64,
        /// The new status.
        to: JobStatus,
        /// Optional deterministic detail (quarantine cause, deadline
        /// budget, recovery note).
        detail: Option<String>,
        /// Cells that mismatched the reference (settled only).
        mismatches: u64,
        /// Cells that degraded without mismatching (settled only).
        degraded: u64,
    },
}

impl JobEvent {
    /// The checksum-framed, newline-terminated journal line.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut w = JsonWriter::compact();
        w.open_obj();
        w.str_field("jobd", JOBD_SCHEMA);
        match self {
            JobEvent::Submitted { job, spec } => {
                w.u64_field("job", *job);
                w.str_field("event", "submit");
                w.key("spec");
                spec.write(&mut w);
            }
            JobEvent::Transition {
                job,
                to,
                detail,
                mismatches,
                degraded,
            } => {
                w.u64_field("job", *job);
                w.str_field("event", "state");
                w.str_field("to", to.as_str());
                if let Some(d) = detail {
                    w.str_field("detail", d);
                }
                w.u64_field("mismatches", *mismatches);
                w.u64_field("degraded", *degraded);
            }
        }
        w.close_obj();
        let mut payload = w.finish();
        payload.pop();
        let mut line = checksum_frame(&payload);
        line.push('\n');
        line
    }

    /// Parses the unframed JSON payload of a journal line.
    #[must_use]
    pub fn from_payload(v: &Json) -> Option<JobEvent> {
        if v.get("jobd")?.as_str()? != JOBD_SCHEMA {
            return None;
        }
        let job = v.get("job")?.as_u64()?;
        match v.get("event")?.as_str()? {
            "submit" => Some(JobEvent::Submitted {
                job,
                spec: MatrixSpec::from_json(v.get("spec")?)?,
            }),
            "state" => Some(JobEvent::Transition {
                job,
                to: JobStatus::from_label(v.get("to")?.as_str()?)?,
                detail: v.get("detail").and_then(Json::as_str).map(str::to_owned),
                mismatches: v.get("mismatches")?.as_u64()?,
                degraded: v.get("degraded")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

/// Append handle for the durable job journal: one framed line per
/// event, flushed and fsynced before a transition becomes visible.
#[derive(Debug)]
struct JobLog {
    file: File,
}

impl JobLog {
    fn append(&mut self, ev: &JobEvent) -> io::Result<()> {
        self.file.write_all(ev.to_line().as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()
    }
}

/// Loads the job journal (bounded reads, checksum verification, skip +
/// count on any damage) and reopens it for appending, repairing a torn
/// tail exactly like [`Journal::resume`].
fn load_job_log(path: &Path) -> io::Result<(JobLog, Vec<JobEvent>, usize)> {
    let mut events = Vec::new();
    let mut skipped = 0usize;
    let mut torn_tail = false;
    match File::open(path) {
        Ok(f) => {
            let mut reader = BufReader::new(f);
            let mut buf = Vec::new();
            loop {
                match read_bounded_line(&mut reader, &mut buf, MAX_RECORD_LEN)? {
                    BoundedLine::Eof => break,
                    BoundedLine::Oversized { .. } => {
                        skipped += 1;
                        continue;
                    }
                    BoundedLine::Line => {}
                }
                let Ok(line) = std::str::from_utf8(&buf) else {
                    skipped += 1;
                    continue;
                };
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let parsed = checksum_unframe(line)
                    .ok()
                    .and_then(parse_json)
                    .as_ref()
                    .and_then(JobEvent::from_payload);
                match parsed {
                    Some(ev) => events.push(ev),
                    None => skipped += 1,
                }
            }
            torn_tail = file_lacks_final_newline(path)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    if torn_tail {
        file.write_all(b"\n")?;
        file.flush()?;
    }
    Ok((JobLog { file }, events, skipped))
}

// ---------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------

/// Why a submitted job was cancelled mid-run. Runtime control only —
/// never journaled; the classification reduces to a terminal
/// [`JobStatus`] (or a durable requeue) when the executor observes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CancelReason {
    Client,
    Deadline,
    Shutdown,
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// State directory: job journal, per-job run journals, reports.
    pub root: PathBuf,
    /// Unix-domain socket path to serve on.
    pub socket: PathBuf,
    /// Admission bound: the most jobs that may sit `queued` at once.
    /// Submissions past the bound are rejected with `queue_full` and a
    /// `retry_after_ms` hint — the queue never grows without limit.
    pub capacity: usize,
    /// The backpressure hint returned with `queue_full` rejections.
    pub retry_after_ms: u64,
    /// Internal poll cadence (accept loop, deadline checks, watch
    /// streams). Liveness only; never observable in journaled bytes.
    pub poll: Duration,
}

impl DaemonConfig {
    /// A config with the default capacity (16), retry hint (500 ms)
    /// and poll cadence (25 ms).
    pub fn new(root: impl Into<PathBuf>, socket: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            socket: socket.into(),
            capacity: 16,
            retry_after_ms: 500,
            poll: Duration::from_millis(25),
        }
    }
}

/// One job's bookkeeping. `cancel`, `cancel_reason` and `deadline` are
/// runtime control; `replayed`/`executed` are diagnostics — none of
/// them are journaled.
#[derive(Debug)]
struct JobEntry {
    spec: MatrixSpec,
    status: JobStatus,
    detail: Option<String>,
    mismatches: u64,
    degraded: u64,
    replayed: u64,
    executed: u64,
    cancel: CancelToken,
    cancel_reason: Option<CancelReason>,
    deadline: Option<Instant>,
}

/// A point-in-time copy of one job's observable state.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSnapshot {
    /// The job id (sequential from 1).
    pub id: u64,
    /// Current status.
    pub status: JobStatus,
    /// Deterministic detail, when the status carries one.
    pub detail: Option<String>,
    /// Mismatched cells (settled jobs).
    pub mismatches: u64,
    /// Degraded (non-ok, non-mismatch) cells (settled jobs).
    pub degraded: u64,
    /// Cells replayed from the job's run journal (diagnostics).
    pub replayed: u64,
    /// Cells executed fresh (diagnostics).
    pub executed: u64,
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// Admission is closed (drain or shutdown in progress).
    Draining,
    /// The bounded admission queue is full; retry after the hint.
    QueueFull {
        /// Jobs currently queued.
        queued: usize,
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// The spec does not resolve to a runnable matrix.
    BadSpec(String),
}

/// Why a cancel was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelError {
    /// No such job id.
    Unknown,
    /// The job is already terminal (the state is attached).
    AlreadyTerminal(JobStatus),
}

struct State {
    log: JobLog,
    jobs: Vec<JobEntry>,
    log_skipped: usize,
    /// Admission closed (drain or shutdown).
    draining: bool,
    /// Executor must stop after requeueing the in-flight job.
    stopping: bool,
}

struct Shared {
    cfg: DaemonConfig,
    resolver: MatrixResolver,
    state: Mutex<State>,
    executor_done: AtomicBool,
    threads_done: AtomicBool,
}

/// The job service. See the module docs for the protocol and the
/// durability contract. All state-mutating paths funnel through one
/// validated transition function under one lock, so concurrent clients
/// (or a client racing the executor) can never produce an illegal
/// state-machine edge.
pub struct Daemon {
    shared: Arc<Shared>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A poisoned lock means a panic mid-transition; the in-memory
        // state is still consistent (transitions apply atomically under
        // the guard), so recover the guard rather than wedging every
        // client thread.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn runs_path(&self, id: u64) -> PathBuf {
        self.cfg.root.join(format!("job-{id:04}.runs.jsonl"))
    }

    fn report_path(&self, id: u64) -> PathBuf {
        self.cfg.root.join(format!("job-{id:04}.report.json"))
    }
}

/// Applies (and journals) one state-machine edge. Returns `false` —
/// changing nothing — when the edge is illegal or the job unknown.
fn transition(
    st: &mut State,
    id: u64,
    to: JobStatus,
    detail: Option<String>,
    mismatches: u64,
    degraded: u64,
) -> bool {
    let Some(entry) = job_index(id).and_then(|i| st.jobs.get_mut(i)) else {
        return false;
    };
    if !JobStatus::can_transition(entry.status, to) {
        return false;
    }
    let ev = JobEvent::Transition {
        job: id,
        to,
        detail: detail.clone(),
        mismatches,
        degraded,
    };
    // Durability before visibility: the journal line lands (fsynced)
    // before the in-memory state changes. If the append fails we still
    // apply the edge — a daemon that cannot write its journal keeps
    // serving, it just recovers less after the next crash.
    if let Err(e) = st.log.append(&ev) {
        eprintln!("job journal append failed: {e}");
    }
    entry.status = to;
    entry.detail = detail;
    entry.mismatches = mismatches;
    entry.degraded = degraded;
    true
}

fn job_index(id: u64) -> Option<usize> {
    (id >= 1).then(|| (id - 1) as usize)
}

fn snapshot_entry(id: u64, e: &JobEntry) -> JobSnapshot {
    JobSnapshot {
        id,
        status: e.status,
        detail: e.detail.clone(),
        mismatches: e.mismatches,
        degraded: e.degraded,
        replayed: e.replayed,
        executed: e.executed,
    }
}

impl Daemon {
    /// Opens (or recovers) the daemon state under `cfg.root`: replays
    /// the job journal, rebuilds the job table, and durably requeues
    /// every job the previous process left `running`. Does not bind the
    /// socket — call [`Daemon::serve`] for that.
    ///
    /// # Errors
    ///
    /// Propagates state-directory and journal I/O errors.
    pub fn open(cfg: DaemonConfig, resolver: MatrixResolver) -> io::Result<Daemon> {
        fs::create_dir_all(&cfg.root)?;
        let (log, events, log_skipped) = load_job_log(&cfg.root.join("jobs.jsonl"))?;
        let mut st = State {
            log,
            jobs: Vec::new(),
            log_skipped,
            draining: false,
            stopping: false,
        };
        for ev in events {
            match ev {
                JobEvent::Submitted { job, spec } => {
                    // Ids are assigned sequentially; a gap or repeat is
                    // journal damage — skip and count, like a bad line.
                    if job == st.jobs.len() as u64 + 1 {
                        st.jobs.push(JobEntry {
                            spec,
                            status: JobStatus::Queued,
                            detail: None,
                            mismatches: 0,
                            degraded: 0,
                            replayed: 0,
                            executed: 0,
                            cancel: CancelToken::new(),
                            cancel_reason: None,
                            deadline: None,
                        });
                    } else {
                        st.log_skipped += 1;
                    }
                }
                JobEvent::Transition {
                    job,
                    to,
                    detail,
                    mismatches,
                    degraded,
                } => {
                    let applied = job_index(job)
                        .and_then(|i| st.jobs.get_mut(i))
                        .filter(|e| JobStatus::can_transition(e.status, to))
                        .map(|e| {
                            e.status = to;
                            e.detail = detail;
                            e.mismatches = mismatches;
                            e.degraded = degraded;
                        });
                    if applied.is_none() {
                        st.log_skipped += 1;
                    }
                }
            }
        }
        // Jobs the dead process left mid-run resume from their own run
        // journals; the requeue edge is journaled like any other.
        let running: Vec<u64> = st
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, e)| e.status == JobStatus::Running)
            .map(|(i, _)| i as u64 + 1)
            .collect();
        for id in running {
            transition(
                &mut st,
                id,
                JobStatus::Queued,
                Some("recovered after restart".to_owned()),
                0,
                0,
            );
        }
        Ok(Daemon {
            shared: Arc::new(Shared {
                cfg,
                resolver,
                state: Mutex::new(st),
                executor_done: AtomicBool::new(false),
                threads_done: AtomicBool::new(false),
            }),
        })
    }

    /// Admits one job (resolving the spec first so a bad spec never
    /// occupies a queue slot), or rejects it with the structured
    /// backpressure contract.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] on a closed queue, a full queue, or a spec that
    /// does not resolve.
    pub fn submit(&self, spec: MatrixSpec) -> Result<u64, SubmitError> {
        if let Err(e) = (self.shared.resolver)(&spec) {
            return Err(SubmitError::BadSpec(e));
        }
        let mut st = self.shared.lock();
        if st.draining {
            return Err(SubmitError::Draining);
        }
        let queued = st
            .jobs
            .iter()
            .filter(|e| e.status == JobStatus::Queued)
            .count();
        if queued >= self.shared.cfg.capacity {
            return Err(SubmitError::QueueFull {
                queued,
                retry_after_ms: self.shared.cfg.retry_after_ms,
            });
        }
        let id = st.jobs.len() as u64 + 1;
        let ev = JobEvent::Submitted {
            job: id,
            spec: spec.clone(),
        };
        if let Err(e) = st.log.append(&ev) {
            eprintln!("job journal append failed: {e}");
        }
        st.jobs.push(JobEntry {
            spec,
            status: JobStatus::Queued,
            detail: None,
            mismatches: 0,
            degraded: 0,
            replayed: 0,
            executed: 0,
            cancel: CancelToken::new(),
            cancel_reason: None,
            deadline: None,
        });
        Ok(id)
    }

    /// A point-in-time view of one job.
    #[must_use]
    pub fn snapshot(&self, id: u64) -> Option<JobSnapshot> {
        let st = self.shared.lock();
        job_index(id)
            .and_then(|i| st.jobs.get(i))
            .map(|e| snapshot_entry(id, e))
    }

    /// Snapshots of every job, in submission order.
    #[must_use]
    pub fn list(&self) -> Vec<JobSnapshot> {
        let st = self.shared.lock();
        st.jobs
            .iter()
            .enumerate()
            .map(|(i, e)| snapshot_entry(i as u64 + 1, e))
            .collect()
    }

    /// Jobs currently waiting in the admission queue.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared
            .lock()
            .jobs
            .iter()
            .filter(|e| e.status == JobStatus::Queued)
            .count()
    }

    /// Unreadable or inconsistent job-journal lines skipped at open.
    #[must_use]
    pub fn log_skipped(&self) -> usize {
        self.shared.lock().log_skipped
    }

    /// Cancels a job: queued jobs transition immediately; running jobs
    /// get their token tripped and settle as `cancelled` when the
    /// executor observes it. Returns the status at the time of the
    /// request.
    ///
    /// # Errors
    ///
    /// [`CancelError`] for unknown ids and already-terminal jobs.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, CancelError> {
        let mut st = self.shared.lock();
        let entry = job_index(id)
            .and_then(|i| st.jobs.get_mut(i))
            .ok_or(CancelError::Unknown)?;
        match entry.status {
            JobStatus::Queued => {
                transition(&mut st, id, JobStatus::Cancelled, None, 0, 0);
                Ok(JobStatus::Cancelled)
            }
            JobStatus::Running => {
                if entry.cancel_reason.is_none() {
                    entry.cancel_reason = Some(CancelReason::Client);
                }
                entry.cancel.cancel();
                Ok(JobStatus::Running)
            }
            terminal => Err(CancelError::AlreadyTerminal(terminal)),
        }
    }

    /// Closes admission and lets every admitted job finish; the serve
    /// loop exits 0 once the queue is empty and nothing is running.
    pub fn drain(&self) {
        self.shared.lock().draining = true;
    }

    /// Closes admission, cooperatively cancels the in-flight job (it is
    /// requeued durably — a restart resumes it from its run journal)
    /// and stops the serve loop as soon as the executor parks.
    pub fn shutdown(&self) {
        let mut st = self.shared.lock();
        st.draining = true;
        st.stopping = true;
        for e in st
            .jobs
            .iter_mut()
            .filter(|e| e.status == JobStatus::Running)
        {
            if e.cancel_reason.is_none() {
                e.cancel_reason = Some(CancelReason::Shutdown);
            }
            e.cancel.cancel();
        }
    }

    /// Reads a settled job's report from disk.
    ///
    /// # Errors
    ///
    /// Propagates the read error (a missing report means the job has
    /// not settled).
    pub fn report(&self, id: u64) -> io::Result<String> {
        fs::read_to_string(self.shared.report_path(id))
    }

    /// Binds the socket and serves until drained or shut down: spawns
    /// the executor and deadline-watch threads, accepts clients on a
    /// non-blocking listener (one handler thread per connection), and
    /// returns once the executor has parked. A stale socket file from a
    /// killed predecessor is replaced.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors; serving errors on individual
    /// connections are contained to their handler.
    pub fn serve(&self) -> io::Result<()> {
        let _ = fs::remove_file(&self.shared.cfg.socket);
        let listener = UnixListener::bind(&self.shared.cfg.socket)?;
        listener.set_nonblocking(true)?;
        let exec = {
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || executor(&shared))
        };
        let watch = {
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || deadline_watch(&shared))
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    thread::spawn(move || handle_client(&shared, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.shared.executor_done.load(Ordering::SeqCst) {
                        break;
                    }
                    thread::sleep(self.shared.cfg.poll);
                }
                Err(_) => thread::sleep(self.shared.cfg.poll),
            }
        }
        self.shared.threads_done.store(true, Ordering::SeqCst);
        let _ = exec.join();
        let _ = watch.join();
        let _ = fs::remove_file(&self.shared.cfg.socket);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Executor and deadline watch
// ---------------------------------------------------------------------

fn executor(shared: &Arc<Shared>) {
    enum Next {
        Run(u64),
        Sleep,
        Exit,
    }
    loop {
        let next = {
            let st = shared.lock();
            if st.stopping {
                Next::Exit
            } else if let Some(id) = st
                .jobs
                .iter()
                .position(|e| e.status == JobStatus::Queued)
                .map(|i| i as u64 + 1)
            {
                Next::Run(id)
            } else if st.draining {
                // Drained: admission is closed and the queue is empty.
                Next::Exit
            } else {
                Next::Sleep
            }
        };
        match next {
            Next::Exit => break,
            Next::Sleep => thread::sleep(shared.cfg.poll),
            Next::Run(id) => run_job(shared, id),
        }
    }
    shared.executor_done.store(true, Ordering::SeqCst);
}

fn run_job(shared: &Arc<Shared>, id: u64) {
    // Phase 1 (under the lock): claim the job, arm a fresh token and
    // the wall-clock deadline.
    let (spec, token) = {
        let mut st = shared.lock();
        let Some(entry) = job_index(id).and_then(|i| st.jobs.get_mut(i)) else {
            return;
        };
        if entry.status != JobStatus::Queued {
            return; // cancelled between scheduling and claiming
        }
        entry.cancel = CancelToken::new();
        entry.cancel_reason = None;
        entry.deadline = (entry.spec.deadline_secs > 0)
            .then(|| Instant::now() + Duration::from_secs(entry.spec.deadline_secs));
        let spec = entry.spec.clone();
        let token = entry.cancel.clone();
        transition(&mut st, id, JobStatus::Running, None, 0, 0);
        (spec, token)
    };

    let quarantine = |detail: String| {
        let mut st = shared.lock();
        if let Some(e) = job_index(id).and_then(|i| st.jobs.get_mut(i)) {
            e.deadline = None;
        }
        transition(&mut st, id, JobStatus::Quarantined, Some(detail), 0, 0);
    };

    // Phase 2 (no lock): resolve and run. The per-job run journal makes
    // the work itself crash-recoverable; `Journal::resume` replays any
    // cells a previous incarnation completed.
    let (jobs, mut cfg) = match (shared.resolver)(&spec) {
        Ok(r) => r,
        Err(e) => return quarantine(format!("spec failed to resolve: {e}")),
    };
    cfg.sim.cancel = Some(token.clone());
    let journal = match Journal::resume(shared.runs_path(id)) {
        Ok(j) => j,
        Err(e) => return quarantine(format!("run journal unavailable: {e}")),
    };
    let (sweep, stats) = run_sweep_journaled(&jobs, &cfg, Some(&journal));

    // Phase 3: classify. Report bytes land on disk (atomically) before
    // the settle edge is journaled — a crash between the two replays
    // the journal-complete job cheaply and rewrites the identical
    // report.
    let cancelled = token.is_cancelled();
    let mut report = None;
    let (to, detail, mismatches, degraded) = if cancelled {
        let reason = {
            let st = shared.lock();
            job_index(id)
                .and_then(|i| st.jobs.get(i))
                .and_then(|e| e.cancel_reason)
                .unwrap_or(CancelReason::Client)
        };
        match reason {
            CancelReason::Shutdown => (
                JobStatus::Queued,
                Some("requeued by shutdown".to_owned()),
                0,
                0,
            ),
            CancelReason::Deadline => (
                JobStatus::DeadlineExceeded,
                Some(format!(
                    "wall-clock budget of {}s exhausted",
                    spec.deadline_secs
                )),
                0,
                0,
            ),
            CancelReason::Client => (JobStatus::Cancelled, None, 0, 0),
        }
    } else {
        let statuses = sweep.statuses();
        let mismatches = statuses
            .iter()
            .filter(|(_, _, s)| *s == RunStatus::Mismatch)
            .count() as u64;
        let degraded = statuses
            .iter()
            .filter(|(_, _, s)| !matches!(*s, RunStatus::Ok | RunStatus::Mismatch))
            .count() as u64;
        report = Some(sweep.to_json());
        (JobStatus::Settled, None, mismatches, degraded)
    };
    if let Some(json) = &report {
        if let Err(e) = write_atomic(&shared.report_path(id), json) {
            return quarantine(format!("report write failed: {e}"));
        }
    }
    let mut st = shared.lock();
    if let Some(e) = job_index(id).and_then(|i| st.jobs.get_mut(i)) {
        e.deadline = None;
        e.replayed = stats.replayed as u64;
        e.executed = stats.executed as u64;
    }
    transition(&mut st, id, to, detail, mismatches, degraded);
}

fn deadline_watch(shared: &Arc<Shared>) {
    while !shared.threads_done.load(Ordering::SeqCst) {
        thread::sleep(shared.cfg.poll);
        let now = Instant::now();
        let mut st = shared.lock();
        for e in st
            .jobs
            .iter_mut()
            .filter(|e| e.status == JobStatus::Running)
        {
            if e.deadline.is_some_and(|d| now >= d) && !e.cancel.is_cancelled() {
                if e.cancel_reason.is_none() {
                    e.cancel_reason = Some(CancelReason::Deadline);
                }
                e.cancel.cancel();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

struct Response {
    w: JsonWriter,
}

impl Response {
    fn new(ok: bool) -> Response {
        let mut w = JsonWriter::compact();
        w.open_obj();
        w.str_field("jobs", JOBS_SCHEMA);
        w.bool_field("ok", ok);
        Response { w }
    }

    fn err(tag: &str) -> Response {
        let mut r = Response::new(false);
        r.w.str_field("error", tag);
        r
    }

    fn send(mut self, out: &mut UnixStream) -> io::Result<()> {
        self.w.close_obj();
        out.write_all(self.w.finish().as_bytes())?;
        out.flush()
    }
}

fn snapshot_fields(r: &mut Response, snap: &JobSnapshot) {
    r.w.u64_field("job", snap.id);
    r.w.str_field("state", snap.status.as_str());
    if let Some(d) = &snap.detail {
        r.w.str_field("detail", d);
    }
    r.w.u64_field("mismatches", snap.mismatches);
    r.w.u64_field("degraded", snap.degraded);
    r.w.u64_field("replayed", snap.replayed);
    r.w.u64_field("executed", snap.executed);
}

/// Serves one client connection: a loop of bounded request lines. Any
/// damage — a half-written line at EOF, malformed JSON, an unknown
/// command, a vanished peer mid-response — is contained to this
/// connection; job state only ever changes through the validated
/// transition path.
fn handle_client(shared: &Arc<Shared>, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    let mut buf = Vec::new();
    loop {
        match read_bounded_line(&mut reader, &mut buf, MAX_REQUEST_LEN) {
            Ok(BoundedLine::Eof) | Err(_) => return,
            Ok(BoundedLine::Oversized { .. }) => {
                let _ = Response::err("oversized_request").send(&mut out);
                return;
            }
            Ok(BoundedLine::Line) => {}
        }
        let line = match std::str::from_utf8(&buf) {
            Ok(l) => l.trim().to_owned(),
            Err(_) => {
                let _ = Response::err("bad_request").send(&mut out);
                continue;
            }
        };
        if line.is_empty() {
            continue;
        }
        let Some(req) = parse_json(&line) else {
            // Covers torn request lines (client died mid-write): the
            // fragment fails to parse and is answered, not executed.
            let mut r = Response::err("bad_request");
            r.w.str_field("detail", "request is not a JSON object");
            if r.send(&mut out).is_err() {
                return;
            }
            continue;
        };
        if dispatch(shared, &req, &mut out).is_err() {
            return; // peer gone mid-response; nothing to unwind
        }
    }
}

fn dispatch(shared: &Arc<Shared>, req: &Json, out: &mut UnixStream) -> io::Result<()> {
    let daemon = Daemon {
        shared: Arc::clone(shared),
    };
    let Some(cmd) = req.get("cmd").and_then(Json::as_str) else {
        let mut r = Response::err("bad_request");
        r.w.str_field("detail", "missing cmd");
        return r.send(out);
    };
    let job_id = req.get("job").and_then(Json::as_u64);
    match cmd {
        "submit" => {
            let Some(spec) = req.get("spec").and_then(MatrixSpec::from_json) else {
                let mut r = Response::err("bad_request");
                r.w.str_field("detail", "submit requires a spec object");
                return r.send(out);
            };
            match daemon.submit(spec) {
                Ok(id) => {
                    let mut r = Response::new(true);
                    r.w.u64_field("job", id);
                    r.w.str_field("state", JobStatus::Queued.as_str());
                    r.send(out)
                }
                Err(SubmitError::Draining) => Response::err("draining").send(out),
                Err(SubmitError::QueueFull {
                    queued,
                    retry_after_ms,
                }) => {
                    let mut r = Response::err("queue_full");
                    r.w.u64_field("queued", queued as u64);
                    r.w.u64_field("retry_after_ms", retry_after_ms);
                    r.send(out)
                }
                Err(SubmitError::BadSpec(detail)) => {
                    let mut r = Response::err("bad_spec");
                    r.w.str_field("detail", &detail);
                    r.send(out)
                }
            }
        }
        "status" | "watch" | "fetch" | "cancel" => {
            let Some(id) = job_id else {
                let mut r = Response::err("bad_request");
                r.w.str_field("detail", "missing job id");
                return r.send(out);
            };
            match cmd {
                "status" => match daemon.snapshot(id) {
                    Some(snap) => {
                        let mut r = Response::new(true);
                        snapshot_fields(&mut r, &snap);
                        r.send(out)
                    }
                    None => unknown_job(id, out),
                },
                "watch" => {
                    let mut last = None;
                    loop {
                        let Some(snap) = daemon.snapshot(id) else {
                            return unknown_job(id, out);
                        };
                        if last.as_ref() != Some(&snap.status) {
                            last = Some(snap.status);
                            let mut r = Response::new(true);
                            snapshot_fields(&mut r, &snap);
                            r.send(out)?;
                        }
                        if snap.status.is_terminal() {
                            return Ok(());
                        }
                        thread::sleep(shared.cfg.poll);
                    }
                }
                "fetch" => {
                    let Some(snap) = daemon.snapshot(id) else {
                        return unknown_job(id, out);
                    };
                    if snap.status != JobStatus::Settled {
                        let mut r = Response::err("not_settled");
                        r.w.u64_field("job", id);
                        r.w.str_field("state", snap.status.as_str());
                        return r.send(out);
                    }
                    match daemon.report(id) {
                        Ok(report) => {
                            let mut r = Response::new(true);
                            snapshot_fields(&mut r, &snap);
                            r.w.str_field("report", &report);
                            r.send(out)
                        }
                        Err(e) => {
                            let mut r = Response::err("report_unavailable");
                            r.w.str_field("detail", &e.to_string());
                            r.send(out)
                        }
                    }
                }
                _ => match daemon.cancel(id) {
                    Ok(state) => {
                        let mut r = Response::new(true);
                        r.w.u64_field("job", id);
                        r.w.str_field("state", state.as_str());
                        r.w.bool_field("cancelling", state == JobStatus::Running);
                        r.send(out)
                    }
                    Err(CancelError::Unknown) => unknown_job(id, out),
                    Err(CancelError::AlreadyTerminal(state)) => {
                        let mut r = Response::err("already_terminal");
                        r.w.u64_field("job", id);
                        r.w.str_field("state", state.as_str());
                        r.send(out)
                    }
                },
            }
        }
        "list" => {
            let snaps = daemon.list();
            let queued = snaps
                .iter()
                .filter(|s| s.status == JobStatus::Queued)
                .count();
            let running = snaps
                .iter()
                .filter(|s| s.status == JobStatus::Running)
                .count();
            let mut r = Response::new(true);
            r.w.u64_field("queued", queued as u64);
            r.w.u64_field("running", running as u64);
            r.w.u64_field("log_skipped", daemon.log_skipped() as u64);
            r.w.key("entries");
            r.w.open_arr();
            for snap in &snaps {
                r.w.open_obj();
                r.w.u64_field("job", snap.id);
                r.w.str_field("state", snap.status.as_str());
                r.w.close_obj();
            }
            r.w.close_arr();
            r.send(out)
        }
        "ping" => {
            let mut r = Response::new(true);
            r.w.bool_field("pong", true);
            r.w.u64_field("queued", daemon.queued() as u64);
            r.w.bool_field("draining", shared.lock().draining);
            r.send(out)
        }
        "drain" => {
            daemon.drain();
            let mut r = Response::new(true);
            r.w.bool_field("draining", true);
            r.w.u64_field("queued", daemon.queued() as u64);
            r.send(out)
        }
        "shutdown" => {
            daemon.shutdown();
            let mut r = Response::new(true);
            r.w.bool_field("stopping", true);
            r.send(out)
        }
        other => {
            let mut r = Response::err("bad_request");
            r.w.str_field("detail", &format!("unknown cmd {other:?}"));
            r.send(out)
        }
    }
}

fn unknown_job(id: u64, out: &mut UnixStream) -> io::Result<()> {
    let mut r = Response::err("unknown_job");
    r.w.u64_field("job", id);
    r.send(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::store_load_region;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nachos-daemon-unit").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn tiny_resolver() -> MatrixResolver {
        Arc::new(|spec: &MatrixSpec| {
            if spec.filter.as_deref() == Some("no-such-workload") {
                return Err("filter matches no workload".to_owned());
            }
            let (region, binding) = store_load_region("unit");
            let jobs = vec![SweepJob::new("unit", region, binding)];
            let cfg = SweepConfig::default()
                .with_invocations(spec.invocations)
                .with_threads(1)
                .with_retries(spec.max_retries);
            Ok((jobs, cfg))
        })
    }

    fn full_spec() -> MatrixSpec {
        MatrixSpec {
            invocations: 7,
            threads: 2,
            ideal: true,
            optimize: true,
            max_retries: 3,
            filter: Some("mc".to_owned()),
            variants: Some(vec!["opt-lsq".to_owned(), "nachos".to_owned()]),
            poison: Some("gzip".to_owned()),
            deadline_secs: 30,
            watchdog: Some((5_000, 700)),
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        for spec in [MatrixSpec::default(), full_spec()] {
            let json = spec.to_json();
            let back = MatrixSpec::from_json(&parse_json(&json).expect("parses")).expect("spec");
            assert_eq!(back, spec);
            assert_eq!(back.to_json(), json, "stable bytes");
        }
        assert!(MatrixSpec::from_json(&Json::Null).is_none());
        assert!(MatrixSpec::from_json(&parse_json("{\"invocations\": \"x\"}").unwrap()).is_none());
    }

    #[test]
    fn status_labels_roundtrip_and_edges_are_exact() {
        use JobStatus::*;
        let all = [
            Queued,
            Running,
            Settled,
            Cancelled,
            Quarantined,
            DeadlineExceeded,
        ];
        for s in all {
            assert_eq!(JobStatus::from_label(s.as_str()), Some(s));
            assert_eq!(s.is_terminal(), !matches!(s, Queued | Running));
        }
        assert_eq!(JobStatus::from_label("nope"), None);
        // The legal edge set, exhaustively: exactly these seven.
        let legal = [
            (Queued, Running),
            (Queued, Cancelled),
            (Running, Settled),
            (Running, Cancelled),
            (Running, Quarantined),
            (Running, DeadlineExceeded),
            (Running, Queued),
        ];
        for from in all {
            for to in all {
                assert_eq!(
                    JobStatus::can_transition(from, to),
                    legal.contains(&(from, to)),
                    "edge {from} -> {to}"
                );
            }
        }
    }

    #[test]
    fn job_events_roundtrip_and_survive_log_damage() {
        let dir = scratch("joblog");
        let path = dir.join("jobs.jsonl");
        let events = vec![
            JobEvent::Submitted {
                job: 1,
                spec: full_spec(),
            },
            JobEvent::Transition {
                job: 1,
                to: JobStatus::Running,
                detail: None,
                mismatches: 0,
                degraded: 0,
            },
            JobEvent::Transition {
                job: 1,
                to: JobStatus::Settled,
                detail: Some("line\nbreak".to_owned()),
                mismatches: 2,
                degraded: 1,
            },
        ];
        {
            let (mut log, loaded, skipped) = load_job_log(&path).unwrap();
            assert!(loaded.is_empty());
            assert_eq!(skipped, 0);
            for ev in &events {
                log.append(ev).unwrap();
            }
        }
        // Damage: a foreign line, then a torn tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"garbage line\n").unwrap();
            f.write_all(b"ffffffffffffffff {\"jobd\": \"nachos-jobd")
                .unwrap();
        }
        let (mut log, loaded, skipped) = load_job_log(&path).unwrap();
        assert_eq!(loaded, events);
        assert_eq!(skipped, 2, "foreign line and torn tail both counted");
        // The torn tail was newline-repaired: a post-crash append parses.
        log.append(&events[0]).unwrap();
        drop(log);
        let (_, loaded, _) = load_job_log(&path).unwrap();
        assert_eq!(loaded.len(), events.len() + 1);
    }

    #[test]
    fn admission_is_bounded_and_rejections_are_structured() {
        let dir = scratch("admission");
        let mut cfg = DaemonConfig::new(dir.join("state"), dir.join("d.sock"));
        cfg.capacity = 2;
        cfg.retry_after_ms = 123;
        let daemon = Daemon::open(cfg, tiny_resolver()).unwrap();
        assert_eq!(daemon.submit(MatrixSpec::default()), Ok(1));
        assert_eq!(daemon.submit(MatrixSpec::default()), Ok(2));
        // No executor is running, so both jobs stay queued: the third
        // submission must be refused with the backpressure contract.
        assert_eq!(
            daemon.submit(MatrixSpec::default()),
            Err(SubmitError::QueueFull {
                queued: 2,
                retry_after_ms: 123
            })
        );
        // A bad spec is refused without occupying a slot.
        let bad = MatrixSpec {
            filter: Some("no-such-workload".to_owned()),
            ..MatrixSpec::default()
        };
        assert!(matches!(daemon.submit(bad), Err(SubmitError::BadSpec(_))));
        // Draining closes admission entirely.
        daemon.drain();
        assert_eq!(
            daemon.submit(MatrixSpec::default()),
            Err(SubmitError::Draining)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn queued_jobs_cancel_and_recover_across_restart() {
        let dir = scratch("recover");
        let cfg = DaemonConfig::new(dir.join("state"), dir.join("d.sock"));
        {
            let daemon = Daemon::open(cfg.clone(), tiny_resolver()).unwrap();
            assert_eq!(daemon.submit(MatrixSpec::default()), Ok(1));
            assert_eq!(daemon.submit(full_spec()), Ok(2));
            assert_eq!(daemon.cancel(1), Ok(JobStatus::Cancelled));
            assert_eq!(
                daemon.cancel(1),
                Err(CancelError::AlreadyTerminal(JobStatus::Cancelled)),
                "terminal jobs are absorbing"
            );
            assert_eq!(daemon.cancel(99), Err(CancelError::Unknown));
        }
        // A new process over the same root replays the journal.
        let daemon = Daemon::open(cfg, tiny_resolver()).unwrap();
        assert_eq!(daemon.log_skipped(), 0);
        let snaps = daemon.list();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].status, JobStatus::Cancelled);
        assert_eq!(snaps[1].status, JobStatus::Queued);
        assert_eq!(snaps[1].id, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    /// End-to-end over a real socket: serve, submit, watch to settled,
    /// fetch, drain — the in-process client half of the protocol.
    #[test]
    fn serve_runs_a_job_to_settled_and_drains() {
        use std::io::BufRead as _;
        let dir = scratch("serve");
        let sock = dir.join("d.sock");
        let cfg = DaemonConfig::new(dir.join("state"), &sock);
        let daemon = Arc::new(Daemon::open(cfg, tiny_resolver()).unwrap());
        let server = {
            let daemon = Arc::clone(&daemon);
            thread::spawn(move || daemon.serve())
        };
        // Wait for the socket to appear.
        let deadline = Instant::now() + Duration::from_secs(10);
        let stream = loop {
            match UnixStream::connect(&sock) {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline => thread::sleep(Duration::from_millis(10)),
                Err(e) => panic!("daemon socket never appeared: {e}"),
            }
        };
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut out = stream;
        fn request(line: &str, out: &mut UnixStream, reader: &mut BufReader<UnixStream>) -> Json {
            use std::io::BufRead as _;
            out.write_all(line.as_bytes()).unwrap();
            out.write_all(b"\n").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            parse_json(resp.trim()).expect("response parses")
        }
        let spec = MatrixSpec {
            invocations: 2,
            ..MatrixSpec::default()
        };
        let resp = request(
            &format!(
                "{{\"jobs\": \"nachos-jobs-v1\", \"cmd\": \"submit\", \"spec\": {}}}",
                spec.to_json()
            ),
            &mut out,
            &mut reader,
        );
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        assert_eq!(resp.get("job").and_then(Json::as_u64), Some(1));
        // Watch streams until terminal; the last line must be settled.
        out.write_all(b"{\"cmd\": \"watch\", \"job\": 1}\n")
            .unwrap();
        let last_state = loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let v = parse_json(line.trim()).expect("watch line parses");
            let state = v.get("state").unwrap().as_str().unwrap().to_owned();
            if JobStatus::from_label(&state).unwrap().is_terminal() {
                break state;
            }
        };
        assert_eq!(last_state, "settled");
        let resp = request("{\"cmd\": \"fetch\", \"job\": 1}", &mut out, &mut reader);
        let report = resp.get("report").unwrap().as_str().unwrap();
        assert!(report.contains("nachos-sweep-v4"));
        // Malformed and unknown requests are answered, not fatal.
        let resp = request("{\"cmd\": \"status\", \"job\": 42}", &mut out, &mut reader);
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("unknown_job")
        );
        let resp = request("not json", &mut out, &mut reader);
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("bad_request")
        );
        // Drain: admission closes, the serve loop exits cleanly.
        let resp = request("{\"cmd\": \"drain\"}", &mut out, &mut reader);
        assert_eq!(resp.get("draining"), Some(&Json::Bool(true)));
        server.join().unwrap().unwrap();
        assert!(!sock.exists(), "the socket file is removed on exit");
        let _ = fs::remove_dir_all(&dir);
    }
}
