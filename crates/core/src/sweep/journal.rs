//! The durable run journal behind crash-recoverable sweeps.
//!
//! A long evaluation campaign (27 workloads × 5 variants, or a generated
//! matrix orders of magnitude larger) must survive a panic, an OOM-kill
//! or a plain SIGKILL without discarding hours of completed work. The
//! journal makes the sweep resumable *to the byte*:
//!
//! * every completed `(job, variant)` cell is appended to a JSONL file as
//!   one self-contained [`RunRecord`] — written with a single `write`,
//!   flushed and fsynced before the supervisor moves on, so a crash can
//!   lose at most the in-flight line (and a torn line is skipped on
//!   replay, never misparsed);
//! * every line is wrapped in a `<16-hex FNV-1a> <payload>` checksum
//!   frame ([`crate::json::checksum_frame`]), so corruption *anywhere*
//!   in the file — flipped bytes in an old record, a partial overwrite,
//!   mid-file truncation — is detected on replay, counted
//!   ([`Journal::corrupt`]), and dropped; the affected cells re-execute
//!   and every other record (before and after) is kept;
//! * records are keyed by a **content hash** of (region, binding,
//!   variant, fault plan, simulator config) — not by position or name —
//!   so resuming with a reordered, filtered or extended job list replays
//!   exactly the cells whose inputs are unchanged and re-runs the rest;
//! * on restart, [`Journal::resume`] loads the replay map and
//!   `run_sweep` skips completed keys; the final `nachos-sweep-v4`
//!   report is byte-identical to an uninterrupted run because the record
//!   carries every reported field (status, retry attempts, metrics)
//!   round-tripped losslessly — including `f64` energy values, which use
//!   Rust's shortest-roundtrip formatting both ways.
//!
//! The journal has no serialization dependency: lines are written by the
//! compact [`JsonWriter`] and read back by the ~100-line recursive
//! descent parser at the bottom of this module. Numbers are kept as raw
//! text during parsing so `u64` seeds survive without an `f64` detour.

use super::{RunStatus, SweepVariant};
use crate::config::SimConfig;
use crate::energy::{EnergyBreakdown, EventCounts};
use crate::engine::{SimResult, StallCounts};
use crate::json::{checksum_frame, checksum_unframe, FrameError, JsonWriter};
use crate::json::{FNV_OFFSET, FNV_PRIME};
use nachos_mem::CacheStats;

pub use crate::json::fnv1a;
use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal line schema tag; bump when the record layout changes so stale
/// journals are skipped (and re-run) instead of misread.
pub const JOURNAL_SCHEMA: &str = "nachos-journal-v2";

// ---------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------

/// A `fmt::Write` sink that FNV-hashes everything written into it, so
/// large structures can be fingerprinted through their `Debug` form
/// without materializing the string.
struct FnvWrite(u64);

impl fmt::Write for FnvWrite {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }
}

/// SplitMix64 — the standard finalizer used to derive per-attempt seeds
/// from a run key. Bijective, so distinct (key, attempt) pairs map to
/// distinct seeds.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The content hash identifying one `(job, variant)` cell. Displayed and
/// stored as 16 lowercase hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunKey(pub u64);

impl fmt::Display for RunKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl RunKey {
    /// Parses the 16-hex-digit journal form.
    #[must_use]
    pub fn parse(s: &str) -> Option<RunKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RunKey)
    }
}

/// Fingerprints everything a job shares across its variant cells: the
/// region, the binding and the *effective* simulator configuration (the
/// sweep-wide config with the job's fault plan already merged in).
///
/// The [`crate::CancelToken`] is runtime control, not configuration, and
/// is deliberately excluded; the job *name* is excluded too — keys are
/// content hashes, so renaming a workload keeps its journal entries
/// valid while any change to its region, binding, faults or config
/// invalidates them.
#[must_use]
pub fn job_fingerprint(
    region: &nachos_ir::Region,
    binding: &nachos_ir::Binding,
    sim: &SimConfig,
) -> u64 {
    let mut h = FnvWrite(FNV_OFFSET);
    let _ = write!(h, "{region:?}|{binding:?}|");
    let _ = write!(
        h,
        "{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}|{:?}",
        sim.grid,
        sim.latency,
        sim.hierarchy,
        sim.lsq,
        sim.mem_ports,
        sim.comparators_per_site,
        sim.invocations,
        sim.watchdog,
        sim.fault,
    );
    // The optimizer changes the compiled MDE graph, so it is content.
    let _ = write!(h, "|opt={}", sim.optimize);
    h.0
}

/// Extends a job fingerprint with one variant column (label, backend and
/// compiler staging) into the cell's [`RunKey`].
#[must_use]
pub fn run_key(job_fingerprint: u64, variant: &SweepVariant) -> RunKey {
    let mut h = FnvWrite(job_fingerprint);
    let _ = write!(
        h,
        "|{}|{:?}|{:?}",
        variant.label, variant.backend, variant.stages
    );
    RunKey(h.0)
}

/// Derives the deterministic seed for retry attempt `attempt` (0-based)
/// of the run identified by `key`. No wall-clock, no global state: the
/// same key and attempt index always yield the same seed, on any thread
/// count, which keeps retried reports byte-deterministic.
#[must_use]
pub fn derive_seed(key: RunKey, attempt: u32) -> u64 {
    splitmix64(key.0 ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One supervised attempt of a run: the status it ended with and the
/// deterministic seed it ran under (see [`derive_seed`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// The attempt's verdict.
    pub status: RunStatus,
    /// The attempt's derived seed.
    pub seed: u64,
}

/// Per-run counters of the certificate-carrying MDE optimizer
/// (`nachos-opt`), mirroring [`nachos_alias::OptStats`] in the fixed-width
/// form the report emits. Present only when the run compiled with
/// [`SimConfig::optimize`] on an MDE backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptMetrics {
    /// ORDER/token edges planned before optimization.
    pub order_before: u64,
    /// MAY edges planned before optimization.
    pub may_before: u64,
    /// ORDER edges deleted by transitive reduction.
    pub order_removed: u64,
    /// MAY edges deleted by comparator-site coalescing.
    pub may_coalesced: u64,
    /// Residual MAY pairs upgraded to NO by stage 5.
    pub may_upgraded: u64,
    /// MAY edges deleted because their pair was upgraded.
    pub may_upgraded_edges: u64,
}

impl OptMetrics {
    /// Total ordering-mechanism edges deleted.
    #[must_use]
    pub fn edges_removed(&self) -> u64 {
        self.order_removed + self.may_coalesced + self.may_upgraded_edges
    }

    fn from_stats(s: &nachos_alias::OptStats) -> Self {
        Self {
            order_before: s.order_before as u64,
            may_before: s.may_before as u64,
            order_removed: s.order_removed as u64,
            may_coalesced: s.may_coalesced as u64,
            may_upgraded: s.may_upgraded as u64,
            may_upgraded_edges: s.may_upgraded_edges as u64,
        }
    }
}

/// The reportable metrics of a completed run — exactly the scalar fields
/// `nachos-sweep-v4` emits per run, so a journaled cell reproduces its
/// report bytes without re-simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunMetrics {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycle-weighted stall attribution.
    pub stalls: StallCounts,
    /// Raw event counts.
    pub events: EventCounts,
    /// Energy by component (femtojoules).
    pub energy: EnergyBreakdown,
    /// L1 statistics.
    pub l1: CacheStats,
    /// LLC statistics.
    pub llc: CacheStats,
    /// Distinct `==?` comparator sites in the simulated DFG.
    pub comparator_sites: u64,
    /// Optimizer counters (`None` when `nachos-opt` did not run).
    pub opt: Option<OptMetrics>,
}

impl RunMetrics {
    /// Extracts the reportable metrics from a live simulation result.
    #[must_use]
    pub fn from_sim(sim: &SimResult) -> Self {
        Self {
            cycles: sim.cycles,
            stalls: sim.stalls,
            events: sim.events,
            energy: sim.energy,
            l1: sim.l1,
            llc: sim.llc,
            comparator_sites: sim.comparator_sites,
            opt: None,
        }
    }

    /// Extracts the reportable metrics from a completed experiment,
    /// including the optimizer ledger when the compile carried one.
    #[must_use]
    pub fn from_run(run: &crate::driver::ExperimentRun) -> Self {
        let mut m = Self::from_sim(&run.sim);
        m.opt = run
            .analysis
            .as_ref()
            .and_then(|a| a.opt.as_ref())
            .map(|o| OptMetrics::from_stats(&o.stats));
        m
    }
}

/// Everything the report needs about one completed cell; the journaled
/// form of a [`super::VariantOutcome`].
#[derive(Clone, Debug, PartialEq)]
pub struct OutcomeRecord {
    /// Final harness verdict.
    pub status: RunStatus,
    /// Deterministic failure detail (absent for clean runs).
    pub detail: Option<String>,
    /// Injected faults that fired, in firing order.
    pub injected: Vec<String>,
    /// Every supervised attempt, in attempt order (length ≥ 1).
    pub attempts: Vec<Attempt>,
    /// Reportable metrics (absent when the run never completed).
    pub metrics: Option<RunMetrics>,
}

/// One journal line: a completed cell with its content key plus the
/// human-readable job/variant labels (diagnostics only — replay matches
/// on the key, never on the labels).
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Content hash of the cell's inputs.
    pub key: RunKey,
    /// Job name at record time.
    pub job: String,
    /// Variant label at record time.
    pub variant: String,
    /// The recorded outcome.
    pub outcome: OutcomeRecord,
}

/// Why a journal line failed to parse as a [`RunRecord`] — the split
/// drives the journal's corruption accounting: [`LineError::Corrupt`]
/// lines carried a checksum frame that no longer matches their bytes
/// (flipped bits, partial overwrite), while [`LineError::Unusable`]
/// covers everything else (torn tails, foreign schemas, heartbeat
/// records, hand-edited junk). Both are dropped — and their cells
/// re-executed — rather than trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineError {
    /// Framed line whose checksum disagrees with its payload.
    Corrupt,
    /// Anything else unusable: unframed, unparsable, or a different
    /// record schema.
    Unusable,
}

impl RunRecord {
    /// Serializes the record to its single-line JSONL form: a compact
    /// JSON payload wrapped in the `<16-hex FNV-1a> <payload>` checksum
    /// frame ([`crate::json::checksum_frame`]), newline terminated.
    /// The checksum makes corruption anywhere in the record — not just
    /// a torn tail — detectable on replay.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut framed = checksum_frame(self.payload().trim_end_matches('\n'));
        framed.push('\n');
        framed
    }

    /// The record's compact JSON payload (the framed part of
    /// [`Self::to_line`]), newline terminated.
    fn payload(&self) -> String {
        let mut w = JsonWriter::compact();
        w.open_obj();
        w.str_field("journal", JOURNAL_SCHEMA);
        w.str_field("key", &self.key.to_string());
        w.str_field("job", &self.job);
        w.str_field("variant", &self.variant);
        w.str_field("status", self.outcome.status.as_str());
        w.key("attempts");
        w.open_arr();
        for a in &self.outcome.attempts {
            w.open_obj();
            w.str_field("status", a.status.as_str());
            w.u64_field("seed", a.seed);
            w.close_obj();
        }
        w.close_arr();
        if let Some(detail) = &self.outcome.detail {
            w.str_field("detail", detail);
        }
        if !self.outcome.injected.is_empty() {
            w.key("injected");
            w.open_arr();
            for s in &self.outcome.injected {
                w.str_item(s);
            }
            w.close_arr();
        }
        if let Some(m) = &self.outcome.metrics {
            w.key("metrics");
            w.open_obj();
            w.u64_field("cycles", m.cycles);
            w.key("stalls");
            w.open_obj();
            w.u64_field("lsq_alloc", m.stalls.lsq_alloc);
            w.u64_field("lsq_search", m.stalls.lsq_search);
            w.u64_field("token", m.stalls.token);
            w.u64_field("may_gate", m.stalls.may_gate);
            w.u64_field("comparator", m.stalls.comparator);
            w.u64_field("mem_port", m.stalls.mem_port);
            w.close_obj();
            w.key("events");
            w.open_obj();
            w.u64_field("int_ops", m.events.int_ops);
            w.u64_field("fp_ops", m.events.fp_ops);
            w.u64_field("data_links", m.events.data_links);
            w.u64_field("mem_links", m.events.mem_links);
            w.u64_field("may_checks", m.events.may_checks);
            w.u64_field("must_tokens", m.events.must_tokens);
            w.u64_field("l1_accesses", m.events.l1_accesses);
            w.u64_field("lsq_allocs", m.events.lsq_allocs);
            w.u64_field("lsq_bank_overflows", m.events.lsq_bank_overflows);
            w.u64_field("lsq_bloom_queries", m.events.lsq_bloom_queries);
            w.u64_field("lsq_bloom_hits", m.events.lsq_bloom_hits);
            w.u64_field("lsq_cam_loads", m.events.lsq_cam_loads);
            w.u64_field("lsq_cam_stores", m.events.lsq_cam_stores);
            w.u64_field("forwards", m.events.forwards);
            w.close_obj();
            w.key("energy_fj");
            w.open_obj();
            w.f64_field("compute", m.energy.compute);
            w.f64_field("mde", m.energy.mde);
            w.f64_field("lsq_bloom", m.energy.lsq_bloom);
            w.f64_field("lsq_cam", m.energy.lsq_cam);
            w.f64_field("l1", m.energy.l1);
            w.close_obj();
            w.key("l1");
            cache_line(&mut w, m.l1);
            w.key("llc");
            cache_line(&mut w, m.llc);
            w.u64_field("comparator_sites", m.comparator_sites);
            if let Some(o) = &m.opt {
                w.key("opt");
                w.open_obj();
                w.u64_field("order_before", o.order_before);
                w.u64_field("may_before", o.may_before);
                w.u64_field("order_removed", o.order_removed);
                w.u64_field("may_coalesced", o.may_coalesced);
                w.u64_field("may_upgraded", o.may_upgraded);
                w.u64_field("may_upgraded_edges", o.may_upgraded_edges);
                w.close_obj();
            }
            w.close_obj();
        }
        w.close_obj();
        w.finish()
    }

    /// Parses one journal line. Returns `None` for anything unusable —
    /// torn tail lines from a crash, checksum-failing corrupt records,
    /// foreign schemas, hand-edited junk — so replay degrades to
    /// re-running those cells instead of failing. Use
    /// [`Self::parse_line`] when corrupt records must be counted apart.
    #[must_use]
    pub fn from_line(line: &str) -> Option<RunRecord> {
        Self::parse_line(line).ok()
    }

    /// [`Self::from_line`] with corruption classified: a framed line
    /// whose checksum fails is [`LineError::Corrupt`]; everything else
    /// unusable is [`LineError::Unusable`].
    ///
    /// # Errors
    ///
    /// Returns the classification of why the line is not a valid
    /// record.
    pub fn parse_line(line: &str) -> Result<RunRecord, LineError> {
        match checksum_unframe(line.trim_end_matches(['\n', '\r'])) {
            Ok(payload) => Self::from_payload(payload).ok_or(LineError::Unusable),
            Err(FrameError::Corrupt) => Err(LineError::Corrupt),
            Err(FrameError::Unframed) => Err(LineError::Unusable),
        }
    }

    /// Parses the JSON payload of an already-unframed record line.
    #[must_use]
    pub fn from_payload(line: &str) -> Option<RunRecord> {
        let v = parse_json(line)?;
        if v.get("journal")?.as_str()? != JOURNAL_SCHEMA {
            return None;
        }
        let key = RunKey::parse(v.get("key")?.as_str()?)?;
        let job = v.get("job")?.as_str()?.to_owned();
        let variant = v.get("variant")?.as_str()?.to_owned();
        let status = RunStatus::from_label(v.get("status")?.as_str()?)?;
        let mut attempts = Vec::new();
        for a in v.get("attempts")?.as_arr()? {
            attempts.push(Attempt {
                status: RunStatus::from_label(a.get("status")?.as_str()?)?,
                seed: a.get("seed")?.as_u64()?,
            });
        }
        if attempts.is_empty() {
            return None;
        }
        let detail = match v.get("detail") {
            Some(d) => Some(d.as_str()?.to_owned()),
            None => None,
        };
        let injected = match v.get("injected") {
            Some(arr) => {
                let mut out = Vec::new();
                for s in arr.as_arr()? {
                    out.push(s.as_str()?.to_owned());
                }
                out
            }
            None => Vec::new(),
        };
        let metrics = match v.get("metrics") {
            Some(m) => Some(parse_metrics(m)?),
            None => None,
        };
        Some(RunRecord {
            key,
            job,
            variant,
            outcome: OutcomeRecord {
                status,
                detail,
                injected,
                attempts,
                metrics,
            },
        })
    }
}

fn cache_line(w: &mut JsonWriter, c: CacheStats) {
    w.open_obj();
    w.u64_field("hits", c.hits);
    w.u64_field("misses", c.misses);
    w.u64_field("writebacks", c.writebacks);
    w.close_obj();
}

fn parse_cache(v: &Json) -> Option<CacheStats> {
    Some(CacheStats {
        hits: v.get("hits")?.as_u64()?,
        misses: v.get("misses")?.as_u64()?,
        writebacks: v.get("writebacks")?.as_u64()?,
    })
}

fn parse_metrics(v: &Json) -> Option<RunMetrics> {
    let s = v.get("stalls")?;
    let e = v.get("events")?;
    let en = v.get("energy_fj")?;
    Some(RunMetrics {
        cycles: v.get("cycles")?.as_u64()?,
        stalls: StallCounts {
            lsq_alloc: s.get("lsq_alloc")?.as_u64()?,
            lsq_search: s.get("lsq_search")?.as_u64()?,
            token: s.get("token")?.as_u64()?,
            may_gate: s.get("may_gate")?.as_u64()?,
            comparator: s.get("comparator")?.as_u64()?,
            mem_port: s.get("mem_port")?.as_u64()?,
        },
        events: EventCounts {
            int_ops: e.get("int_ops")?.as_u64()?,
            fp_ops: e.get("fp_ops")?.as_u64()?,
            data_links: e.get("data_links")?.as_u64()?,
            mem_links: e.get("mem_links")?.as_u64()?,
            may_checks: e.get("may_checks")?.as_u64()?,
            must_tokens: e.get("must_tokens")?.as_u64()?,
            l1_accesses: e.get("l1_accesses")?.as_u64()?,
            lsq_allocs: e.get("lsq_allocs")?.as_u64()?,
            lsq_bank_overflows: e.get("lsq_bank_overflows")?.as_u64()?,
            lsq_bloom_queries: e.get("lsq_bloom_queries")?.as_u64()?,
            lsq_bloom_hits: e.get("lsq_bloom_hits")?.as_u64()?,
            lsq_cam_loads: e.get("lsq_cam_loads")?.as_u64()?,
            lsq_cam_stores: e.get("lsq_cam_stores")?.as_u64()?,
            forwards: e.get("forwards")?.as_u64()?,
        },
        energy: EnergyBreakdown {
            compute: en.get("compute")?.as_f64()?,
            mde: en.get("mde")?.as_f64()?,
            lsq_bloom: en.get("lsq_bloom")?.as_f64()?,
            lsq_cam: en.get("lsq_cam")?.as_f64()?,
            l1: en.get("l1")?.as_f64()?,
        },
        l1: parse_cache(v.get("l1")?)?,
        llc: parse_cache(v.get("llc")?)?,
        comparator_sites: v.get("comparator_sites")?.as_u64()?,
        opt: match v.get("opt") {
            Some(o) => Some(OptMetrics {
                order_before: o.get("order_before")?.as_u64()?,
                may_before: o.get("may_before")?.as_u64()?,
                order_removed: o.get("order_removed")?.as_u64()?,
                may_coalesced: o.get("may_coalesced")?.as_u64()?,
                may_upgraded: o.get("may_upgraded")?.as_u64()?,
                may_upgraded_edges: o.get("may_upgraded_edges")?.as_u64()?,
            }),
            None => None,
        },
    })
}

// ---------------------------------------------------------------------
// The journal file
// ---------------------------------------------------------------------

/// The durable append-only journal. Opened once per sweep; workers
/// append completed cells through a mutex (one line per append, flushed
/// and fsynced before the lock drops), and the preloaded replay map
/// serves `lookup` without touching the file again.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    replay: HashMap<u64, OutcomeRecord>,
    skipped: usize,
    corrupt: usize,
}

impl Journal {
    /// Starts a fresh journal at `path`, truncating any previous file —
    /// the non-`--resume` mode, where stale entries must not leak into a
    /// new campaign.
    ///
    /// # Errors
    ///
    /// Propagates file creation errors.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
            replay: HashMap::new(),
            skipped: 0,
            corrupt: 0,
        })
    }

    /// Opens `path` for resumption: parses every intact line into the
    /// replay map (later duplicates of a key win), then reopens the
    /// file for appending. A missing file is an empty journal, so
    /// `--resume` on a first run degrades to a fresh start.
    ///
    /// Replay is hardened against corruption *anywhere* in the file,
    /// not just the torn tail a crash mid-append leaves: lines are read
    /// as raw bytes (invalid UTF-8 cannot abort the load), and a line
    /// whose checksum frame fails, whose JSON is malformed, or whose
    /// schema is foreign is counted ([`Journal::skipped`], with
    /// checksum failures also in [`Journal::corrupt`]) and dropped —
    /// every valid record before *and after* it is kept, and the
    /// dropped cells simply re-execute. Record length is capped at
    /// [`MAX_RECORD_LEN`] during recovery: a corrupt frame header that
    /// claims (or simply is) a multi-GiB "line" is streamed past and
    /// counted, never buffered, so a hostile or trashed journal cannot
    /// OOM the resume path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn resume(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        let mut replay = HashMap::new();
        let mut skipped = 0usize;
        let mut corrupt = 0usize;
        let mut torn_tail = false;
        match File::open(&path) {
            Ok(f) => {
                let mut reader = BufReader::new(f);
                let mut buf = Vec::new();
                loop {
                    match read_bounded_line(&mut reader, &mut buf, MAX_RECORD_LEN)? {
                        BoundedLine::Eof => break,
                        // An oversized line can only be corruption (no
                        // legitimate record is near the cap); its bytes
                        // were discarded as they streamed past.
                        BoundedLine::Oversized { .. } => {
                            skipped += 1;
                            corrupt += 1;
                            continue;
                        }
                        BoundedLine::Line => {}
                    }
                    // Invalid UTF-8 is corruption like any other: drop
                    // the line, keep reading the rest of the file.
                    let Ok(line) = std::str::from_utf8(&buf) else {
                        skipped += 1;
                        corrupt += 1;
                        continue;
                    };
                    if line.trim().is_empty() {
                        continue;
                    }
                    match RunRecord::parse_line(line) {
                        Ok(rec) => {
                            replay.insert(rec.key.0, rec.outcome);
                        }
                        Err(LineError::Corrupt) => {
                            skipped += 1;
                            corrupt += 1;
                        }
                        Err(LineError::Unusable) => skipped += 1,
                    }
                }
                // A crash mid-append leaves a final record with no
                // newline. New appends must not concatenate onto it —
                // that would corrupt the *next* record too.
                torn_tail = file_lacks_final_newline(&path)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if torn_tail {
            file.write_all(b"\n")?;
            file.flush()?;
        }
        Ok(Journal {
            path,
            file: Mutex::new(file),
            replay,
            skipped,
            corrupt,
        })
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed cells loaded for replay.
    #[must_use]
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Malformed lines skipped while loading (a torn tail line after a
    /// crash is normal and costs exactly one re-run).
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// The subset of [`Journal::skipped`] that carried a checksum frame
    /// failing verification — records corrupted on disk after they were
    /// written, as opposed to torn or foreign lines.
    #[must_use]
    pub fn corrupt(&self) -> usize {
        self.corrupt
    }

    /// The recorded outcome for `key`, when the journal has one.
    #[must_use]
    pub fn lookup(&self, key: RunKey) -> Option<&OutcomeRecord> {
        self.replay.get(&key.0)
    }

    /// Durably appends one completed cell: a single `write` of the JSONL
    /// line, flushed and fsynced before returning, so the record either
    /// exists completely or (after a crash mid-write) fails to parse and
    /// is re-run — never half-trusted.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync errors (and a poisoned append lock as
    /// [`io::ErrorKind::Other`]).
    pub fn append(&self, record: &RunRecord) -> io::Result<()> {
        let line = record.to_line();
        let mut file = self
            .file
            .lock()
            .map_err(|_| io::Error::other("journal append lock poisoned"))?;
        file.write_all(line.as_bytes())?;
        file.flush()?;
        file.sync_data()
    }

    /// Appends one pre-framed single-line record (heartbeats and other
    /// non-[`RunRecord`] lines share the journal file in sharded mode).
    /// Flushed but **not** fsynced: these lines carry liveness, not
    /// completed work, and losing them costs nothing on resume.
    ///
    /// # Errors
    ///
    /// Propagates write errors (and a poisoned append lock as
    /// [`io::ErrorKind::Other`]).
    pub fn append_raw(&self, line: &str) -> io::Result<()> {
        let mut file = self
            .file
            .lock()
            .map_err(|_| io::Error::other("journal append lock poisoned"))?;
        file.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            file.write_all(b"\n")?;
        }
        file.flush()
    }

    /// Merges one record recovered from elsewhere (a shard journal, the
    /// result cache) into this journal: appends it durably *and* makes
    /// it immediately replayable through [`Journal::lookup`]. A key the
    /// replay map already holds is left untouched (first absorption
    /// wins; within one merge pass every source of a key records the
    /// identical outcome).
    ///
    /// # Errors
    ///
    /// Propagates append I/O errors.
    pub fn absorb(&mut self, record: &RunRecord) -> io::Result<bool> {
        if self.replay.contains_key(&record.key.0) {
            return Ok(false);
        }
        self.append(record)?;
        self.replay.insert(record.key.0, record.outcome.clone());
        Ok(true)
    }
}

/// Upper bound on one recovered record line, in bytes. Real journal
/// records are a few KiB; the margin is ~1000×. Anything longer is by
/// definition corruption (e.g. a frame header whose newline was
/// overwritten, fusing it onto gigabytes of foreign bytes) and is
/// skipped without ever being buffered.
pub const MAX_RECORD_LEN: usize = 4 << 20;

/// Outcome of one [`read_bounded_line`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundedLine {
    /// A line of at most the cap landed in the buffer (trailing `\n`
    /// included when present; the final line of a file may lack one).
    Line,
    /// The line exceeded the cap: the buffer is empty and every byte up
    /// to (and including) the next newline was read and discarded.
    Oversized {
        /// Total length of the discarded line, in bytes.
        discarded: u64,
    },
    /// End of input with no pending bytes.
    Eof,
}

/// Reads one newline-terminated line into `buf`, refusing to buffer
/// more than `cap` bytes: an oversized line is consumed to its newline
/// in streaming fashion (constant memory) and reported as
/// [`BoundedLine::Oversized`] so recovery paths can count-and-skip a
/// multi-GiB corrupt record instead of allocating for it. The daemon's
/// request reader shares this guard — a hostile client line cannot OOM
/// the server either.
///
/// # Errors
///
/// Propagates underlying read errors.
pub fn read_bounded_line<R: io::BufRead + ?Sized>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    cap: usize,
) -> io::Result<BoundedLine> {
    buf.clear();
    let mut discarded: u64 = 0;
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if oversized {
                BoundedLine::Oversized { discarded }
            } else if buf.is_empty() {
                BoundedLine::Eof
            } else {
                BoundedLine::Line
            });
        }
        let (terminated, n) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (true, pos + 1),
            None => (false, chunk.len()),
        };
        if oversized {
            discarded += n as u64;
        } else if buf.len() + n > cap {
            // Crossing the cap: drop what we buffered and switch to
            // streaming-discard until the newline.
            oversized = true;
            discarded = (buf.len() + n) as u64;
            buf.clear();
        } else {
            buf.extend_from_slice(&chunk[..n]);
        }
        reader.consume(n);
        if terminated {
            return Ok(if oversized {
                BoundedLine::Oversized { discarded }
            } else {
                BoundedLine::Line
            });
        }
    }
}

/// Whether the file's last byte is something other than `\n` — the
/// signature of an append interrupted mid-record.
pub(crate) fn file_lacks_final_newline(path: &Path) -> io::Result<bool> {
    let mut f = File::open(path)?;
    let len = f.seek(SeekFrom::End(0))?;
    if len == 0 {
        return Ok(false);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] != b'\n')
}

// ---------------------------------------------------------------------
// Minimal JSON parsing (journal replay only)
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw text so integer seeds
/// round-trip without an `f64` detour and floats re-parse to the exact
/// bit pattern the shortest-roundtrip writer emitted.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `{...}` — insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
    /// `[...]`.
    Arr(Vec<Json>),
    /// A string literal, unescaped.
    Str(String),
    /// A number, as raw text.
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number as `u64` (exact; no float detour).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document (with nothing but whitespace after it).
/// Returns `None` on any syntax error — the journal treats unparsable
/// lines as lost work, not fatal corruption.
#[must_use]
pub fn parse_json(text: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.literal(b"true", Json::Bool(true)),
            b'f' => self.literal(b"false", Json::Bool(false)),
            b'n' => self.literal(b"null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &[u8], v: Json) -> Option<Json> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let hex = std::str::from_utf8(hex).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            // Surrogate pairs never appear in our own
                            // output (the writer only \u-escapes control
                            // characters); reject them rather than
                            // misdecode.
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).ok()?;
                    let c = s.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        // Validate now so `as_u64`/`as_f64` only see plausible numbers.
        raw.parse::<f64>().ok()?;
        Some(Json::Num(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Backend;
    use crate::sweep::SweepJob;
    use crate::testutil::store_load_region;

    fn demo_record(seed: u64) -> RunRecord {
        RunRecord {
            key: RunKey(0x0123_4567_89ab_cdef),
            job: "demo \"quoted\"".into(),
            variant: "nachos".into(),
            outcome: OutcomeRecord {
                status: RunStatus::Ok,
                detail: None,
                injected: vec!["drop-token at cycle 3 (token to node 4)".into()],
                attempts: vec![
                    Attempt {
                        status: RunStatus::Panic,
                        seed,
                    },
                    Attempt {
                        status: RunStatus::Ok,
                        seed: seed.wrapping_add(1),
                    },
                ],
                metrics: Some(RunMetrics {
                    cycles: 123,
                    stalls: StallCounts {
                        token: 7,
                        ..StallCounts::default()
                    },
                    events: EventCounts {
                        int_ops: 42,
                        forwards: 3,
                        ..EventCounts::default()
                    },
                    energy: EnergyBreakdown {
                        compute: 1.5,
                        mde: 0.125,
                        lsq_bloom: 0.0,
                        lsq_cam: 0.1 + 0.2, // a classic non-round f64
                        l1: 9.75,
                    },
                    l1: CacheStats {
                        hits: 10,
                        misses: 2,
                        writebacks: 1,
                    },
                    llc: CacheStats {
                        hits: 1,
                        misses: 1,
                        writebacks: 0,
                    },
                    comparator_sites: 2,
                    opt: Some(OptMetrics {
                        order_before: 6,
                        may_before: 4,
                        order_removed: 1,
                        may_coalesced: 2,
                        may_upgraded: 1,
                        may_upgraded_edges: 1,
                    }),
                }),
            },
        }
    }

    #[test]
    fn record_roundtrips_bit_exactly() {
        // Full-range u64 seeds must survive (beyond f64's 2^53).
        let rec = demo_record(u64::MAX - 7);
        let line = rec.to_line();
        assert_eq!(line.matches('\n').count(), 1, "one line, one record");
        let back = RunRecord::from_line(&line).expect("parses");
        assert_eq!(back, rec);
        // And the re-serialized line is identical (stable bytes).
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn torn_and_foreign_lines_are_skipped() {
        let rec = demo_record(1);
        let line = rec.to_line();
        assert!(RunRecord::from_line(&line[..line.len() / 2]).is_none());
        assert!(RunRecord::from_line("").is_none());
        assert!(RunRecord::from_line("{\"journal\": \"other-v9\"}").is_none());
        assert!(RunRecord::from_line("not json at all").is_none());
    }

    #[test]
    fn keys_are_content_hashes() {
        let (region, binding) = store_load_region("a");
        let sim = SimConfig::default();
        let fp = job_fingerprint(&region, &binding, &sim);
        // Stable under recomputation.
        assert_eq!(fp, job_fingerprint(&region, &binding, &sim));
        // Any config change invalidates the key.
        let mut other = sim.clone();
        other.invocations += 1;
        assert_ne!(fp, job_fingerprint(&region, &binding, &other));
        // The optimizer changes the compiled graph: content, not control.
        let optimized = sim.clone().with_optimize(true);
        assert_ne!(fp, job_fingerprint(&region, &binding, &optimized));
        // The cancel token does NOT (runtime control, not content).
        let cancelled = sim.clone().with_cancel(crate::CancelToken::new());
        assert_eq!(fp, job_fingerprint(&region, &binding, &cancelled));
        // Variants split the key.
        let variants = SweepVariant::paper_matrix();
        let k0 = run_key(fp, &variants[0]);
        let k1 = run_key(fp, &variants[1]);
        assert_ne!(k0, k1);
        assert_eq!(k0, run_key(fp, &variants[0]));
    }

    #[test]
    fn fault_plan_enters_the_fingerprint() {
        use crate::fault::{FaultKind, FaultSpec};
        let (region, binding) = store_load_region("f");
        let job = SweepJob::new("f", region.clone(), binding.clone());
        let sim = SimConfig::default();
        let mut faulted = sim.clone();
        faulted
            .fault
            .faults
            .push(FaultSpec::new(FaultKind::DropToken, 0).on_backend(Backend::NachosSw));
        assert_ne!(
            job_fingerprint(&job.region, &job.binding, &sim),
            job_fingerprint(&job.region, &job.binding, &faulted),
        );
    }

    #[test]
    fn seed_derivation_is_deterministic_and_attempt_sensitive() {
        let k = RunKey(42);
        assert_eq!(derive_seed(k, 0), derive_seed(k, 0));
        assert_ne!(derive_seed(k, 0), derive_seed(k, 1));
        assert_ne!(derive_seed(k, 0), derive_seed(RunKey(43), 0));
    }

    #[test]
    fn run_key_hex_roundtrip() {
        let k = RunKey(0x00ff_0000_0000_00aa);
        assert_eq!(k.to_string(), "00ff0000000000aa");
        assert_eq!(RunKey::parse(&k.to_string()), Some(k));
        assert_eq!(RunKey::parse("xyz"), None);
        assert_eq!(RunKey::parse("00ff"), None);
    }

    #[test]
    fn journal_create_resume_and_replay() {
        let dir = std::env::temp_dir().join("nachos-journal-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let rec_a = demo_record(7);
        let mut rec_b = demo_record(9);
        rec_b.key = RunKey(0xbbbb);
        {
            let j = Journal::create(&path).unwrap();
            j.append(&rec_a).unwrap();
            j.append(&rec_b).unwrap();
        }
        // Simulate a crash mid-append: a torn half line at the tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let torn = demo_record(11).to_line();
            f.write_all(&torn.as_bytes()[..torn.len() / 3]).unwrap();
        }
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.replay_len(), 2);
        assert_eq!(j.skipped(), 1, "the torn tail is skipped, not fatal");
        assert_eq!(j.lookup(rec_a.key), Some(&rec_a.outcome));
        assert_eq!(j.lookup(rec_b.key), Some(&rec_b.outcome));
        assert_eq!(j.lookup(RunKey(0xdead)), None);
        // Resume newline-terminates the torn tail, so a record appended
        // after the crash does not concatenate onto it and get lost.
        let mut rec_c = demo_record(11);
        rec_c.key = RunKey(0xcccc);
        j.append(&rec_c).unwrap();
        drop(j);
        let j = Journal::resume(&path).unwrap();
        assert_eq!(
            j.replay_len(),
            3,
            "post-crash append survives the torn tail"
        );
        assert_eq!(j.lookup(rec_c.key), Some(&rec_c.outcome));
        // `create` truncates: a fresh campaign sees nothing stale.
        let fresh = Journal::create(&path).unwrap();
        assert_eq!(fresh.replay_len(), 0);
        drop(fresh);
        assert_eq!(Journal::resume(&path).unwrap().replay_len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_file_record_is_counted_and_later_records_survive() {
        let dir = std::env::temp_dir().join("nachos-journal-corrupt-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let mut recs = Vec::new();
        for i in 0..4u64 {
            let mut r = demo_record(i);
            r.key = RunKey(0x1000 + i);
            recs.push(r);
        }
        {
            let j = Journal::create(&path).unwrap();
            for r in &recs {
                j.append(r).unwrap();
            }
        }
        // Flip one byte inside the *second* record — mid-file, not the
        // tail — deep enough to land in the JSON payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| **b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        bytes[line_starts[1] + 40] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.corrupt(), 1, "the flipped record is detected");
        assert_eq!(j.skipped(), 1);
        assert_eq!(j.replay_len(), 3, "records after the corruption survive");
        assert_eq!(j.lookup(recs[1].key), None, "the corrupt cell re-executes");
        for r in [&recs[0], &recs[2], &recs[3]] {
            assert_eq!(j.lookup(r.key), Some(&r.outcome));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_utf8_line_never_aborts_the_load() {
        let dir = std::env::temp_dir().join("nachos-journal-utf8-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let rec = demo_record(3);
        {
            let j = Journal::create(&path).unwrap();
            j.append(&rec).unwrap();
        }
        let mut bytes = b"\xff\xfe garbage \xff\n".to_vec();
        bytes.extend_from_slice(&std::fs::read(&path).unwrap());
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.replay_len(), 1);
        assert_eq!(j.skipped(), 1);
        assert_eq!(j.corrupt(), 1);
        assert_eq!(j.lookup(rec.key), Some(&rec.outcome));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absorb_appends_once_and_serves_lookups() {
        let dir = std::env::temp_dir().join("nachos-journal-absorb-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let rec = demo_record(5);
        let mut j = Journal::create(&path).unwrap();
        assert!(j.absorb(&rec).unwrap());
        assert!(!j.absorb(&rec).unwrap(), "second absorption is a no-op");
        assert_eq!(j.lookup(rec.key), Some(&rec.outcome));
        drop(j);
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.replay_len(), 1, "absorb wrote exactly one line");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_line_reader_streams_past_oversized_lines() {
        use std::io::Cursor;
        let mut input = Vec::new();
        input.extend_from_slice(b"short\n");
        input.extend_from_slice(&[b'x'; 100]);
        input.push(b'\n');
        input.extend_from_slice(b"after\n");
        input.extend_from_slice(b"tail-no-newline");
        let mut r = Cursor::new(input);
        let mut buf = Vec::new();
        assert_eq!(
            read_bounded_line(&mut r, &mut buf, 16).unwrap(),
            BoundedLine::Line
        );
        assert_eq!(buf, b"short\n");
        assert_eq!(
            read_bounded_line(&mut r, &mut buf, 16).unwrap(),
            BoundedLine::Oversized { discarded: 101 },
        );
        assert!(buf.is_empty(), "oversized bytes are never buffered");
        assert_eq!(
            read_bounded_line(&mut r, &mut buf, 16).unwrap(),
            BoundedLine::Line
        );
        assert_eq!(buf, b"after\n");
        assert_eq!(
            read_bounded_line(&mut r, &mut buf, 16).unwrap(),
            BoundedLine::Line,
            "a final unterminated line is still delivered"
        );
        assert_eq!(buf, b"tail-no-newline");
        assert_eq!(
            read_bounded_line(&mut r, &mut buf, 16).unwrap(),
            BoundedLine::Eof
        );
        // An unterminated oversized tail is reported, not buffered.
        let mut r = Cursor::new(vec![b'y'; 64]);
        assert_eq!(
            read_bounded_line(&mut r, &mut buf, 16).unwrap(),
            BoundedLine::Oversized { discarded: 64 },
        );
    }

    /// The satellite regression for corrupt oversized records: a frame
    /// header fused onto a payload far beyond [`MAX_RECORD_LEN`] (the
    /// on-disk shape a multi-GiB corruption takes — the discard path is
    /// constant-memory, so only the cap-crossing needs exercising) is
    /// skipped and counted, and every record on either side survives.
    #[test]
    fn resume_skips_and_counts_an_oversized_corrupt_record() {
        let dir = std::env::temp_dir().join("nachos-journal-oversize-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let rec_a = demo_record(21);
        let mut rec_b = demo_record(23);
        rec_b.key = RunKey(0xbeef);
        {
            let j = Journal::create(&path).unwrap();
            j.append(&rec_a).unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            // A plausible-looking frame header whose record body claims
            // gigabytes: 16 hex digits, a space, then an endless line.
            f.write_all(b"ffffffffffffffff ").unwrap();
            let chunk = vec![b'x'; 1 << 20];
            for _ in 0..(MAX_RECORD_LEN / (1 << 20) + 3) {
                f.write_all(&chunk).unwrap();
            }
            f.write_all(b"\n").unwrap();
        }
        {
            let j = Journal::resume(&path).unwrap();
            j.append(&rec_b).unwrap();
        }
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.replay_len(), 2, "records on both sides survive");
        assert_eq!(j.skipped(), 1, "the oversized line is skipped once");
        assert_eq!(j.corrupt(), 1, "and counted as corruption");
        assert_eq!(j.lookup(rec_a.key), Some(&rec_a.outcome));
        assert_eq!(j.lookup(rec_b.key), Some(&rec_b.outcome));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parser_handles_nesting_escapes_and_rejects_trailing_junk() {
        let v = parse_json("{\"a\": [1, {\"b\": \"x\\n\\u0041\"}], \"c\": -1.5e3}").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\nA")
        );
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-1500.0));
        assert!(parse_json("{} trailing").is_none());
        assert!(parse_json("{\"a\": }").is_none());
        assert!(parse_json("[1, 2").is_none());
    }
}
