//! Worker liveness records for process-isolated sharded sweeps.
//!
//! A shard worker interleaves [`Heartbeat`] lines with its completed
//! [`super::journal::RunRecord`]s in the same shard journal file. The
//! supervisor never trusts heartbeats for *results* — only for
//! liveness ("is the worker still making progress?") and attribution
//! ("which cell was in flight when the worker died?"). Heartbeats
//! therefore carry a sequence number and the in-flight cell key, but
//! **no wall-clock timestamp**: the supervisor measures silence with
//! its own clock by watching the journal grow, and nothing from a
//! heartbeat ever reaches report bytes.
//!
//! Like every journal line, heartbeats are checksum-framed
//! ([`crate::json::checksum_frame`]): a torn or corrupted beat is
//! dropped by readers, never misattributed.

use super::journal::{parse_json, RunKey};
use crate::json::{checksum_frame, checksum_unframe, JsonWriter};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Heartbeat line schema tag (the `journal` field, so readers dispatch
/// on the same key as run records).
pub const HEARTBEAT_SCHEMA: &str = "nachos-heartbeat-v1";

/// Where in a cell's life a heartbeat was emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeartbeatPhase {
    /// The worker is about to execute the named cell.
    Start,
    /// The worker finished (and journaled) the named cell.
    Done,
    /// Periodic pulse: the worker is alive, possibly mid-cell.
    Alive,
}

impl HeartbeatPhase {
    /// Stable lowercase label used on the wire.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HeartbeatPhase::Start => "start",
            HeartbeatPhase::Done => "done",
            HeartbeatPhase::Alive => "alive",
        }
    }

    /// Parses the stable label back.
    #[must_use]
    pub fn from_label(s: &str) -> Option<HeartbeatPhase> {
        Some(match s {
            "start" => HeartbeatPhase::Start,
            "done" => HeartbeatPhase::Done,
            "alive" => HeartbeatPhase::Alive,
            _ => return None,
        })
    }
}

/// One worker liveness record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Monotonic per-worker sequence number (restarts from the next
    /// value after a respawn; gaps are meaningless).
    pub seq: u64,
    /// Phase of the beat.
    pub phase: HeartbeatPhase,
    /// The cell in flight, when one is (`Start`/`Done` always name it;
    /// `Alive` names it only mid-cell).
    pub cell: Option<RunKey>,
}

impl Heartbeat {
    /// Serializes the beat to its checksum-framed, newline-terminated
    /// journal line.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut w = JsonWriter::compact();
        w.open_obj();
        w.str_field("journal", HEARTBEAT_SCHEMA);
        w.u64_field("seq", self.seq);
        w.str_field("phase", self.phase.as_str());
        if let Some(cell) = self.cell {
            w.str_field("cell", &cell.to_string());
        }
        w.close_obj();
        let payload = w.finish();
        let mut framed = checksum_frame(payload.trim_end_matches('\n'));
        framed.push('\n');
        framed
    }

    /// Parses one framed journal line as a heartbeat. Returns `None`
    /// for anything else — run records, corrupt or torn lines — so
    /// journal readers can probe cheaply.
    #[must_use]
    pub fn from_line(line: &str) -> Option<Heartbeat> {
        let payload = checksum_unframe(line.trim_end_matches(['\n', '\r'])).ok()?;
        Self::from_payload(payload)
    }

    /// Parses the JSON payload of an already-unframed heartbeat line.
    #[must_use]
    pub fn from_payload(payload: &str) -> Option<Heartbeat> {
        let v = parse_json(payload)?;
        if v.get("journal")?.as_str()? != HEARTBEAT_SCHEMA {
            return None;
        }
        let cell = match v.get("cell") {
            Some(c) => Some(RunKey::parse(c.as_str()?)?),
            None => None,
        };
        Some(Heartbeat {
            seq: v.get("seq")?.as_u64()?,
            phase: HeartbeatPhase::from_label(v.get("phase")?.as_str()?)?,
            cell,
        })
    }
}

/// Shared state between a worker's main loop and its pulse thread.
#[derive(Default)]
struct PulseState {
    seq: AtomicU64,
    stop: AtomicBool,
    /// The cell currently executing, for mid-cell `Alive` beats.
    in_flight: Mutex<Option<RunKey>>,
}

/// Emits heartbeats for one worker process: explicit `Start`/`Done`
/// beats around each cell from the worker's own thread, plus periodic
/// `Alive` beats from a background pulse thread so that a long-running
/// cell still grows the journal and the supervisor can tell "slow" from
/// "dead". Dropping the pulse stops the thread.
pub struct Pulse {
    sink: Arc<dyn Fn(&Heartbeat) + Send + Sync>,
    state: Arc<PulseState>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for PulseState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PulseState")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Pulse {
    /// Starts a pulse emitting through `sink` (typically
    /// [`super::journal::Journal::append_raw`]) every `interval`. A
    /// zero interval disables the background thread; `Start`/`Done`
    /// beats still flow.
    #[must_use]
    pub fn start(sink: Arc<dyn Fn(&Heartbeat) + Send + Sync>, interval: Duration) -> Pulse {
        let state = Arc::new(PulseState::default());
        let thread = if interval.is_zero() {
            None
        } else {
            let state = Arc::clone(&state);
            let sink = Arc::clone(&sink);
            Some(std::thread::spawn(move || {
                while !state.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if state.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let cell = state.in_flight.lock().ok().and_then(|g| *g);
                    sink(&Heartbeat {
                        seq: state.seq.fetch_add(1, Ordering::Relaxed),
                        phase: HeartbeatPhase::Alive,
                        cell,
                    });
                }
            }))
        };
        Pulse {
            sink,
            state,
            thread,
        }
    }

    fn beat(&self, phase: HeartbeatPhase, cell: Option<RunKey>) {
        (self.sink)(&Heartbeat {
            seq: self.state.seq.fetch_add(1, Ordering::Relaxed),
            phase,
            cell,
        });
    }

    /// Marks `cell` in flight and emits its `Start` beat.
    pub fn cell_start(&self, cell: RunKey) {
        if let Ok(mut g) = self.state.in_flight.lock() {
            *g = Some(cell);
        }
        self.beat(HeartbeatPhase::Start, Some(cell));
    }

    /// Clears the in-flight cell and emits its `Done` beat.
    pub fn cell_done(&self, cell: RunKey) {
        if let Ok(mut g) = self.state.in_flight.lock() {
            *g = None;
        }
        self.beat(HeartbeatPhase::Done, Some(cell));
    }
}

impl Drop for Pulse {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for Pulse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pulse")
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_roundtrips_and_rejects_corruption() {
        for hb in [
            Heartbeat {
                seq: 0,
                phase: HeartbeatPhase::Start,
                cell: Some(RunKey(0xdead_beef_0000_0001)),
            },
            Heartbeat {
                seq: u64::MAX,
                phase: HeartbeatPhase::Alive,
                cell: None,
            },
        ] {
            let line = hb.to_line();
            assert_eq!(line.matches('\n').count(), 1);
            assert_eq!(Heartbeat::from_line(&line), Some(hb));
            // A flipped byte kills the frame.
            let mut corrupted = line.clone().into_bytes();
            corrupted[20] ^= 0x04;
            let corrupted = String::from_utf8(corrupted).unwrap();
            assert_eq!(Heartbeat::from_line(&corrupted), None);
        }
        // A run-record line is not a heartbeat.
        assert_eq!(
            Heartbeat::from_line(&crate::json::checksum_frame(
                "{\"journal\": \"nachos-journal-v1\"}"
            )),
            None
        );
    }

    #[test]
    fn pulse_emits_start_done_and_periodic_alive_beats() {
        let beats: Arc<Mutex<Vec<Heartbeat>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let beats = Arc::clone(&beats);
            Arc::new(move |hb: &Heartbeat| beats.lock().unwrap().push(*hb))
                as Arc<dyn Fn(&Heartbeat) + Send + Sync>
        };
        let key = RunKey(42);
        {
            let pulse = Pulse::start(sink, Duration::from_millis(5));
            pulse.cell_start(key);
            std::thread::sleep(Duration::from_millis(40));
            pulse.cell_done(key);
        }
        let beats = beats.lock().unwrap();
        assert_eq!(beats.first().map(|b| b.phase), Some(HeartbeatPhase::Start));
        assert_eq!(beats.last().map(|b| b.phase), Some(HeartbeatPhase::Done));
        let alive: Vec<_> = beats
            .iter()
            .filter(|b| b.phase == HeartbeatPhase::Alive)
            .collect();
        assert!(!alive.is_empty(), "the pulse thread beat while mid-cell");
        assert!(
            alive.iter().all(|b| b.cell == Some(key)),
            "mid-cell pulses name the in-flight cell"
        );
        // Sequence numbers are unique (the pulse thread and the worker
        // thread share one counter; observation order may race).
        let mut seqs: Vec<u64> = beats.iter().map(|b| b.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), beats.len());
    }
}
