//! Deterministic fault injection for the simulated hardware.
//!
//! NACHOS's safety argument is a protocol argument: the MAY gates,
//! ORDER/FORWARD tokens and the one-per-cycle comparator check must never
//! admit an unsafe reordering and never deadlock (paper §IV–V). A claim
//! like that deserves chaos testing: this module lets a run *perturb* the
//! simulated hardware at precisely-targeted points — drop or duplicate a
//! completion token, force a comparator verdict, delay a memory response,
//! flip bits in a forwarded value, or panic outright — so the harness can
//! prove that every unsafe perturbation is caught (by the differential
//! check, the token accounting, or the engine watchdog) and every benign
//! one leaves architectural results untouched.
//!
//! Injection is **deterministic**: each fault class has an opportunity
//! counter inside the engine (token deliveries, `==?` checks, memory
//! responses, forward consumptions, handled events), and a
//! [`FaultSpec`] fires at exactly the `nth` opportunity of its class in a
//! given run. No randomness, no wall-clock — the same [`FaultPlan`]
//! produces the same injections, the same report, on any worker-thread
//! count.

use crate::config::Backend;
use std::fmt;

/// What to perturb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Swallow an ordering-token delivery (ORDER, serialized MAY, or
    /// local scratchpad token). The receiver waits forever — the engine
    /// watchdog must convert the hang into a diagnosed deadlock.
    DropToken,
    /// Deliver an ordering token twice. The extra decrement underflows
    /// the receiver's token count — the engine's token accounting must
    /// report a structured protocol violation.
    DuplicateToken,
    /// Force a `==?` comparator check to report *no conflict*. Unsafe on
    /// a truly-conflicting pair: the younger op proceeds early and the
    /// differential check must flag the reordering.
    ForceNoConflict,
    /// Force a `==?` comparator check to report *conflict*. Benign: the
    /// younger op serializes behind the older one — pure timing.
    ForceConflict,
    /// Delay one memory response by the given number of cycles. Benign:
    /// pure timing.
    DelayMem {
        /// Extra response latency in cycles.
        cycles: u64,
    },
    /// XOR the value consumed over a FORWARD edge with the given mask.
    /// Unsafe (for a nonzero mask): the load observes a corrupted value
    /// and the differential check must flag it.
    CorruptForward {
        /// Bit mask XORed into the forwarded value.
        mask: u64,
    },
    /// Panic while handling an engine event. Exercises the sweep
    /// harness's per-run panic isolation (`catch_unwind` at the worker
    /// boundary): one poisoned run must not take down the other 80.
    PanicOnEvent,
}

impl FaultKind {
    /// The opportunity class whose counter arms this fault.
    #[must_use]
    pub fn class(self) -> FaultClass {
        match self {
            FaultKind::DropToken | FaultKind::DuplicateToken => FaultClass::TokenDelivery,
            FaultKind::ForceNoConflict | FaultKind::ForceConflict => FaultClass::MayCheck,
            FaultKind::DelayMem { .. } => FaultClass::MemResponse,
            FaultKind::CorruptForward { .. } => FaultClass::ForwardConsume,
            FaultKind::PanicOnEvent => FaultClass::Event,
        }
    }

    /// `true` for perturbations that may change architectural results or
    /// liveness; `false` for pure-timing perturbations that the harness
    /// must prove result-neutral.
    #[must_use]
    pub fn is_unsafe(self) -> bool {
        match self {
            FaultKind::DropToken
            | FaultKind::DuplicateToken
            | FaultKind::ForceNoConflict
            | FaultKind::PanicOnEvent => true,
            FaultKind::CorruptForward { mask } => mask != 0,
            FaultKind::ForceConflict | FaultKind::DelayMem { .. } => false,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DropToken => f.write_str("drop-token"),
            FaultKind::DuplicateToken => f.write_str("duplicate-token"),
            FaultKind::ForceNoConflict => f.write_str("force-no-conflict"),
            FaultKind::ForceConflict => f.write_str("force-conflict"),
            FaultKind::DelayMem { cycles } => write!(f, "delay-mem({cycles})"),
            FaultKind::CorruptForward { mask } => write!(f, "corrupt-forward({mask:#x})"),
            FaultKind::PanicOnEvent => f.write_str("panic-on-event"),
        }
    }
}

/// The injection-point classes the engine counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// An ordering token about to be delivered.
    TokenDelivery,
    /// A `==?` comparator check about to produce its verdict.
    MayCheck,
    /// A cache/memory access about to schedule its response.
    MemResponse,
    /// A FORWARD-edge value about to be consumed by a load.
    ForwardConsume,
    /// An engine event about to be handled.
    Event,
}

impl FaultClass {
    const COUNT: usize = 5;

    fn index(self) -> usize {
        match self {
            FaultClass::TokenDelivery => 0,
            FaultClass::MayCheck => 1,
            FaultClass::MemResponse => 2,
            FaultClass::ForwardConsume => 3,
            FaultClass::Event => 4,
        }
    }
}

/// One targeted perturbation: fire `kind` at the `nth` opportunity of its
/// class, optionally only under one backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to perturb.
    pub kind: FaultKind,
    /// Zero-based opportunity index within the fault's class at which to
    /// fire (counted per run, deterministically).
    pub nth: u64,
    /// Restrict the fault to one backend (`None` = any backend).
    pub backend: Option<Backend>,
}

impl FaultSpec {
    /// A spec firing at the `nth` opportunity under any backend.
    #[must_use]
    pub fn new(kind: FaultKind, nth: u64) -> Self {
        Self {
            kind,
            nth,
            backend: None,
        }
    }

    /// Restricts the spec to one backend, builder-style.
    #[must_use]
    pub fn on_backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }
}

/// The set of perturbations one run injects. An empty plan (the default)
/// is a zero-cost no-op for the engine's hot paths.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The targeted perturbations.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: no injection.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with a single fault.
    #[must_use]
    pub fn single(spec: FaultSpec) -> Self {
        Self { faults: vec![spec] }
    }

    /// `true` when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// `true` when any spec applies under `backend`.
    #[must_use]
    pub fn applies_to(&self, backend: Backend) -> bool {
        self.faults
            .iter()
            .any(|s| s.backend.is_none_or(|b| b == backend))
    }
}

/// Per-run injection state: one opportunity counter per [`FaultClass`]
/// and the log of faults that actually fired.
#[derive(Clone, Debug, Default)]
pub(crate) struct FaultState {
    counters: [u64; FaultClass::COUNT],
    /// Deterministic descriptions of every fired fault, in firing order.
    pub(crate) fired: Vec<String>,
}

impl FaultState {
    /// Counts one opportunity of `class` and returns the armed fault, if
    /// any spec of the plan targets exactly this opportunity under this
    /// backend. At most one spec fires per opportunity (first match).
    pub(crate) fn poll(
        &mut self,
        plan: &FaultPlan,
        backend: Backend,
        class: FaultClass,
    ) -> Option<FaultKind> {
        let n = self.counters[class.index()];
        self.counters[class.index()] += 1;
        if plan.is_empty() {
            return None;
        }
        plan.faults
            .iter()
            .find(|s| {
                s.kind.class() == class && s.nth == n && s.backend.is_none_or(|b| b == backend)
            })
            .map(|s| s.kind)
    }

    /// Records that `kind` fired, with deterministic context.
    pub(crate) fn record(&mut self, kind: FaultKind, cycle: u64, context: &str) {
        self.fired
            .push(format!("{kind} at cycle {cycle} ({context})"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_fires_at_exactly_the_nth_opportunity() {
        let plan = FaultPlan::single(FaultSpec::new(FaultKind::DropToken, 2));
        let mut st = FaultState::default();
        let b = Backend::NachosSw;
        assert_eq!(st.poll(&plan, b, FaultClass::TokenDelivery), None);
        assert_eq!(st.poll(&plan, b, FaultClass::TokenDelivery), None);
        assert_eq!(
            st.poll(&plan, b, FaultClass::TokenDelivery),
            Some(FaultKind::DropToken)
        );
        assert_eq!(st.poll(&plan, b, FaultClass::TokenDelivery), None);
    }

    #[test]
    fn backend_filter_gates_injection() {
        let plan = FaultPlan::single(
            FaultSpec::new(FaultKind::ForceNoConflict, 0).on_backend(Backend::Nachos),
        );
        let mut st = FaultState::default();
        assert_eq!(
            st.poll(&plan, Backend::NachosSw, FaultClass::MayCheck),
            None
        );
        let mut st = FaultState::default();
        assert_eq!(
            st.poll(&plan, Backend::Nachos, FaultClass::MayCheck),
            Some(FaultKind::ForceNoConflict)
        );
        assert!(plan.applies_to(Backend::Nachos));
        assert!(!plan.applies_to(Backend::OptLsq));
    }

    #[test]
    fn classes_do_not_cross_count() {
        let plan = FaultPlan::single(FaultSpec::new(FaultKind::DelayMem { cycles: 9 }, 0));
        let mut st = FaultState::default();
        let b = Backend::OptLsq;
        // Token opportunities do not consume the mem-response counter.
        assert_eq!(st.poll(&plan, b, FaultClass::TokenDelivery), None);
        assert_eq!(st.poll(&plan, b, FaultClass::TokenDelivery), None);
        assert_eq!(
            st.poll(&plan, b, FaultClass::MemResponse),
            Some(FaultKind::DelayMem { cycles: 9 })
        );
    }

    #[test]
    fn safety_taxonomy() {
        assert!(FaultKind::DropToken.is_unsafe());
        assert!(FaultKind::DuplicateToken.is_unsafe());
        assert!(FaultKind::ForceNoConflict.is_unsafe());
        assert!(FaultKind::PanicOnEvent.is_unsafe());
        assert!(FaultKind::CorruptForward { mask: 1 }.is_unsafe());
        assert!(!FaultKind::CorruptForward { mask: 0 }.is_unsafe());
        assert!(!FaultKind::ForceConflict.is_unsafe());
        assert!(!FaultKind::DelayMem { cycles: 50 }.is_unsafe());
    }

    #[test]
    fn record_is_deterministic_text() {
        let mut st = FaultState::default();
        st.record(FaultKind::CorruptForward { mask: 0xff }, 42, "node 3");
        assert_eq!(st.fired, ["corrupt-forward(0xff) at cycle 42 (node 3)"]);
    }
}
