//! The cycle-level accelerator simulator.
//!
//! Executes a (compiled) region on the CGRA model for a configured number
//! of invocations under one of three disambiguation backends
//! ([`Backend`]): OPT-LSQ, NACHOS-SW or NACHOS. Invocations are
//! block-atomic (the paper's accelerated paths restrict the execution
//! window); the cache hierarchy stays warm across invocations.
//!
//! The engine is event-driven with resource calendars for the structural
//! hazards that matter: cache ports at the grid edge, LSQ
//! allocation/retirement bandwidth and bank capacity, and the one-per-cycle
//! `==?` comparator arbitration at each MAY site (paper §VII).
//!
//! Alongside timing, the engine performs *functional* execution against a
//! [`DataMemory`] with the shared value semantics of [`crate::value`], so
//! every run can be checked against the in-order reference executor.

use crate::config::{Backend, SimConfig};
use crate::energy::{EnergyBreakdown, EnergyModel, EventCounts};
use crate::error::{DeadlockCause, DeadlockInfo, SimError, StalledNode, WaitForEdge};
use crate::fault::{FaultClass, FaultKind, FaultState};
use crate::value::{apply, LoadObserver};
use nachos_cgra::Placement;
use nachos_ir::{Binding, EdgeKind, MemSpace, NodeId, OpKind, Region};
use nachos_lsq::{BloomStats, LoadSearch, Lsq, StoreSearch};
use nachos_mem::{CacheStats, DataMemory, MemoryHierarchy};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Cycle-weighted stall attribution: how long memory operations sat ready
/// but unable to proceed, bucketed by the resource or ordering mechanism
/// that held them. The differential-sweep harness aggregates these per
/// region so perf work can see *where* each backend loses cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallCounts {
    /// Cycles memory ops waited for their in-order LSQ allocation slot
    /// (OPT-LSQ only: address ready before the port-limited allocator
    /// reached the op's age).
    pub lsq_alloc: u64,
    /// Cycles memory ops spent blocked on an LSQ disambiguation search
    /// (ambiguous older address, or overlapping older op incomplete).
    pub lsq_search: u64,
    /// Cycles fired memory ops waited on MUST/order completion tokens
    /// (includes MAY edges serialized by NACHOS-SW).
    pub token: u64,
    /// Cycles fired memory ops waited on unresolved MAY gates
    /// (NACHOS hardware-check releases).
    pub may_gate: u64,
    /// Cycles `==?` checks waited on the per-site comparator arbiter.
    pub comparator: u64,
    /// Cycles accesses waited for a free cache port at the grid edge.
    pub mem_port: u64,
}

impl StallCounts {
    /// Total attributed stall cycles across all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.lsq_alloc
            + self.lsq_search
            + self.token
            + self.may_gate
            + self.comparator
            + self.mem_port
    }
}

/// The ordering mechanism a blocked memory op is charged against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StallCause {
    LsqSearch,
    Token,
    MayGate,
}

/// The outcome of a simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Backend simulated.
    pub backend: Backend,
    /// Total cycles across all invocations.
    pub cycles: u64,
    /// Invocations executed.
    pub invocations: u64,
    /// Raw event counts.
    pub events: EventCounts,
    /// Cycle-weighted stall attribution.
    pub stalls: StallCounts,
    /// Energy by component.
    pub energy: EnergyBreakdown,
    /// Final functional memory state.
    pub mem: DataMemory,
    /// Digest of every load's observed value.
    pub loads: LoadObserver,
    /// L1 statistics.
    pub l1: CacheStats,
    /// LLC statistics.
    pub llc: CacheStats,
    /// LSQ bloom statistics (OPT-LSQ backend only; zero otherwise).
    pub bloom: BloomStats,
    /// Deterministic descriptions of every injected fault that fired
    /// during the run (empty outside fault-injection runs).
    pub injected: Vec<String>,
}

impl SimResult {
    /// Cycles per invocation.
    #[must_use]
    pub fn cycles_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.cycles as f64 / self.invocations as f64
        }
    }
}

/// A per-cycle bandwidth calendar: `claim(at)` returns the earliest cycle
/// `>= at` with a free slot and consumes it.
#[derive(Clone, Debug)]
struct Calendar {
    width: u32,
    used: HashMap<u64, u32>,
}

impl Calendar {
    fn new(width: u32) -> Self {
        // Invariant: widths come from SimConfig fields that `simulate`
        // rejects (BadConfig) when zero.
        assert!(width > 0, "calendar width validated before construction");
        Self {
            width,
            used: HashMap::new(),
        }
    }

    fn claim(&mut self, at: u64) -> u64 {
        let mut t = at;
        loop {
            let u = self.used.entry(t).or_insert(0);
            if *u < self.width {
                *u += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Drops bookkeeping for cycles before `t`. Invocations are
    /// block-atomic, so entries older than the current invocation's start
    /// can never be claimed again; without pruning, a long sweep grows one
    /// map entry per busy cycle for the whole run.
    fn prune_below(&mut self, t: u64) {
        self.used.retain(|&cycle, _| cycle >= t);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A data or forward payload arrived at `node`.
    Data(NodeId),
    /// An ordering token arrived at `node`.
    Token(NodeId),
    /// One MAY gate of `node` released.
    Release(NodeId),
    /// Re-attempt the memory stage of `node`.
    TryMem(NodeId),
    /// `node` finished (value available / store performed).
    Complete(NodeId),
}

#[derive(Clone, Debug, Default)]
struct NodeState {
    data_pending: u32,
    token_pending: u32,
    may_pending: u32,
    fired: Option<u64>,
    addr_ready: Option<u64>,
    addr: u64,
    size: u8,
    value: u64,
    completed: Option<u64>,
    issued: bool,
    lsq_age: Option<u32>,
    lsq_bound: bool,
    /// First cycle a ready memory stage was observed blocked, with the
    /// mechanism charged for the wait (stall attribution).
    blocked_since: Option<(u64, StallCause)>,
    /// The LSQ-allocation wait was already charged (at most once per op).
    alloc_stall_charged: bool,
}

#[derive(Clone, Debug)]
struct MayEdge {
    older: NodeId,
    younger: NodeId,
    /// Mesh links from the older op's FU to the younger's comparator.
    hops: u32,
    checked: bool,
}

/// Simulates `region` under `backend`.
///
/// For [`Backend::OptLsq`] the region's MDEs are ignored (the LSQ is the
/// ordering mechanism); for the NACHOS backends the region must already
/// carry its MDEs (see [`nachos_alias::compile`]).
///
/// # Errors
///
/// Returns [`SimError`] when the region is invalid, does not fit the grid,
/// the binding is incomplete, the configuration is structurally unusable,
/// or the run deadlocks / violates the token protocol (reachable only
/// under fault injection or on graphs that bypassed validation).
pub fn simulate(
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<SimResult, SimError> {
    nachos_ir::validate_region(region).map_err(SimError::Validation)?;
    if config.mem_ports == 0 {
        return Err(SimError::BadConfig("mem_ports must be positive".into()));
    }
    if config.comparators_per_site == 0 {
        return Err(SimError::BadConfig(
            "comparators_per_site must be positive".into(),
        ));
    }
    if config.lsq.alloc_per_cycle == 0 {
        return Err(SimError::BadConfig(
            "lsq.alloc_per_cycle must be positive".into(),
        ));
    }
    if binding.base_addrs.len() < region.bases.len() {
        return Err(SimError::IncompleteBinding(format!(
            "{} base addresses for {} bases",
            binding.base_addrs.len(),
            region.bases.len()
        )));
    }
    if binding.params.len() < region.params.len() {
        return Err(SimError::IncompleteBinding(
            "missing parameter values".into(),
        ));
    }
    if binding.unknowns.len() < region.num_unknowns {
        return Err(SimError::IncompleteBinding(
            "missing unknown-pointer patterns".into(),
        ));
    }
    let placement = Placement::compute(&region.dfg, config.grid)?;
    let mut engine = Engine::new(region, binding, backend, config, placement);
    for inv in 0..config.invocations {
        engine.run_invocation(inv)?;
    }
    Ok(engine.finish(energy))
}

struct Engine<'a> {
    region: &'a Region,
    binding: &'a Binding,
    backend: Backend,
    config: &'a SimConfig,
    placement: Placement,
    hierarchy: MemoryHierarchy,
    lsq: Lsq,
    mem: DataMemory,
    loads: LoadObserver,
    counts: EventCounts,
    clock: u64,

    // Per-invocation state (rebuilt each invocation).
    state: Vec<NodeState>,
    may_edges: Vec<MayEdge>,
    /// Indices into `may_edges`, per younger node.
    may_in: Vec<Vec<usize>>,
    /// Younger nodes waiting for an older op's completion (conflict case).
    conflict_waiters: Vec<Vec<(NodeId, u32)>>,
    /// Comparator-site calendars, one per MAY-receiving node.
    site_calendar: HashMap<NodeId, Calendar>,
    mem_ports: Calendar,
    /// LSQ ages of ops blocked on a search, re-tried on state changes.
    lsq_blocked: Vec<NodeId>,
    /// Mapping node -> disambiguation age (LSQ mode).
    age_of: HashMap<NodeId, u32>,
    /// Inverse mapping age -> node, rebuilt at allocation time so LSQ
    /// forwards resolve in O(1) instead of scanning `age_of`.
    age_nodes: Vec<NodeId>,
    /// Cycle-weighted stall attribution for the whole run.
    stalls: StallCounts,
    /// Fault-injection opportunity counters and fired-fault log.
    fault: FaultState,
    heap: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    seq: u64,
    lsq_alloc_t0: u64,
    inv: u64,
    iv: Vec<i64>,
    unknown_vals: Vec<u64>,
}

impl<'a> Engine<'a> {
    fn new(
        region: &'a Region,
        binding: &'a Binding,
        backend: Backend,
        config: &'a SimConfig,
        placement: Placement,
    ) -> Self {
        let n = region.dfg.num_nodes();
        Self {
            region,
            binding,
            backend,
            config,
            placement,
            hierarchy: MemoryHierarchy::new(config.hierarchy),
            lsq: Lsq::new(config.lsq),
            mem: DataMemory::new(),
            loads: LoadObserver::new(),
            counts: EventCounts::default(),
            clock: 0,
            state: vec![NodeState::default(); n],
            may_edges: Vec::new(),
            may_in: vec![Vec::new(); n],
            conflict_waiters: vec![Vec::new(); n],
            site_calendar: HashMap::new(),
            mem_ports: Calendar::new(config.mem_ports),
            lsq_blocked: Vec::new(),
            age_of: HashMap::new(),
            age_nodes: Vec::new(),
            stalls: StallCounts::default(),
            fault: FaultState::default(),
            heap: BinaryHeap::new(),
            seq: 0,
            lsq_alloc_t0: 0,
            inv: 0,
            iv: Vec::new(),
            unknown_vals: Vec::new(),
        }
    }

    fn push(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, ev)));
    }

    fn node_kind(&self, n: NodeId) -> &OpKind {
        &self.region.dfg.node(n).kind
    }

    fn is_scratch(&self, n: NodeId) -> bool {
        self.node_kind(n)
            .mem_ref()
            .is_some_and(|m| m.space == MemSpace::Scratchpad)
    }

    fn disambig_ops(&self) -> Vec<NodeId> {
        self.region
            .dfg
            .mem_ops()
            .iter()
            .copied()
            .filter(|&n| {
                self.node_kind(n)
                    .mem_ref()
                    .is_some_and(nachos_ir::MemRef::needs_disambiguation)
            })
            .collect()
    }

    fn run_invocation(&mut self, inv: u64) -> Result<(), SimError> {
        self.inv = inv;
        let t0 = self.clock;
        let nest_total = self.region.loops.total_invocations().max(1);
        self.iv = if self.region.loops.is_empty() {
            Vec::new()
        } else {
            self.region.loops.iteration_vector(inv % nest_total)
        };
        self.unknown_vals = self.binding.unknown_values(inv);

        // Rebuild per-invocation node state.
        let uses_mdes = self.backend.uses_mdes();
        self.may_edges.clear();
        for l in &mut self.may_in {
            l.clear();
        }
        for w in &mut self.conflict_waiters {
            w.clear();
        }
        self.site_calendar.clear();
        self.lsq_blocked.clear();
        for n in self.region.dfg.node_ids() {
            let mut st = NodeState::default();
            for e in self.region.dfg.in_edges(n) {
                // Dependencies between scratchpad accesses are register
                // dataflow the compiler wired explicitly; every backend
                // honours them (the LSQ never sees local accesses).
                let local = self.is_scratch(e.src) && self.is_scratch(e.dst);
                match e.kind {
                    EdgeKind::Data => st.data_pending += 1,
                    EdgeKind::Forward if uses_mdes || local => st.data_pending += 1,
                    EdgeKind::Order if uses_mdes || local => st.token_pending += 1,
                    EdgeKind::May if local => st.token_pending += 1,
                    EdgeKind::May if uses_mdes => match self.backend {
                        Backend::NachosSw => st.token_pending += 1,
                        Backend::Nachos => st.may_pending += 1,
                        Backend::OptLsq => unreachable!(),
                    },
                    _ => {}
                }
            }
            self.state[n.index()] = st;
        }
        if self.backend == Backend::Nachos {
            for e in self.region.dfg.edges() {
                if e.kind == EdgeKind::May && !(self.is_scratch(e.src) && self.is_scratch(e.dst)) {
                    let idx = self.may_edges.len();
                    self.may_edges.push(MayEdge {
                        older: e.src,
                        younger: e.dst,
                        hops: self.placement.hops(e.src, e.dst),
                        checked: false,
                    });
                    self.may_in[e.dst.index()].push(idx);
                    self.site_calendar
                        .entry(e.dst)
                        .or_insert_with(|| Calendar::new(self.config.comparators_per_site));
                }
            }
        }

        // Invocations are block-atomic: no event before t0 can be claimed
        // again, so drop the port calendar's history (unbounded otherwise).
        self.mem_ports.prune_below(t0);

        // OPT-LSQ: allocate entries in program order with port bandwidth.
        self.age_of.clear();
        self.age_nodes.clear();
        if self.backend == Backend::OptLsq {
            self.lsq_alloc_t0 = t0;
            let ops = self.disambig_ops();
            let kinds: Vec<bool> = ops.iter().map(|&n| self.node_kind(n).is_store()).collect();
            self.lsq.begin_invocation(&kinds);
            let apc = u64::from(self.lsq.config().alloc_per_cycle);
            for (age, &node) in ops.iter().enumerate() {
                let cycle = t0 + age as u64 / apc;
                let got = self.lsq.allocate_next(cycle);
                debug_assert_eq!(got, Some(age as u32));
                self.age_of.insert(node, age as u32);
                self.age_nodes.push(node);
                self.state[node.index()].lsq_age = Some(age as u32);
                self.counts.lsq_allocs += 1;
            }
        }

        // Store addresses resolve from index computation, independent of
        // the (possibly late) data operand — like the separate
        // address/data paths of a real LSQ, and like Figure 13's
        // comparator receiving store addresses before the stores execute.
        let agen = self.config.latency.mem_agen;
        let store_nodes: Vec<NodeId> = self
            .region
            .dfg
            .mem_ops()
            .iter()
            .copied()
            .filter(|&n| self.node_kind(n).is_store())
            .collect();
        for &n in &store_nodes {
            let mref = self.node_kind(n).mem_ref().expect("store").clone();
            let ctx = self.binding.eval_ctx(&self.iv, &self.unknown_vals);
            let st = &mut self.state[n.index()];
            st.addr = mref.eval(&ctx);
            st.size = mref.size;
            st.addr_ready = Some(t0 + agen);
        }
        if self.backend == Backend::Nachos {
            for &n in &store_nodes {
                self.propagate_may_addresses(t0 + agen, n);
            }
        }
        if self.backend == Backend::OptLsq {
            // Stores can bind and pre-search as soon as allocated.
            let apc = u64::from(self.lsq.config().alloc_per_cycle);
            for &n in &store_nodes {
                if let Some(age) = self.state[n.index()].lsq_age {
                    let at = (t0 + agen).max(t0 + u64::from(age) / apc);
                    self.push(at, Ev::TryMem(n));
                }
            }
        }

        // Seed source nodes.
        for n in self.region.dfg.node_ids() {
            if self.state[n.index()].data_pending == 0 {
                self.push(t0, Ev::Data(n)); // zero-pending: fires immediately
            }
        }

        // Event loop, under the watchdog's cycle budget. A healthy
        // invocation finishes orders of magnitude below the budget; only
        // a zero-progress hang (e.g. a livelocked retry chain) can reach
        // the deadline.
        let budget = self.config.watchdog.budget(self.region.dfg.num_nodes());
        let deadline = t0.saturating_add(budget);
        while let Some(Reverse((t, _, ev))) = self.heap.pop() {
            debug_assert!(t >= t0);
            if t > deadline {
                return Err(self.deadlock(DeadlockCause::BudgetExhausted, t, budget));
            }
            self.handle(t, ev)?;
        }

        // The heap drained: every node must have completed. A node left
        // incomplete means some gate never opened — a dropped token, a
        // never-released MAY gate — and the run would silently produce
        // partial results. Convert the starvation into a diagnosed
        // deadlock instead.
        if self.state.iter().any(|st| st.completed.is_none()) {
            let at = self.clock;
            return Err(self.deadlock(DeadlockCause::Starved, at, budget));
        }

        // Drain the LSQ so the next invocation can begin (bounded by the
        // same budget: with all nodes complete the drain terminates, but
        // the watchdog guards the loop all the same).
        if self.backend == Backend::OptLsq {
            let mut t = self.clock;
            while !self.lsq.is_drained() {
                if t > deadline {
                    return Err(self.deadlock(DeadlockCause::BudgetExhausted, t, budget));
                }
                self.lsq.retire_ready(t);
                t += 1;
            }
            self.clock = self.clock.max(t);
        }
        // Count this invocation's span; leave one idle cycle between
        // block-atomic invocations.
        self.clock += 1;
        Ok(())
    }

    /// Polls the fault injector at one opportunity of `class`.
    fn poll_fault(&mut self, class: FaultClass) -> Option<FaultKind> {
        self.fault.poll(&self.config.fault, self.backend, class)
    }

    /// Delivers an ordering token to `dst` at `at`, counting the delivery
    /// as a token fault-injection opportunity (drop / duplicate).
    fn push_token(&mut self, at: u64, dst: NodeId) {
        match self.poll_fault(FaultClass::TokenDelivery) {
            Some(FaultKind::DropToken) => {
                self.fault.record(
                    FaultKind::DropToken,
                    at,
                    &format!("token to node {}", dst.index()),
                );
            }
            Some(FaultKind::DuplicateToken) => {
                self.fault.record(
                    FaultKind::DuplicateToken,
                    at,
                    &format!("token to node {}", dst.index()),
                );
                self.push(at, Ev::Token(dst));
                self.push(at, Ev::Token(dst));
            }
            _ => self.push(at, Ev::Token(dst)),
        }
    }

    /// Builds the deadlock diagnostic: every incomplete node with its
    /// outstanding gate counts, plus the wait-for edges among them.
    fn deadlock(&mut self, cause: DeadlockCause, cycle: u64, budget: u64) -> SimError {
        let mut incomplete = vec![false; self.state.len()];
        let mut stalled = Vec::new();
        for n in self.region.dfg.node_ids() {
            let st = &self.state[n.index()];
            if st.completed.is_none() {
                incomplete[n.index()] = true;
                stalled.push(StalledNode {
                    node: n.index(),
                    data_pending: st.data_pending,
                    token_pending: st.token_pending,
                    may_pending: st.may_pending,
                    fired: st.fired.is_some(),
                    issued: st.issued,
                });
            }
        }
        let mut wait_for = Vec::new();
        for n in self.region.dfg.node_ids() {
            if !incomplete[n.index()] {
                continue;
            }
            for e in self.region.dfg.in_edges(n) {
                if incomplete[e.src.index()] {
                    let kind = match e.kind {
                        EdgeKind::Data => "data",
                        EdgeKind::Order => "order",
                        EdgeKind::Forward => "forward",
                        EdgeKind::May => "may",
                    };
                    wait_for.push(WaitForEdge {
                        from: e.src.index(),
                        to: n.index(),
                        kind: kind.into(),
                    });
                }
            }
        }
        SimError::Deadlock(Box::new(DeadlockInfo {
            backend: self.backend,
            invocation: self.inv,
            cycle,
            budget,
            cause,
            stalled,
            wait_for,
            stalls: self.stalls,
            injected: self.fault.fired.clone(),
        }))
    }

    fn handle(&mut self, t: u64, ev: Ev) -> Result<(), SimError> {
        self.clock = self.clock.max(t);
        if let Some(FaultKind::PanicOnEvent) = self.poll_fault(FaultClass::Event) {
            // Deliberate: exercises the sweep harness's per-run panic
            // isolation (`catch_unwind` at the worker boundary).
            panic!("injected fault: panic-on-event at cycle {t} handling {ev:?}");
        }
        match ev {
            Ev::Data(n) => {
                let st = &mut self.state[n.index()];
                if st.fired.is_some() {
                    return Ok(());
                }
                st.data_pending = st.data_pending.saturating_sub(1);
                if st.data_pending == 0 {
                    self.fire(t, n);
                }
            }
            Ev::Token(n) => {
                let backend = self.backend;
                let st = &mut self.state[n.index()];
                match st.token_pending.checked_sub(1) {
                    Some(left) => st.token_pending = left,
                    None => {
                        return Err(SimError::ProtocolViolation {
                            backend,
                            node: n.index(),
                            message: "ordering-token underflow: an extra completion \
                                      token arrived"
                                .into(),
                        });
                    }
                }
                self.push(t, Ev::TryMem(n));
            }
            Ev::Release(n) => {
                let backend = self.backend;
                let st = &mut self.state[n.index()];
                match st.may_pending.checked_sub(1) {
                    Some(left) => st.may_pending = left,
                    None => {
                        return Err(SimError::ProtocolViolation {
                            backend,
                            node: n.index(),
                            message: "MAY-gate release underflow: an extra comparator \
                                      release arrived"
                                .into(),
                        });
                    }
                }
                self.push(t, Ev::TryMem(n));
            }
            Ev::TryMem(n) => self.try_mem(t, n),
            Ev::Complete(n) => self.complete(t, n),
        }
        Ok(())
    }

    /// All data (and forward) operands have arrived: start execution.
    fn fire(&mut self, t: u64, n: NodeId) {
        self.state[n.index()].fired = Some(t);
        let kind = self.node_kind(n).clone();
        match &kind {
            OpKind::Load(_) => {
                // Count address generation as an integer ALU event.
                self.counts.int_ops += 1;
                let mref = kind.mem_ref().expect("mem op");
                let ctx = self.binding.eval_ctx(&self.iv, &self.unknown_vals);
                let addr = mref.eval(&ctx);
                let agen = self.config.latency.mem_agen;
                let st = &mut self.state[n.index()];
                st.addr = addr;
                st.size = mref.size;
                st.addr_ready = Some(t + agen);
                let addr_t = t + agen;
                if self.backend == Backend::Nachos {
                    self.propagate_may_addresses(addr_t, n);
                }
                self.push(addr_t, Ev::TryMem(n));
            }
            OpKind::Store(_) => {
                // Address was resolved at invocation start; firing means
                // the data operand is now available.
                self.counts.int_ops += 1;
                let operands = self.operand_values(n);
                self.state[n.index()].value = apply(&kind, &operands, self.inv);
                if self.backend == Backend::OptLsq {
                    if let Some(age) = self.state[n.index()].lsq_age {
                        if self.state[n.index()].lsq_bound {
                            self.lsq.mark_data_ready(age);
                            self.wake_lsq_blocked(t);
                        }
                    }
                }
                // Forwarding happens from the *in-flight* value: the
                // moment the store's data operand exists, it can be
                // routed to forwarded loads — before the store commits.
                let uses_mdes = self.backend.uses_mdes();
                let fwd: Vec<(NodeId, u32, bool)> = self
                    .region
                    .dfg
                    .out_edges(n)
                    .filter(|e| e.kind == EdgeKind::Forward)
                    .map(|e| {
                        (
                            e.dst,
                            self.placement.hops(e.src, e.dst),
                            self.is_scratch(e.src) && self.is_scratch(e.dst),
                        )
                    })
                    .collect();
                for (dst, hops, local) in fwd {
                    if local {
                        self.counts.data_links += 1;
                        self.push(t + self.config.latency.route_latency(hops), Ev::Data(dst));
                    } else if uses_mdes {
                        self.counts.must_tokens += 1;
                        self.push(t + self.config.latency.route_latency(hops), Ev::Data(dst));
                    }
                }
                let at = self.state[n.index()]
                    .addr_ready
                    .expect("set at start")
                    .max(t);
                self.push(at, Ev::TryMem(n));
            }
            OpKind::Int(_) => {
                self.counts.int_ops += 1;
                let v = apply(&kind, &self.operand_values(n), self.inv);
                self.state[n.index()].value = v;
                self.push(t + self.config.latency.op_latency(&kind), Ev::Complete(n));
            }
            OpKind::Fp(_) => {
                self.counts.fp_ops += 1;
                let v = apply(&kind, &self.operand_values(n), self.inv);
                self.state[n.index()].value = v;
                self.push(t + self.config.latency.op_latency(&kind), Ev::Complete(n));
            }
            OpKind::Input { .. } | OpKind::Const { .. } | OpKind::Output => {
                let v = apply(&kind, &self.operand_values(n), self.inv);
                self.state[n.index()].value = v;
                self.push(t, Ev::Complete(n));
            }
        }
    }

    fn operand_values(&self, n: NodeId) -> Vec<u64> {
        self.region
            .dfg
            .in_edges(n)
            .filter(|e| e.kind == EdgeKind::Data)
            .map(|e| self.state[e.src.index()].value)
            .collect()
    }

    /// NACHOS: the older op's address is now known — wake every MAY edge
    /// it participates in (as older: route the address to the younger's
    /// comparator; as younger: its own checks can begin).
    fn propagate_may_addresses(&mut self, addr_t: u64, n: NodeId) {
        let mut to_check: Vec<usize> = Vec::new();
        for (idx, e) in self.may_edges.iter().enumerate() {
            if e.older == n || e.younger == n {
                to_check.push(idx);
            }
        }
        for idx in to_check {
            self.try_may_check(addr_t, idx);
        }
    }

    /// Performs the `==?` check of one MAY edge if both addresses are
    /// available, honouring the per-site single-comparator arbitration.
    fn try_may_check(&mut self, now: u64, idx: usize) {
        let e = &self.may_edges[idx];
        if e.checked {
            return;
        }
        let (older, younger, hops) = (e.older, e.younger, e.hops);
        let (Some(older_addr_t), Some(younger_addr_t)) = (
            self.state[older.index()].addr_ready,
            self.state[younger.index()].addr_ready,
        ) else {
            return;
        };
        // Address reaches the younger site over the operand network.
        let ready = now
            .max(older_addr_t + self.config.latency.route_latency(hops))
            .max(younger_addr_t);
        let site = self
            .site_calendar
            .get_mut(&younger)
            .expect("site registered for may edge");
        let check_t = site.claim(ready);
        // Cycles the check spent queued behind the site's single comparator.
        self.stalls.comparator += check_t - ready;
        self.may_edges[idx].checked = true;
        self.counts.may_checks += 1;
        let a = (
            self.state[older.index()].addr,
            self.state[older.index()].size,
        );
        let b = (
            self.state[younger.index()].addr,
            self.state[younger.index()].size,
        );
        let mut conflict = a.0 < b.0 + u64::from(b.1) && b.0 < a.0 + u64::from(a.1);
        match self.poll_fault(FaultClass::MayCheck) {
            Some(kind @ FaultKind::ForceNoConflict) => {
                self.fault.record(
                    kind,
                    check_t,
                    &format!("check n{} vs n{}", older.index(), younger.index()),
                );
                conflict = false;
            }
            Some(kind @ FaultKind::ForceConflict) => {
                self.fault.record(
                    kind,
                    check_t,
                    &format!("check n{} vs n{}", older.index(), younger.index()),
                );
                conflict = true;
            }
            _ => {}
        }
        if !conflict {
            self.push(check_t + 1, Ev::Release(younger));
        } else if let Some(done) = self.state[older.index()].completed {
            let release = (done + self.config.latency.route_latency(hops)).max(check_t + 1);
            self.push(release, Ev::Release(younger));
        } else {
            self.conflict_waiters[older.index()].push((younger, hops));
        }
    }

    /// Attempts the memory stage of a load/store. Under OPT-LSQ, stores
    /// may bind and pre-search before their data operand arrives; issuing
    /// to the cache always requires the node to have fired.
    fn try_mem(&mut self, t: u64, n: NodeId) {
        let st = &self.state[n.index()];
        if st.issued {
            return;
        }
        let Some(addr_t) = st.addr_ready else { return };
        if t < addr_t {
            return;
        }
        let fired = st.fired.is_some();
        match self.backend {
            Backend::OptLsq => self.try_mem_lsq(t, n, fired),
            Backend::NachosSw | Backend::Nachos => {
                let st = &self.state[n.index()];
                if !fired || st.token_pending > 0 || st.may_pending > 0 {
                    // A fired op with a ready address is stalled purely by
                    // the ordering mechanism: start the attribution clock.
                    if fired {
                        let cause = if st.token_pending > 0 {
                            StallCause::Token
                        } else {
                            StallCause::MayGate
                        };
                        let st = &mut self.state[n.index()];
                        if st.blocked_since.is_none() {
                            st.blocked_since = Some((t, cause));
                        }
                    }
                    return;
                }
                self.try_mem_dataflow(t, n);
            }
        }
    }

    /// Closes a memory op's stall-attribution window (opened when a ready
    /// op was observed blocked) and charges the recorded mechanism.
    fn charge_block_stall(&mut self, t: u64, n: NodeId) {
        if let Some((since, cause)) = self.state[n.index()].blocked_since.take() {
            let cycles = t.saturating_sub(since);
            match cause {
                StallCause::LsqSearch => self.stalls.lsq_search += cycles,
                StallCause::Token => self.stalls.token += cycles,
                StallCause::MayGate => self.stalls.may_gate += cycles,
            }
        }
    }

    fn has_forward_in(&self, n: NodeId) -> bool {
        self.region
            .dfg
            .in_edges(n)
            .any(|e| e.kind == EdgeKind::Forward)
    }

    fn forward_value(&self, n: NodeId) -> u64 {
        self.region
            .dfg
            .in_edges(n)
            .find(|e| e.kind == EdgeKind::Forward)
            .map(|e| self.state[e.src.index()].value)
            .expect("forward edge present")
    }

    /// NACHOS / NACHOS-SW memory stage: all gates passed, go to memory
    /// (or consume the forwarded value).
    fn try_mem_dataflow(&mut self, t: u64, n: NodeId) {
        self.charge_block_stall(t, n);
        let is_load = self.node_kind(n).is_load();
        if self.is_scratch(n) {
            self.state[n.index()].issued = true;
            self.scratch_access(t, n);
            return;
        }
        if is_load && self.has_forward_in(n) {
            // Memory dependence became a data dependence: no cache access.
            self.state[n.index()].issued = true;
            let mut v = self.forward_value(n);
            if let Some(FaultKind::CorruptForward { mask }) =
                self.poll_fault(FaultClass::ForwardConsume)
            {
                self.fault.record(
                    FaultKind::CorruptForward { mask },
                    t,
                    &format!("forward into node {}", n.index()),
                );
                v ^= mask;
            }
            self.state[n.index()].value = v;
            self.counts.forwards += 1;
            self.record_load(n, v);
            self.push(t + 1, Ev::Complete(n));
            return;
        }
        self.state[n.index()].issued = true;
        self.cache_access(t, n, 0);
    }

    /// OPT-LSQ memory stage: bind, search, then issue/forward.
    fn try_mem_lsq(&mut self, t: u64, n: NodeId, fired: bool) {
        if self.is_scratch(n) {
            // Local accesses bypass the LSQ entirely (the baseline elides
            // them for fairness, §IV Observation 1) — but the compiler's
            // wired scratchpad dependencies (ORDER/MAY token edges from
            // `wire_local_deps`) still gate issue, exactly as they do
            // under the MDE backends.
            let st = &self.state[n.index()];
            if !fired || st.token_pending > 0 || st.may_pending > 0 {
                if fired {
                    let st = &mut self.state[n.index()];
                    if st.blocked_since.is_none() {
                        st.blocked_since = Some((t, StallCause::Token));
                    }
                }
                return;
            }
            self.charge_block_stall(t, n);
            self.state[n.index()].issued = true;
            self.scratch_access(t, n);
            return;
        }
        let age = self.state[n.index()].lsq_age.expect("age assigned");
        let apc = u64::from(self.lsq.config().alloc_per_cycle);
        let alloc_t = self.clock_inv_start() + u64::from(age) / apc;
        if t < alloc_t {
            // Address already resolved (checked by `try_mem`) but the
            // port-limited in-order allocator has not reached this age.
            if !self.state[n.index()].alloc_stall_charged {
                self.stalls.lsq_alloc += alloc_t - t;
                self.state[n.index()].alloc_stall_charged = true;
            }
            self.push(alloc_t, Ev::TryMem(n));
            return;
        }
        if !self.state[n.index()].lsq_bound {
            let (addr, size) = (self.state[n.index()].addr, self.state[n.index()].size);
            self.lsq.bind_address(age, addr, size);
            self.state[n.index()].lsq_bound = true;
            if self.node_kind(n).is_store() && fired {
                self.lsq.mark_data_ready(age);
            }
            // A newly-bound address may unblock others.
            self.wake_lsq_blocked(t);
        }
        let is_store = self.node_kind(n).is_store();
        if is_store {
            match self.lsq.search_store(age) {
                StoreSearch::CanIssue => {
                    // The disambiguation wait (if any) ends here even when
                    // the data operand is still outstanding.
                    self.charge_block_stall(t, n);
                    if !fired {
                        // Search passed (the verdict is monotonic); the
                        // data operand will re-trigger the issue.
                        return;
                    }
                    self.state[n.index()].issued = true;
                    self.cache_access(t, n, 0);
                }
                StoreSearch::Blocked(_) => self.lsq_block(t, n),
            }
        } else {
            match self.lsq.search_load(age) {
                LoadSearch::CanIssue => {
                    self.charge_block_stall(t, n);
                    self.state[n.index()].issued = true;
                    let penalty = self.lsq.config().load_to_use_penalty;
                    self.cache_access(t, n, penalty);
                }
                LoadSearch::Forward(older_age) => {
                    self.charge_block_stall(t, n);
                    self.state[n.index()].issued = true;
                    let older = self.node_of_age(older_age);
                    let mut v = self.state[older.index()].value;
                    if let Some(FaultKind::CorruptForward { mask }) =
                        self.poll_fault(FaultClass::ForwardConsume)
                    {
                        self.fault.record(
                            FaultKind::CorruptForward { mask },
                            t,
                            &format!("LSQ forward into node {}", n.index()),
                        );
                        v ^= mask;
                    }
                    self.state[n.index()].value = v;
                    self.counts.forwards += 1;
                    self.record_load(n, v);
                    let penalty = self.lsq.config().load_to_use_penalty;
                    self.push(t + 1 + penalty, Ev::Complete(n));
                }
                LoadSearch::Blocked(_) => self.lsq_block(t, n),
            }
        }
    }

    /// Records an op blocked by an LSQ search: queues the retry and opens
    /// the stall-attribution window.
    fn lsq_block(&mut self, t: u64, n: NodeId) {
        let st = &mut self.state[n.index()];
        if st.blocked_since.is_none() {
            st.blocked_since = Some((t, StallCause::LsqSearch));
        }
        self.lsq_blocked.push(n);
    }

    fn node_of_age(&self, age: u32) -> NodeId {
        self.age_nodes[age as usize]
    }

    fn clock_inv_start(&self) -> u64 {
        // Allocation reference point: the LSQ began this invocation at the
        // cycle recorded when allocation ran. We reconstruct it from age 0:
        // allocations were driven at t0 + age/apc, so t0 is remembered via
        // the lsq_alloc_t0 field.
        self.lsq_alloc_t0
    }

    fn wake_lsq_blocked(&mut self, t: u64) {
        let blocked = std::mem::take(&mut self.lsq_blocked);
        for n in blocked {
            self.push(t, Ev::TryMem(n));
        }
    }

    /// Performs the scratchpad access: 1-cycle latency, no cache energy.
    fn scratch_access(&mut self, t: u64, n: NodeId) {
        let is_load = self.node_kind(n).is_load();
        let (addr, size) = (self.state[n.index()].addr, self.state[n.index()].size);
        if is_load {
            let v = self.mem.read(addr, size);
            self.state[n.index()].value = v;
            self.record_load(n, v);
        } else {
            let v = self.state[n.index()].value;
            self.mem.write(addr, size, v);
        }
        self.push(t + 1, Ev::Complete(n));
    }

    /// Issues a cache access through the edge ports; performs the
    /// functional read/write at the issue cycle.
    fn cache_access(&mut self, t: u64, n: NodeId, mut extra_latency: u64) {
        if let Some(FaultKind::DelayMem { cycles }) = self.poll_fault(FaultClass::MemResponse) {
            self.fault.record(
                FaultKind::DelayMem { cycles },
                t,
                &format!("response to node {}", n.index()),
            );
            extra_latency += cycles;
        }
        let issue = self.mem_ports.claim(t);
        // Cycles spent queued for an edge memory port.
        self.stalls.mem_port += issue - t;
        let is_load = self.node_kind(n).is_load();
        let (addr, size) = (self.state[n.index()].addr, self.state[n.index()].size);
        let hops = self.placement.hops_to_mem(n);
        // Request + response each traverse the FU<->cache connection once.
        self.counts.mem_links += 2;
        self.counts.l1_accesses += 1;
        let res = self.hierarchy.access(addr, !is_load, issue);
        if is_load {
            let v = self.mem.read(addr, size);
            self.state[n.index()].value = v;
            self.record_load(n, v);
        } else {
            let v = self.state[n.index()].value;
            self.mem.write(addr, size, v);
        }
        let route = self.config.latency.route_latency(hops);
        self.push(res.complete_at + extra_latency + route, Ev::Complete(n));
    }

    fn record_load(&mut self, n: NodeId, v: u64) {
        let slot = self
            .region
            .dfg
            .node(n)
            .mem_slot
            .expect("load has a slot")
            .index();
        self.loads.record(self.inv, slot, v);
    }

    /// A node finished: propagate values, tokens and completion wakeups.
    fn complete(&mut self, t: u64, n: NodeId) {
        if self.state[n.index()].completed.is_some() {
            return;
        }
        self.state[n.index()].completed = Some(t);
        let uses_mdes = self.backend.uses_mdes();
        let edges: Vec<(NodeId, EdgeKind, u32)> = self
            .region
            .dfg
            .out_edges(n)
            .map(|e| (e.dst, e.kind, self.placement.hops(e.src, e.dst)))
            .collect();
        for (dst, kind, hops) in edges {
            let route = self.config.latency.route_latency(hops);
            let local = self.is_scratch(n) && self.is_scratch(dst);
            match kind {
                EdgeKind::Data => {
                    self.counts.data_links += 1;
                    self.push(t + route, Ev::Data(dst));
                }
                // Forward payloads were already sent when the store's
                // value became available (see the Store arm of `fire`).
                EdgeKind::Forward => {}
                // Local (scratchpad) dependencies are register dataflow:
                // honoured everywhere, no MDE energy.
                EdgeKind::Order | EdgeKind::May if local => {
                    self.push_token(t + route, dst);
                }
                EdgeKind::Order if uses_mdes => {
                    self.counts.must_tokens += 1;
                    self.push_token(t + route, dst);
                }
                EdgeKind::May if self.backend == Backend::NachosSw => {
                    // Serialized like MUST: 1-bit completion token.
                    self.counts.must_tokens += 1;
                    self.push_token(t + route, dst);
                }
                _ => {}
            }
        }
        // NACHOS: conflicting younger ops waiting on this completion.
        if self.backend == Backend::Nachos {
            let waiters = std::mem::take(&mut self.conflict_waiters[n.index()]);
            for (younger, hops) in waiters {
                let route = self.config.latency.route_latency(hops);
                self.push(t + route, Ev::Release(younger));
            }
        }
        // OPT-LSQ bookkeeping.
        if self.backend == Backend::OptLsq {
            if let Some(age) = self.state[n.index()].lsq_age {
                self.lsq.mark_completed(age);
                self.lsq.retire_ready(t);
                self.wake_lsq_blocked(t);
            }
        }
    }

    fn finish(self, energy: &EnergyModel) -> SimResult {
        let mut counts = self.counts;
        let lsq_stats = self.lsq.stats();
        let bloom = self.lsq.bloom_stats();
        counts.lsq_bloom_queries = bloom.queries;
        counts.lsq_bloom_hits = bloom.hits;
        counts.lsq_cam_loads = lsq_stats.cam_load_searches;
        counts.lsq_cam_stores = lsq_stats.cam_store_searches;
        counts.lsq_bank_overflows = lsq_stats.bank_overflows;
        let breakdown = EnergyBreakdown::from_events(&counts, energy);
        let injected = self.fault.fired;
        SimResult {
            backend: self.backend,
            cycles: self.clock,
            invocations: self.config.invocations,
            events: counts,
            energy: breakdown,
            mem: self.mem,
            loads: self.loads,
            l1: self.hierarchy.l1_stats(),
            llc: self.hierarchy.llc_stats(),
            bloom,
            stalls: self.stalls,
            injected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_all_backends, run_backend};
    use crate::reference;
    use nachos_ir::{
        AffineExpr, IntOp, LoopInfo, MemRef, Provenance, RegionBuilder, UnknownPattern,
    };

    fn config(invocations: u64) -> SimConfig {
        SimConfig::default().with_invocations(invocations)
    }

    fn check_against_reference(region: &Region, binding: &Binding, invocations: u64) {
        let reference = reference::execute(region, binding, invocations);
        let runs = run_all_backends(
            region,
            binding,
            &config(invocations),
            &EnergyModel::default(),
        )
        .expect("simulation succeeds");
        for run in &runs {
            assert_eq!(
                run.sim.mem, reference.mem,
                "{}: final memory state diverged",
                run.sim.backend
            );
            assert_eq!(
                run.sim.loads.digest(),
                reference.loads.digest(),
                "{}: load observations diverged",
                run.sim.backend
            );
        }
    }

    /// st A; ld A; st A — classic forwarding + ordering chain.
    #[test]
    fn ordering_chain_matches_reference() {
        let mut b = RegionBuilder::new("chain");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        b.store(m.clone(), &[x]);
        let ld = b.load(m.clone(), &[]);
        let y = b.int_op(IntOp::Add, &[ld]);
        b.store(m, &[y]);
        let region = b.finish();
        let binding = Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        };
        check_against_reference(&region, &binding, 5);
    }

    /// MAY aliases through unknown pointers that sometimes truly conflict.
    #[test]
    fn dynamic_conflicts_match_reference() {
        let mut b = RegionBuilder::new("may");
        let u0 = b.unknown_ptr();
        let u1 = b.unknown_ptr();
        let x = b.input();
        b.store(MemRef::unknown(u0, 0), &[x]);
        b.load(MemRef::unknown(u1, 0), &[]);
        let region = b.finish();
        // Scatter in a tiny window so real conflicts happen across
        // invocations.
        let binding = Binding {
            base_addrs: vec![],
            params: vec![],
            unknowns: vec![
                UnknownPattern::Scatter {
                    seed: 1,
                    lo: 0x1000,
                    hi: 0x1040,
                    align: 8,
                },
                UnknownPattern::Scatter {
                    seed: 2,
                    lo: 0x1000,
                    hi: 0x1040,
                    align: 8,
                },
            ],
        };
        check_against_reference(&region, &binding, 40);
    }

    /// Loop-carried walk over two arrays with provenance-resolvable args.
    #[test]
    fn strided_arrays_match_reference() {
        let mut b = RegionBuilder::new("stride");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 16));
        let a0 = b.arg(0, Provenance::Object(1));
        let a1 = b.arg(1, Provenance::Object(2));
        let ld = b.load(MemRef::affine(a0, AffineExpr::var(i).scaled(8)), &[]);
        let v = b.int_op(IntOp::Mul, &[ld]);
        b.store(MemRef::affine(a1, AffineExpr::var(i).scaled(8)), &[v]);
        let region = b.finish();
        let binding = Binding {
            base_addrs: vec![0x1_0000, 0x2_0000],
            ..Binding::default()
        };
        check_against_reference(&region, &binding, 16);
    }

    /// NACHOS must beat NACHOS-SW when MAY edges never truly conflict.
    #[test]
    fn nachos_recovers_parallelism_from_false_mays() {
        let mut b = RegionBuilder::new("false-may");
        let u0 = b.unknown_ptr();
        let u1 = b.unknown_ptr();
        let x = b.input();
        // Older store through an unknown pointer, then a chain of loads
        // that MAY-alias it but never actually do.
        b.store(MemRef::unknown(u0, 0), &[x]);
        for k in 0..6 {
            let ld = b.load(MemRef::unknown(u1, k * 64), &[]);
            b.int_op(IntOp::Add, &[ld]);
        }
        let region = b.finish();
        let binding = Binding {
            unknowns: vec![
                UnknownPattern::Fixed(0x10_0000),
                UnknownPattern::Fixed(0x20_0000),
            ],
            ..Binding::default()
        };
        let cfg = config(8);
        let em = EnergyModel::default();
        let sw = run_backend(&region, &binding, Backend::NachosSw, &cfg, &em).unwrap();
        let hw = run_backend(&region, &binding, Backend::Nachos, &cfg, &em).unwrap();
        assert!(
            hw.sim.cycles < sw.sim.cycles,
            "NACHOS ({}) should beat NACHOS-SW ({})",
            hw.sim.cycles,
            sw.sim.cycles
        );
        assert!(hw.sim.events.may_checks > 0, "checks actually ran");
        check_against_reference(&region, &binding, 8);
    }

    /// Independent loads: the LSQ's in-order allocation and load-to-use
    /// penalty should cost cycles relative to NACHOS-SW.
    #[test]
    fn lsq_penalty_on_independent_loads() {
        let mut b = RegionBuilder::new("indep");
        for k in 0..8u32 {
            let g = b.global(&format!("g{k}"), 64, k);
            let ld = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
            b.int_op(IntOp::Add, &[ld]);
        }
        let region = b.finish();
        let binding = Binding {
            base_addrs: (0..8).map(|k| 0x1_0000 + k * 0x1000).collect(),
            ..Binding::default()
        };
        let cfg = config(8);
        let em = EnergyModel::default();
        let lsq = run_backend(&region, &binding, Backend::OptLsq, &cfg, &em).unwrap();
        let sw = run_backend(&region, &binding, Backend::NachosSw, &cfg, &em).unwrap();
        assert!(
            sw.sim.cycles < lsq.sim.cycles,
            "NACHOS-SW ({}) should beat OPT-LSQ ({}) here",
            sw.sim.cycles,
            lsq.sim.cycles
        );
        check_against_reference(&region, &binding, 8);
    }

    /// Energy: fully-resolved workloads impose no MDE energy under NACHOS
    /// while the LSQ still pays per-op costs.
    #[test]
    fn energy_shape_for_resolved_region() {
        let mut b = RegionBuilder::new("resolved");
        let g0 = b.global("a", 64, 0);
        let g1 = b.global("b", 64, 1);
        let x = b.input();
        b.store(MemRef::affine(g0, AffineExpr::zero()), &[x]);
        b.load(MemRef::affine(g1, AffineExpr::zero()), &[]);
        let region = b.finish();
        let binding = Binding {
            base_addrs: vec![0x1_0000, 0x2_0000],
            ..Binding::default()
        };
        let cfg = config(4);
        let em = EnergyModel::default();
        let hw = run_backend(&region, &binding, Backend::Nachos, &cfg, &em).unwrap();
        assert_eq!(hw.sim.energy.mde, 0.0, "no MAY/MUST edges survive");
        let lsq = run_backend(&region, &binding, Backend::OptLsq, &cfg, &em).unwrap();
        assert!(lsq.sim.energy.lsq() > 0.0);
        assert_eq!(hw.sim.energy.lsq(), 0.0);
    }

    /// Scratchpad accesses bypass both the LSQ and the cache.
    #[test]
    fn scratchpad_bypasses_cache_and_lsq() {
        use nachos_ir::MemSpace;
        let mut b = RegionBuilder::new("scratch");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero()).with_space(MemSpace::Scratchpad);
        let x = b.input();
        b.store(m.clone(), &[x]);
        b.load(m, &[]);
        let region = b.finish();
        let binding = Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        };
        let cfg = config(2);
        let em = EnergyModel::default();
        for backend in Backend::ALL {
            let run = run_backend(&region, &binding, backend, &cfg, &em).unwrap();
            assert_eq!(run.sim.events.l1_accesses, 0, "{backend}: no cache traffic");
            assert_eq!(run.sim.l1.accesses(), 0);
        }
        check_against_reference(&region, &binding, 2);
    }

    /// Store-to-load forwarding is used by both schemes and skips the L1.
    #[test]
    fn forwarding_skips_cache() {
        let mut b = RegionBuilder::new("fwd");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        b.store(m.clone(), &[x]);
        b.load(m, &[]);
        let region = b.finish();
        let binding = Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        };
        let cfg = config(3);
        let em = EnergyModel::default();
        for backend in Backend::ALL {
            let run = run_backend(&region, &binding, backend, &cfg, &em).unwrap();
            assert_eq!(
                run.sim.events.forwards, 3,
                "{backend}: one forward per invocation"
            );
            // Only the store touches the cache.
            assert_eq!(run.sim.events.l1_accesses, 3, "{backend}");
        }
        check_against_reference(&region, &binding, 3);
    }

    #[test]
    fn incomplete_binding_is_rejected() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let region = b.finish();
        let err = simulate(
            &region,
            &Binding::default(),
            Backend::Nachos,
            &config(1),
            &EnergyModel::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::IncompleteBinding(_)));
        assert!(err.to_string().contains("base"));
    }

    #[test]
    fn cycles_scale_with_invocations() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let region = b.finish();
        let binding = Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        };
        let em = EnergyModel::default();
        let one = simulate(&region, &binding, Backend::Nachos, &config(1), &em).unwrap();
        let four = simulate(&region, &binding, Backend::Nachos, &config(4), &em).unwrap();
        assert!(four.cycles > one.cycles);
        assert_eq!(four.invocations, 4);
        assert!(
            four.cycles_per_invocation() < one.cycles_per_invocation() * 1.5,
            "warm cache should not inflate per-invocation cost"
        );
    }

    /// Regression guard for `try_may_check`'s byte-overlap test: accesses
    /// of different sizes that only *partially* overlap (no shared start
    /// address) must still be detected as conflicts and released in order.
    #[test]
    fn partial_byte_overlap_conflicts_match_reference() {
        let mut b = RegionBuilder::new("overlap");
        let u0 = b.unknown_ptr();
        let u1 = b.unknown_ptr();
        let x = b.input();
        // 8-byte store vs 2-byte load on 2-byte alignment: most dynamic
        // conflicts straddle the store rather than aligning with it.
        b.store(MemRef::unknown(u0, 0), &[x]);
        b.load(MemRef::unknown(u1, 0).with_size(2), &[]);
        let region = b.finish();
        let binding = Binding {
            unknowns: vec![
                UnknownPattern::Scatter {
                    seed: 11,
                    lo: 0x1000,
                    hi: 0x1020,
                    align: 8,
                },
                UnknownPattern::Scatter {
                    seed: 12,
                    lo: 0x1000,
                    hi: 0x1020,
                    align: 2,
                },
            ],
            ..Binding::default()
        };
        let run = run_backend(
            &region,
            &binding,
            Backend::Nachos,
            &config(48),
            &EnergyModel::default(),
        )
        .unwrap();
        assert!(run.sim.events.may_checks > 0, "the `==?` path actually ran");
        check_against_reference(&region, &binding, 48);
    }

    /// Regression guard for the OPT-LSQ store pre-search/data-ready
    /// handshake: a store whose address resolves long before its data
    /// (behind a deep compute chain) must not issue early, and the younger
    /// load must still observe its value (via forwarding).
    #[test]
    fn store_presearch_waits_for_late_data() {
        let mut b = RegionBuilder::new("late-data");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let mut v = b.input();
        for _ in 0..12 {
            v = b.int_op(IntOp::Mul, &[v]);
        }
        b.store(m.clone(), &[v]);
        b.load(m, &[]);
        let region = b.finish();
        let binding = Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        };
        let run = run_backend(
            &region,
            &binding,
            Backend::OptLsq,
            &config(4),
            &EnergyModel::default(),
        )
        .unwrap();
        assert_eq!(run.sim.events.forwards, 4, "one forward per invocation");
        check_against_reference(&region, &binding, 4);
    }

    /// Regression guard for `forward_value` timing: with the forwarded
    /// store's value arriving late, every backend's load must observe the
    /// same (current-invocation) value as the reference.
    #[test]
    fn forward_value_uses_current_invocation_data() {
        let mut b = RegionBuilder::new("fwd-timing");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let mut v = b.input();
        for _ in 0..8 {
            v = b.int_op(IntOp::Add, &[v]);
        }
        b.store(m.clone(), &[v]);
        let ld = b.load(m.clone(), &[]);
        let w = b.int_op(IntOp::Add, &[ld]);
        b.store(m, &[w]);
        let region = b.finish();
        let binding = Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        };
        check_against_reference(&region, &binding, 6);
    }

    /// The port calendar stays bounded: pruning drops reservations below
    /// the new invocation's start, and claims still respect the width.
    #[test]
    fn calendar_prunes_and_keeps_width() {
        let mut c = Calendar::new(2);
        for t in 0..1000 {
            assert_eq!(c.claim(t), t);
            assert_eq!(c.claim(t), t); // width 2: same cycle twice
        }
        assert_eq!(c.used.len(), 1000);
        c.prune_below(990);
        assert_eq!(c.used.len(), 10);
        // Cycles 990..1000 are all full; the claim spills past them.
        assert_eq!(c.claim(990), 1000);
        // Pruned cycles can be claimed again, but block-atomic invocations
        // never go back in time, so that's unreachable in the engine.
        assert_eq!(c.claim(0), 0);
    }

    /// Regression test for the OPT-LSQ scratchpad ordering bug: a
    /// scratchpad store and load that MAY-alias (same slot on one loop
    /// iteration only) get a compiler-wired local ordering edge, and
    /// `try_mem_lsq`'s bypass path used to issue the load without
    /// honouring it — the load could read the scratchpad before the
    /// conflicting store committed.
    #[test]
    fn optlsq_honours_wired_scratchpad_ordering() {
        use nachos_ir::MemSpace;
        let mut b = RegionBuilder::new("sp-order");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 4));
        let sp = b.global("sp", 256, 0);
        let x = b.input();
        // st sp[i*8]; ld sp[8]: they collide only when i == 1, so the
        // wired dependence is MAY (a token edge), not FORWARD.
        b.store(
            MemRef::affine(sp, AffineExpr::var(i).scaled(8)).with_space(MemSpace::Scratchpad),
            &[x],
        );
        b.load(
            MemRef::affine(sp, AffineExpr::constant_expr(8)).with_space(MemSpace::Scratchpad),
            &[],
        );
        let region = b.finish();
        let binding = Binding {
            base_addrs: vec![0x2_0000],
            ..Binding::default()
        };
        check_against_reference(&region, &binding, 6);
    }

    /// Stall attribution: each backend only charges its own mechanisms,
    /// and a memory-port-starved region reports mem-port stalls.
    #[test]
    fn stall_attribution_is_backend_consistent() {
        let mut b = RegionBuilder::new("stalls");
        // Unknown-pointer store + loads => MAY edges (token/may-gate
        // stalls under the MDE backends, search stalls under the LSQ).
        let u0 = b.unknown_ptr();
        let u1 = b.unknown_ptr();
        let x = b.input();
        b.store(MemRef::unknown(u0, 0), &[x]);
        for k in 0..6 {
            b.load(MemRef::unknown(u1, k * 8), &[]);
        }
        let region = b.finish();
        let binding = Binding {
            unknowns: vec![
                UnknownPattern::Scatter {
                    seed: 3,
                    lo: 0x1000,
                    hi: 0x1040,
                    align: 8,
                },
                UnknownPattern::Scatter {
                    seed: 4,
                    lo: 0x1000,
                    hi: 0x1040,
                    align: 8,
                },
            ],
            ..Binding::default()
        };
        let mut cfg = config(16);
        cfg.mem_ports = 1; // starve the edge ports
        let em = EnergyModel::default();
        let lsq = run_backend(&region, &binding, Backend::OptLsq, &cfg, &em).unwrap();
        assert_eq!(lsq.sim.stalls.token, 0);
        assert_eq!(lsq.sim.stalls.may_gate, 0);
        assert_eq!(lsq.sim.stalls.comparator, 0);
        let sw = run_backend(&region, &binding, Backend::NachosSw, &cfg, &em).unwrap();
        assert_eq!(sw.sim.stalls.lsq_alloc, 0);
        assert_eq!(sw.sim.stalls.lsq_search, 0);
        assert_eq!(sw.sim.stalls.comparator, 0);
        assert!(
            sw.sim.stalls.token > 0,
            "serialized MAY edges stall on tokens"
        );
        let hw = run_backend(&region, &binding, Backend::Nachos, &cfg, &em).unwrap();
        assert_eq!(hw.sim.stalls.lsq_alloc, 0);
        assert_eq!(hw.sim.stalls.lsq_search, 0);
        for run in [&lsq, &sw, &hw] {
            assert!(
                run.sim.stalls.mem_port > 0,
                "{}: one port over 7 memory ops must queue",
                run.sim.backend
            );
            assert_eq!(
                run.sim.stalls.total(),
                run.sim.stalls.lsq_alloc
                    + run.sim.stalls.lsq_search
                    + run.sim.stalls.token
                    + run.sim.stalls.may_gate
                    + run.sim.stalls.comparator
                    + run.sim.stalls.mem_port
            );
        }
    }
}
