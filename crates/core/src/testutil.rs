//! Shared test scaffolding: reference-parity assertions and the random
//! region blueprints used by the unit, integration and property suites.
//!
//! Everything here is deterministic and allocation-light; it lives in the
//! library (rather than a `tests/` helper) so the engine's unit tests,
//! the sweep's self-tests, the bench crate and the repository-level
//! integration/property suites all build the same regions the same way
//! instead of carrying copy-pasted builders.

use crate::config::SimConfig;
use crate::driver::run_all_backends;
use crate::energy::EnergyModel;
use crate::reference;
use nachos_ir::{
    AffineExpr, Binding, IntOp, LoopInfo, MemRef, MemSpace, Provenance, Region, RegionBuilder,
    UnknownPattern,
};

/// The default configuration with a test-sized invocation count.
#[must_use]
pub fn sim_config(invocations: u64) -> SimConfig {
    SimConfig::default().with_invocations(invocations)
}

/// Runs every paper backend on `region` and asserts the final memory
/// state and per-load observations match the in-order reference executor.
///
/// # Panics
///
/// Panics when a backend fails to simulate or diverges from the
/// reference.
pub fn check_against_reference(region: &Region, binding: &Binding, invocations: u64) {
    let expected = reference::execute(region, binding, invocations);
    let runs = run_all_backends(
        region,
        binding,
        &sim_config(invocations),
        &EnergyModel::default(),
    )
    .expect("simulation succeeds");
    for run in &runs {
        assert_eq!(
            run.sim.mem, expected.mem,
            "{}: final memory state diverged",
            run.sim.backend
        );
        assert_eq!(
            run.sim.loads.digest(),
            expected.loads.digest(),
            "{}: load observations diverged",
            run.sim.backend
        );
    }
}

/// The canonical two-op demo region (`st g[0]; ld g[0]` on one 64-byte
/// global bound at `0x1_0000`) used by sweep and bench smoke tests.
#[must_use]
pub fn store_load_region(name: &str) -> (Region, Binding) {
    let mut b = RegionBuilder::new(name);
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero());
    let x = b.input();
    b.store(m.clone(), &[x]);
    b.load(m, &[]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1_0000],
        ..Binding::default()
    };
    (region, binding)
}

/// Blueprint for one random memory operation in a generated region.
#[derive(Clone, Debug)]
pub struct OpPlan {
    /// `true` = store, `false` = load.
    pub is_store: bool,
    /// Which object it targets: `0..3` = globals/args, `3..5` = unknown
    /// pointers, `5` = the scratchpad object (only meaningful with
    /// [`build_plan_region_with_scratchpad`]).
    pub target: usize,
    /// Slot within the object (small so collisions are common).
    pub slot: i64,
    /// Whether the op is strided by the loop IV.
    pub strided: bool,
}

fn push_plan_op(
    b: &mut RegionBuilder,
    plan: &OpPlan,
    mref: MemRef,
    carried: nachos_ir::NodeId,
) -> nachos_ir::NodeId {
    if plan.is_store {
        b.store(mref, &[carried])
    } else {
        b.load(mref, &[])
    }
}

/// Builds the property-test region: a 4-iteration loop over two 4KiB
/// globals, a provenance-resolvable arg and two unknown pointers whose
/// windows overlap the globals (so real conflicts occur). Targets `>= 5`
/// are clamped into the unknown-pointer range.
#[must_use]
pub fn build_plan_region(ops: &[OpPlan]) -> (Region, Binding) {
    let mut b = RegionBuilder::new("prop");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 4));
    let g0 = b.global("g0", 4096, 0);
    let g1 = b.global("g1", 4096, 1);
    let a0 = b.arg(0, Provenance::Object(7));
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let bases = [g0, g1, a0];
    let x = b.input();
    let mut carried = x;
    for plan in ops {
        let mref = if plan.target < 3 {
            let mut off = AffineExpr::constant_expr(plan.slot * 8);
            if plan.strided {
                off = off.add(&AffineExpr::var(i).scaled(8));
            }
            MemRef::affine(bases[plan.target], off)
        } else {
            let u = if plan.target == 3 { u0 } else { u1 };
            MemRef::unknown(u, plan.slot * 8)
        };
        let node = push_plan_op(&mut b, plan, mref, carried);
        if !plan.is_store {
            carried = b.int_op(IntOp::Add, &[node, carried]);
        }
    }
    b.output(carried);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1000, 0x2000, 0x3000],
        params: Vec::new(),
        // Overlapping windows covering the globals: real conflicts occur.
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 11,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
            UnknownPattern::Stride {
                base: 0x2000,
                step: 8,
            },
        ],
    };
    (region, binding)
}

/// Like [`build_plan_region`], but target 5 is a scratchpad object
/// (bypasses the LSQ and the cache in every scheme) and the unknown
/// windows scatter across the global footprint, so LSQ-tracked,
/// MAY-checked and local traffic interleave in one region.
#[must_use]
pub fn build_plan_region_with_scratchpad(ops: &[OpPlan]) -> (Region, Binding) {
    let mut b = RegionBuilder::new("prop-sp");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 4));
    let g0 = b.global("g0", 4096, 0);
    let g1 = b.global("g1", 4096, 1);
    let a0 = b.arg(0, Provenance::Object(7));
    let sp = b.global("sp", 256, 3);
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let bases = [g0, g1, a0];
    let x = b.input();
    let mut carried = x;
    for plan in ops {
        let mref = if plan.target < 3 {
            let mut off = AffineExpr::constant_expr(plan.slot * 8);
            if plan.strided {
                off = off.add(&AffineExpr::var(i).scaled(8));
            }
            MemRef::affine(bases[plan.target], off)
        } else if plan.target < 5 {
            let u = if plan.target == 3 { u0 } else { u1 };
            MemRef::unknown(u, plan.slot * 8)
        } else {
            let mut off = AffineExpr::constant_expr(plan.slot * 8);
            if plan.strided {
                off = off.add(&AffineExpr::var(i).scaled(8));
            }
            MemRef::affine(sp, off).with_space(MemSpace::Scratchpad)
        };
        let node = push_plan_op(&mut b, plan, mref, carried);
        if !plan.is_store {
            carried = b.int_op(IntOp::Add, &[node, carried]);
        }
    }
    b.output(carried);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1000, 0x2000, 0x3000, 0x2_0000],
        params: Vec::new(),
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 21,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
            UnknownPattern::Scatter {
                seed: 22,
                lo: 0x2000,
                hi: 0x2040,
                align: 8,
            },
        ],
    };
    (region, binding)
}
