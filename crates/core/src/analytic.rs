//! The paper's appendix model: limits of decentralized checking.
//!
//! For `N` memory operations, an LSQ spends `TOT_lsq = N · E_lsq` while
//! NACHOS spends `TOT_nachos ≈ Pairs_MAY · E_MAY` (NO pairs are free and
//! MUST pairs are single-bit, so both terms vanish). The ratio
//!
//! ```text
//!   TOT_nachos / TOT_lsq = (Pairs_MAY / N) · (E_MAY / E_lsq)
//! ```
//!
//! makes decentralized checking profitable whenever the average number of
//! MAY parents per memory operation is below `E_lsq / E_MAY` (≈ 6 with the
//! paper's conservative 500 fJ comparator vs 3000 fJ LSQ check).

/// Inputs of the appendix energy model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecentralizedModel {
    /// Energy per MAY-alias comparator check, femtojoules (paper: 500).
    pub e_may: f64,
    /// Energy per 1-to-N LSQ check, femtojoules (paper: 3000).
    pub e_lsq: f64,
}

impl Default for DecentralizedModel {
    fn default() -> Self {
        Self {
            e_may: 500.0,
            e_lsq: 3000.0,
        }
    }
}

impl DecentralizedModel {
    /// `E_lsq / E_MAY`: the break-even number of MAY parents per memory
    /// operation (paper: 6).
    #[must_use]
    pub fn breakeven_may_per_op(&self) -> f64 {
        self.e_lsq / self.e_may
    }

    /// `TOT_nachos / TOT_lsq` for a region with `num_ops` memory
    /// operations and `may_pairs` enforced MAY relations.
    ///
    /// # Panics
    ///
    /// Panics if `num_ops` is zero.
    #[must_use]
    pub fn energy_ratio(&self, may_pairs: usize, num_ops: usize) -> f64 {
        assert!(num_ops > 0, "region without memory operations");
        (may_pairs as f64 / num_ops as f64) * (self.e_may / self.e_lsq)
    }

    /// `true` when NACHOS spends less disambiguation energy than the LSQ
    /// for the given region shape.
    #[must_use]
    pub fn profitable(&self, may_pairs: usize, num_ops: usize) -> bool {
        self.energy_ratio(may_pairs, num_ops) < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_breakeven_is_six() {
        let m = DecentralizedModel::default();
        assert!((m.breakeven_may_per_op() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_matches_formula() {
        let m = DecentralizedModel::default();
        // 12 MAY pairs over 4 ops: 3 per op -> ratio 0.5.
        assert!((m.energy_ratio(12, 4) - 0.5).abs() < 1e-12);
        assert!(m.profitable(12, 4));
        // 24 MAY pairs over 4 ops: 6 per op -> break-even (not strictly
        // profitable).
        assert!(!m.profitable(24, 4));
    }

    #[test]
    fn zero_mays_is_free() {
        let m = DecentralizedModel::default();
        assert_eq!(m.energy_ratio(0, 10), 0.0);
        assert!(m.profitable(0, 10));
    }

    #[test]
    #[should_panic(expected = "without memory operations")]
    fn zero_ops_panics() {
        let _ = DecentralizedModel::default().energy_ratio(1, 0);
    }
}
