//! Deterministic value semantics shared by the cycle simulator and the
//! in-order reference executor.
//!
//! The reproduction checks *memory-ordering correctness*, not numerics, so
//! compute nodes evaluate a fixed pseudo-function of their operands: any
//! deterministic, operand-order-sensitive fold works, because both the
//! timing engine and the reference executor use the same one — a
//! discrepancy in any load's observed value or in the final memory state
//! then pinpoints an ordering violation.

use nachos_ir::{OpKind, Region};

/// Mixes one operand into an accumulator (order-sensitive).
#[must_use]
pub fn fold(acc: u64, operand: u64) -> u64 {
    acc.rotate_left(7)
        .wrapping_mul(0x100_0000_01b3)
        .wrapping_add(operand ^ 0x9e37_79b9_7f4a_7c15)
}

/// The value an [`OpKind::Input`] node produces at a given invocation.
#[must_use]
pub fn input_value(index: u32, invocation: u64) -> u64 {
    fold(
        fold(0xcbf2_9ce4_8422_2325, u64::from(index) + 1),
        invocation,
    )
}

/// Evaluates a non-memory node from its operand values (in operand order).
/// Loads take their value from memory/forwarding and are not handled here.
///
/// # Panics
///
/// Panics when called with a load node.
#[must_use]
pub fn apply(kind: &OpKind, operands: &[u64], invocation: u64) -> u64 {
    match kind {
        OpKind::Input { index } => input_value(*index, invocation),
        OpKind::Const { value } => *value,
        OpKind::Int(_) | OpKind::Fp(_) | OpKind::Store(_) | OpKind::Output => {
            operands.iter().fold(0x8422_2325, |acc, &v| fold(acc, v))
        }
        OpKind::Load(_) => panic!("loads take their value from memory"),
    }
}

/// The order in which nodes must be evaluated so that memory operations
/// execute in program order: a topological sort over data edges with the
/// memory-slot chain added as virtual edges. Returns `None` if the region
/// is not a valid sequential trace (i.e. the combined order is cyclic).
#[must_use]
pub fn sequential_order(region: &Region) -> Option<Vec<nachos_ir::NodeId>> {
    use nachos_ir::EdgeKind;
    let dfg = &region.dfg;
    let n = dfg.num_nodes();
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in dfg.edges() {
        if e.kind == EdgeKind::Data {
            succ[e.src.index()].push(e.dst.index());
            indeg[e.dst.index()] += 1;
        }
    }
    for w in dfg.mem_ops().windows(2) {
        succ[w[0].index()].push(w[1].index());
        indeg[w[1].index()] += 1;
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    // Deterministic: lowest node id first.
    ready.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(n);
    while let Some(i) = ready.pop() {
        order.push(nachos_ir::NodeId::new(i));
        for &s in &succ[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                let pos = ready.binary_search_by(|&x| s.cmp(&x)).unwrap_or_else(|p| p);
                ready.insert(pos, s);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// An order-insensitive-in-time but content-sensitive accumulator for load
/// observations: both executors record `(invocation, slot, value)` triples
/// keyed deterministically, so equal hashes mean equal observed values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadObserver {
    hash: u64,
    count: u64,
}

impl LoadObserver {
    /// A fresh observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one load observation.
    pub fn record(&mut self, invocation: u64, slot: usize, value: u64) {
        // Commutative combine (sum of per-triple hashes) because the two
        // executors observe loads in different time orders.
        let h = fold(fold(fold(0x1234_5678, invocation), slot as u64), value);
        self.hash = self.hash.wrapping_add(h.wrapping_mul(0x9e37_79b9));
        self.count += 1;
    }

    /// The digest of all observations.
    #[must_use]
    pub fn digest(&self) -> (u64, u64) {
        (self.hash, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::{AffineExpr, IntOp, MemRef, RegionBuilder};

    #[test]
    fn fold_is_order_sensitive() {
        assert_ne!(fold(fold(0, 1), 2), fold(fold(0, 2), 1));
    }

    #[test]
    fn input_values_vary_by_index_and_invocation() {
        assert_ne!(input_value(0, 0), input_value(1, 0));
        assert_ne!(input_value(0, 0), input_value(0, 1));
        assert_eq!(input_value(3, 7), input_value(3, 7));
    }

    #[test]
    fn apply_consts_and_compute() {
        assert_eq!(apply(&OpKind::Const { value: 42 }, &[], 0), 42);
        let a = apply(&OpKind::Int(IntOp::Add), &[1, 2], 0);
        let b = apply(&OpKind::Int(IntOp::Add), &[2, 1], 0);
        assert_ne!(a, b);
        // Same inputs, same value regardless of invocation for compute.
        assert_eq!(a, apply(&OpKind::Int(IntOp::Add), &[1, 2], 9));
    }

    #[test]
    #[should_panic(expected = "memory")]
    fn apply_rejects_loads() {
        let mem = MemRef::affine(nachos_ir::BaseId::new(0), AffineExpr::zero());
        let _ = apply(&OpKind::Load(mem), &[], 0);
    }

    #[test]
    fn sequential_order_interleaves_mem_chain() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let st = b.store(m.clone(), &[]);
        let ld = b.load(m, &[]);
        let r = b.finish();
        let order = sequential_order(&r).unwrap();
        let pos = |n: nachos_ir::NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(st) < pos(ld), "mem ops follow program order");
    }

    #[test]
    fn load_observer_is_time_order_insensitive() {
        let mut a = LoadObserver::new();
        a.record(0, 1, 99);
        a.record(1, 0, 7);
        let mut b = LoadObserver::new();
        b.record(1, 0, 7);
        b.record(0, 1, 99);
        assert_eq!(a.digest(), b.digest());
        let mut c = LoadObserver::new();
        c.record(0, 1, 98);
        c.record(1, 0, 7);
        assert_ne!(a.digest(), c.digest(), "value change must show");
    }
}
