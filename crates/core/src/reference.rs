//! In-order reference executor — the ground truth for memory ordering.
//!
//! Executes the region sequentially (memory operations in strict program
//! order) with the shared value semantics of [`crate::value`]. Every
//! backend of the cycle simulator must reproduce this executor's final
//! memory state and load observations exactly; the integration and
//! property tests enforce that.

use crate::config::CancelToken;
use crate::value::{apply, sequential_order, LoadObserver};
use nachos_ir::{Binding, EdgeKind, NodeId, OpKind, Region};
use nachos_mem::DataMemory;

/// Output of a reference execution.
#[derive(Clone, Debug, PartialEq)]
pub struct ReferenceResult {
    /// Final memory contents.
    pub mem: DataMemory,
    /// Digest of every load's observed value.
    pub loads: LoadObserver,
}

/// Runs `invocations` sequential executions of the region.
///
/// Iteration vectors follow the enclosing loop nest in lexicographic
/// order, wrapping around if `invocations` exceeds the nest's trip count.
///
/// # Panics
///
/// Panics if the region is not a valid sequential trace (cyclic once the
/// program-order memory chain is added) or the binding is incomplete.
#[must_use]
pub fn execute(region: &Region, binding: &Binding, invocations: u64) -> ReferenceResult {
    execute_cancellable(region, binding, invocations, None).expect("no token to cancel on")
}

/// Like [`execute`], but polling `cancel` once per invocation: a tripped
/// token stops the walk and returns `None`, so a wall-clock deadline can
/// bound even the reference pass of a huge-invocation sweep (the cycle
/// engine polls its own token per event; this closes the other half).
#[must_use]
pub fn execute_cancellable(
    region: &Region,
    binding: &Binding,
    invocations: u64,
    cancel: Option<&CancelToken>,
) -> Option<ReferenceResult> {
    let order = sequential_order(region).expect("region must be a sequential trace");
    let nest_total = region.loops.total_invocations().max(1);
    let mut mem = DataMemory::new();
    let mut loads = LoadObserver::new();
    let mut values = vec![0u64; region.dfg.num_nodes()];

    for inv in 0..invocations {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return None;
        }
        let iv = if region.loops.is_empty() {
            Vec::new()
        } else {
            region.loops.iteration_vector(inv % nest_total)
        };
        let unknown_vals = binding.unknown_values(inv);
        let ctx = binding.eval_ctx(&iv, &unknown_vals);
        for &node in &order {
            let operands = operand_values(region, node, &values);
            let kind = &region.dfg.node(node).kind;
            values[node.index()] = match kind {
                OpKind::Load(mref) => {
                    let addr = mref.eval(&ctx);
                    let v = mem.read(addr, mref.size);
                    let slot = region.dfg.node(node).mem_slot.expect("load has slot");
                    loads.record(inv, slot.index(), v);
                    v
                }
                OpKind::Store(mref) => {
                    let addr = mref.eval(&ctx);
                    let v = apply(kind, &operands, inv);
                    mem.write(addr, mref.size, v);
                    v
                }
                other => apply(other, &operands, inv),
            };
        }
    }
    Some(ReferenceResult { mem, loads })
}

/// Collects a node's data-operand values in deterministic (edge-insertion)
/// order. Forward edges are compiler artifacts and do not contribute
/// operands in the reference semantics.
pub(crate) fn operand_values(region: &Region, node: NodeId, values: &[u64]) -> Vec<u64> {
    region
        .dfg
        .in_edges(node)
        .filter(|e| e.kind == EdgeKind::Data)
        .map(|e| values[e.src.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::{AffineExpr, IntOp, LoopInfo, MemRef, RegionBuilder};

    fn simple_binding(bases: usize) -> Binding {
        Binding {
            base_addrs: (0..bases)
                .map(|i| 0x1_0000 + (i as u64) * 0x1_0000)
                .collect(),
            params: Vec::new(),
            unknowns: Vec::new(),
        }
    }

    #[test]
    fn store_then_load_sees_value() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        let st = b.store(m.clone(), &[x]);
        b.load(m, &[]);
        let r = b.finish();
        let res = execute(&r, &simple_binding(1), 1);
        // The load must observe exactly the stored value.
        let stored = res.mem.read(0x1_0000, 8);
        assert_ne!(stored, 0);
        let mut expected = LoadObserver::new();
        expected.record(0, 1, stored);
        assert_eq!(res.loads.digest(), expected.digest());
        let _ = st;
    }

    #[test]
    fn program_order_respected_between_unrelated_ops() {
        // st g[0] <- f(input); ld g[0]: no data edge between them, but
        // program order makes the load see the store.
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let c = b.constant(7);
        b.store(m.clone(), &[c]);
        b.load(m, &[]);
        let r = b.finish();
        let res = execute(&r, &simple_binding(1), 1);
        assert_ne!(res.mem.read(0x1_0000, 8), 0);
        assert_eq!(res.loads.digest().1, 1);
    }

    #[test]
    fn loop_iterations_walk_addresses() {
        let mut b = RegionBuilder::new("t");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 4));
        let g = b.global("g", 64, 0);
        let c = b.constant(1);
        let v = b.int_op(IntOp::Add, &[c]);
        b.store(MemRef::affine(g, AffineExpr::var(i).scaled(8)), &[v]);
        let r = b.finish();
        let res = execute(&r, &simple_binding(1), 4);
        for k in 0..4u64 {
            assert_ne!(res.mem.read(0x1_0000 + k * 8, 8), 0, "slot {k} written");
        }
        assert_eq!(res.mem.footprint(), 32);
    }

    #[test]
    fn invocations_wrap_the_nest() {
        let mut b = RegionBuilder::new("t");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 2));
        let g = b.global("g", 64, 0);
        let c = b.constant(9);
        b.store(MemRef::affine(g, AffineExpr::var(i).scaled(8)), &[c]);
        let r = b.finish();
        // 5 invocations over a 2-trip nest: wraps cleanly.
        let res = execute(&r, &simple_binding(1), 5);
        assert_eq!(res.mem.footprint(), 16);
    }

    #[test]
    fn cancellation_stops_the_reference_walk() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        b.store(m.clone(), &[x]);
        b.load(m, &[]);
        let r = b.finish();
        let tripped = CancelToken::new();
        tripped.cancel();
        assert_eq!(
            execute_cancellable(&r, &simple_binding(1), 8, Some(&tripped)),
            None
        );
        // An inert token changes nothing.
        let inert = CancelToken::new();
        let cancellable = execute_cancellable(&r, &simple_binding(1), 8, Some(&inert)).unwrap();
        let plain = execute(&r, &simple_binding(1), 8);
        assert_eq!(cancellable.mem, plain.mem);
        assert_eq!(cancellable.loads.digest(), plain.loads.digest());
    }

    #[test]
    fn deterministic() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        b.store(m.clone(), &[x]);
        b.load(m, &[]);
        let r = b.finish();
        let a = execute(&r, &simple_binding(1), 3);
        let b2 = execute(&r, &simple_binding(1), 3);
        assert_eq!(a.mem, b2.mem);
        assert_eq!(a.loads.digest(), b2.loads.digest());
    }
}
