//! Minimal deterministic JSON emission shared by the report writers.
//!
//! The harness deliberately avoids a serialization dependency: its
//! reports ([`crate::sweep::SweepResult::to_json`], the `nachos-lint`
//! CLI) promise byte-identical output for identical inputs, which is
//! easiest to audit when the writer is ~100 lines of code with a fixed
//! key order and deterministic number formatting.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::Path;

/// Pretty-printing JSON writer with a fixed key order (the caller emits
/// keys in schema order) and deterministic number formatting.
///
/// The writer is a push-down emitter: `open_obj`/`open_arr` nest,
/// `key` names the next value inside an object, and the `*_field`
/// helpers combine both. The caller is responsible for balanced
/// open/close calls; the writer asserts balance at `finish`.
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    indent: usize,
    /// `true` when the next emission at this nesting level needs a comma.
    need_comma: Vec<bool>,
    /// `true` immediately after `key()` — the value belongs to that key.
    pending_value: bool,
    /// Single-line mode: no newlines or indentation (JSONL emission).
    compact: bool,
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    /// An empty writer at nesting depth zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            out: String::new(),
            indent: 0,
            need_comma: vec![false],
            pending_value: false,
            compact: false,
        }
    }

    /// An empty writer in single-line (compact) mode: no newlines or
    /// indentation, so the finished document fits one JSONL record. Key
    /// order and number formatting are identical to the pretty writer.
    #[must_use]
    pub fn compact() -> Self {
        Self {
            compact: true,
            ..Self::new()
        }
    }

    /// Terminates the document with a trailing newline and returns it.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }

    /// Starts a new value: handles comma, newline and indentation unless
    /// the value directly follows its key.
    fn begin_value(&mut self) {
        if self.pending_value {
            self.pending_value = false;
            return;
        }
        let top = self.need_comma.last_mut().expect("writer has a level");
        if *top {
            self.out.push(',');
            if self.compact {
                self.out.push(' ');
            }
        }
        *top = true;
        if self.indent > 0 && !self.compact {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
    }

    /// Emits an object key; the next value emitted belongs to it.
    pub fn key(&mut self, k: &str) {
        self.begin_value();
        let _ = write!(self.out, "\"{}\": ", escape(k));
        self.pending_value = true;
    }

    /// Opens a `{ ... }` object.
    pub fn open_obj(&mut self) {
        self.begin_value();
        self.out.push('{');
        self.indent += 1;
        self.need_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn close_obj(&mut self) {
        self.close_with('}');
    }

    /// Opens a `[ ... ]` array.
    pub fn open_arr(&mut self) {
        self.begin_value();
        self.out.push('[');
        self.indent += 1;
        self.need_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn close_arr(&mut self) {
        self.close_with(']');
    }

    fn close_with(&mut self, ch: char) {
        let had_items = self.need_comma.pop().expect("balanced writer");
        self.indent -= 1;
        if had_items && !self.compact {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
        self.out.push(ch);
    }

    /// Emits a string value (array element, or the value after `key`).
    pub fn str_item(&mut self, v: &str) {
        self.begin_value();
        let _ = write!(self.out, "\"{}\"", escape(v));
    }

    /// Emits `"k": "v"`.
    pub fn str_field(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str_item(v);
    }

    /// Emits an unsigned integer value.
    pub fn u64_item(&mut self, v: u64) {
        self.begin_value();
        let _ = write!(self.out, "{v}");
    }

    /// Emits `"k": v` for an unsigned integer.
    pub fn u64_field(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64_item(v);
    }

    /// Emits `"k": v` for a boolean.
    pub fn bool_field(&mut self, k: &str, v: bool) {
        self.key(k);
        self.begin_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a finite float with Rust's shortest-roundtrip formatting
    /// (deterministic for identical bit patterns), forcing a decimal
    /// point so the value parses as a JSON number of float kind.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values — JSON has no encoding for them.
    pub fn f64_field(&mut self, k: &str, v: f64) {
        assert!(v.is_finite(), "JSON numbers must be finite");
        self.key(k);
        self.begin_value();
        let s = format!("{v}");
        self.out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            self.out.push_str(".0");
        }
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// `<path>.tmp` file first, are fsynced, and are renamed over `path` only
/// once durable. A crash at any point leaves either the old report or the
/// new one — never a truncated JSON that downstream tooling would parse
/// as a valid (but wrong) document. Every report-emitting binary routes
/// its `--out` through this.
///
/// # Errors
///
/// Propagates the underlying I/O error; the temporary file is removed on
/// a best-effort basis when any step fails.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    let write = (|| {
        let mut f = File::create(tmp)?;
        f.write_all(contents.as_bytes())?;
        // Durability before visibility: the rename must never expose
        // bytes that are not on disk yet.
        f.sync_all()?;
        std::fs::rename(tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(tmp);
    }
    write
}

// ---------------------------------------------------------------------
// Checksummed line framing (journal / heartbeat / cache records)
// ---------------------------------------------------------------------

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice: small, dependency-free, deterministic
/// across platforms and processes (unlike `DefaultHasher`, which is
/// randomly seeded per process). Used both for content-addressing
/// (journal run keys, the result cache) and for per-record checksums.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a framed line failed verification; see [`checksum_unframe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The line does not carry the `<16-hex> <payload>` frame at all —
    /// a foreign or legacy line, not evidence of corruption.
    Unframed,
    /// The frame parses but the checksum does not match the payload:
    /// the record was corrupted (flipped bytes, partial overwrite,
    /// mid-file truncation) after it was written.
    Corrupt,
}

/// Frames one single-line record as `<16-hex FNV-1a> <payload>` so any
/// later corruption — anywhere in the line, not just a torn tail — is
/// detectable. The payload must not contain a newline.
#[must_use]
pub fn checksum_frame(payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "framed payloads are one line");
    format!("{:016x} {payload}", fnv1a(payload.as_bytes()))
}

/// Verifies a framed line and returns the payload.
///
/// # Errors
///
/// [`FrameError::Unframed`] when the line lacks the frame shape (so
/// callers can treat foreign lines as merely skippable), and
/// [`FrameError::Corrupt`] when the frame is present but the checksum
/// disagrees with the payload bytes.
pub fn checksum_unframe(line: &str) -> Result<&str, FrameError> {
    let (sum, payload) = line.split_once(' ').ok_or(FrameError::Unframed)?;
    if sum.len() != 16 || !sum.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(FrameError::Unframed);
    }
    let want = u64::from_str_radix(sum, 16).map_err(|_| FrameError::Unframed)?;
    if fnv1a(payload.as_bytes()) == want {
        Ok(payload)
    } else {
        Err(FrameError::Corrupt)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_and_detects_any_flipped_byte() {
        let payload = "{\"journal\": \"nachos-journal-v1\", \"seed\": 18446744073709551615}";
        let line = checksum_frame(payload);
        assert_eq!(checksum_unframe(&line), Ok(payload));
        // Flip every byte position in turn: the frame must never
        // verify, and never panic.
        for i in 0..line.len() {
            let mut bytes = line.clone().into_bytes();
            bytes[i] ^= 0x01;
            if let Ok(flipped) = String::from_utf8(bytes) {
                assert_ne!(
                    checksum_unframe(&flipped),
                    Ok(payload),
                    "flip at byte {i} went undetected"
                );
            }
        }
        // Truncations anywhere fail too.
        for i in 0..line.len() {
            assert_ne!(checksum_unframe(&line[..i]), Ok(payload));
        }
    }

    #[test]
    fn unframed_lines_are_distinguished_from_corrupt_ones() {
        assert_eq!(checksum_unframe("{\"bare\": 1}"), Err(FrameError::Unframed));
        assert_eq!(checksum_unframe(""), Err(FrameError::Unframed));
        assert_eq!(
            checksum_unframe("not-a-checksum {\"x\": 1}"),
            Err(FrameError::Unframed)
        );
        let mut line = checksum_frame("{\"x\": 1}");
        line.push('!');
        assert_eq!(checksum_unframe(&line), Err(FrameError::Corrupt));
    }

    #[test]
    fn nested_document_is_stable() {
        let mut w = JsonWriter::new();
        w.open_obj();
        w.str_field("name", "x\"y");
        w.key("items");
        w.open_arr();
        w.u64_item(1);
        w.u64_item(2);
        w.close_arr();
        w.key("empty");
        w.open_arr();
        w.close_arr();
        w.bool_field("ok", true);
        w.f64_field("ratio", 2.0);
        w.close_obj();
        let json = w.finish();
        assert_eq!(
            json,
            "{\n  \"name\": \"x\\\"y\",\n  \"items\": [\n    1,\n    2\n  ],\n  \
             \"empty\": [],\n  \"ok\": true,\n  \"ratio\": 2.0\n}\n"
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\nb\u{1}"), "a\\nb\\u0001");
    }

    #[test]
    fn compact_mode_emits_one_line() {
        let mut w = JsonWriter::compact();
        w.open_obj();
        w.str_field("name", "x");
        w.key("items");
        w.open_arr();
        w.u64_item(1);
        w.u64_item(2);
        w.close_arr();
        w.bool_field("ok", true);
        w.close_obj();
        let json = w.finish();
        assert_eq!(json, "{\"name\": \"x\", \"items\": [1, 2], \"ok\": true}\n");
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("nachos-json-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_atomic(&path, "{\"a\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 1}\n");
        // Overwrite goes through the same tmp+rename dance.
        write_atomic(&path, "{\"a\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 2}\n");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !Path::new(&tmp).exists(),
            "temporary file is renamed away on success"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
