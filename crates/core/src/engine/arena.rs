//! [`SimArena`]: pooled engine state for zero-alloc run reuse.
//!
//! A simulation needs a node-state table, an event queue, a port calendar,
//! a cache hierarchy and the policy's own structures (LSQ entries, MAY
//! tables, age vectors). None of that state outlives a run, so the
//! differential sweep used to reallocate all of it 27 × N × 4 times per
//! matrix. An arena instead hands the engine its buffers, takes them back
//! after the run (cleared, capacity intact), and keeps one lazily-built
//! policy per backend that resets instead of reconstructing.
//!
//! Reuse is **behaviour-invisible**: `simulate_in` produces byte-identical
//! results to `simulate` regardless of what ran in the arena before — the
//! golden-snapshot suite pins this down.

use crate::config::{Backend, SimConfig};
use nachos_ir::NodeId;
use nachos_mem::MemoryHierarchy;

use super::policy::ideal::IdealPolicy;
use super::policy::nachos_hw::NachosPolicy;
use super::policy::nachos_sw::NachosSwPolicy;
use super::policy::optlsq::OptLsqPolicy;
use super::policy::DisambiguationPolicy;
use super::queue::EventQueue;
use super::state::NodeTable;

/// Scheduler-core buffers pooled across runs. `Default` is an empty (but
/// fully valid) set, so the arena stays usable even if a run panics while
/// holding the buffers.
#[derive(Default)]
pub(crate) struct CoreBufs {
    pub(crate) state: NodeTable,
    pub(crate) queue: EventQueue,
    /// The memory-port calendar's slot vector.
    pub(crate) ports: Vec<u32>,
    /// Pooled hierarchy, reused (reset) when the config matches.
    pub(crate) hierarchy: Option<MemoryHierarchy>,
    pub(crate) store_nodes: Vec<NodeId>,
    pub(crate) operands: Vec<u64>,
    /// Iteration-vector scratch (loop nest indices).
    pub(crate) iv: Vec<i64>,
    /// Unknown-pointer value scratch.
    pub(crate) unknown_vals: Vec<u64>,
}

/// Mutable access to one concrete pooled policy: the engine matches on
/// this once per run and drives a monomorphized event loop, so the
/// per-event policy hooks inline instead of going through vtable
/// dispatch.
pub(crate) enum PolicyMut<'a> {
    OptLsq(&'a mut OptLsqPolicy),
    NachosSw(&'a mut NachosSwPolicy),
    Nachos(&'a mut NachosPolicy),
    Ideal(&'a mut IdealPolicy),
}

/// A reusable per-worker simulation arena.
///
/// Hold one per thread and pass it to
/// [`simulate_in`](super::simulate_in) (or the driver's `_in` variants);
/// each run resets the pooled state instead of reallocating it. Dropping
/// the arena releases everything.
#[derive(Default)]
pub struct SimArena {
    bufs: CoreBufs,
    optlsq: Option<OptLsqPolicy>,
    nachos_sw: Option<NachosSwPolicy>,
    nachos_hw: Option<NachosPolicy>,
    ideal: Option<IdealPolicy>,
}

impl SimArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits the arena into the core buffers and the (reset) policy for
    /// `backend`, constructing the policy on first use.
    pub(crate) fn split(
        &mut self,
        backend: Backend,
        config: &SimConfig,
    ) -> (&mut CoreBufs, PolicyMut<'_>) {
        let Self {
            bufs,
            optlsq,
            nachos_sw,
            nachos_hw,
            ideal,
        } = self;
        fn ready<P: DisambiguationPolicy>(p: &mut P, backend: Backend, config: &SimConfig) {
            debug_assert_eq!(p.backend(), backend, "arena pooled wrong policy");
            p.prepare_run(config);
        }
        let policy = match backend {
            Backend::OptLsq => {
                let p = optlsq.get_or_insert_with(|| OptLsqPolicy::new(config));
                ready(p, backend, config);
                PolicyMut::OptLsq(p)
            }
            Backend::NachosSw => {
                let p = nachos_sw.get_or_insert_with(NachosSwPolicy::default);
                ready(p, backend, config);
                PolicyMut::NachosSw(p)
            }
            Backend::Nachos => {
                let p = nachos_hw.get_or_insert_with(NachosPolicy::default);
                ready(p, backend, config);
                PolicyMut::Nachos(p)
            }
            Backend::Ideal => {
                let p = ideal.get_or_insert_with(IdealPolicy::default);
                ready(p, backend, config);
                PolicyMut::Ideal(p)
            }
        };
        (bufs, policy)
    }
}
