//! The bucketed calendar event queue.
//!
//! The scheduler used to order events in a `BinaryHeap<Reverse<(cycle,
//! seq, Ev)>>`: every push and pop paid `O(log n)` comparisons on a
//! three-field key. But simulated time is overwhelmingly *local* — an
//! event scheduled at cycle `t` spawns successors within a few hundred
//! cycles (route + cache latencies), so the live window of the queue is
//! tiny compared to the cycle space. [`EventQueue`] exploits that with a
//! calendar layout:
//!
//! * a **ring of per-cycle buckets** covering `[base, base + WINDOW)`.
//!   A push inside the window appends `(seq, ev)` to its cycle's bucket —
//!   `O(1)`, and because the global sequence counter is monotonic, every
//!   bucket is sorted by `seq` for free;
//! * a **sorted overflow spill** (a small binary heap) for the rare push
//!   outside the window — far-future events, or events behind `base`
//!   (arbitrary schedules; the engine itself never goes back in time).
//!
//! `pop` compares the ring's head `(cycle, seq)` against the overflow's
//! top and takes the smaller, so the pop sequence is **exactly** the
//! `(cycle, seq, Ev)` total order the heap produced — `seq` is unique,
//! so the `Ev` field never participates in ordering. The differential
//! proptest below pins this against the reference heap on random
//! schedules, and the golden sweep snapshots pin it end-to-end.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::state::Ev;

/// Ring width in cycles. Covers the longest single-event latency chain
/// (DRAM miss + LLC + L1 + routing ≈ 230 cycles) with slack; anything
/// further spills to the overflow heap.
const WINDOW: u64 = 1024;

/// A calendar queue over `(cycle, seq, Ev)` with exact heap-order pops.
pub(crate) struct EventQueue {
    /// `WINDOW` per-cycle buckets; cycle `c` lives at `c % WINDOW` while
    /// `base <= c < base + WINDOW`. Each bucket is ascending in `seq`.
    buckets: Vec<Vec<(u64, Ev)>>,
    /// Smallest cycle still mapped to the ring.
    base: u64,
    /// Read cursor into the bucket at `base`.
    head: usize,
    /// Unconsumed entries across all buckets.
    ring_len: usize,
    /// Events outside the ring window (far future, or behind `base`).
    overflow: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    /// Monotonic push counter: the deterministic tie-breaker.
    seq: u64,
    /// Total events ever pushed this run (telemetry).
    pushes: u64,
    /// High-water mark of the queue's live size (telemetry).
    max_depth: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self {
            buckets: (0..WINDOW).map(|_| Vec::new()).collect(),
            base: 0,
            head: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            pushes: 0,
            max_depth: 0,
        }
    }
}

impl EventQueue {
    /// Empties the queue for a fresh run, keeping bucket capacity.
    pub(crate) fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.base = 0;
        self.head = 0;
        self.ring_len = 0;
        self.overflow.clear();
        self.seq = 0;
        self.pushes = 0;
        self.max_depth = 0;
    }

    /// Live events currently queued.
    pub(crate) fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Total events pushed since the last [`EventQueue::clear`].
    pub(crate) fn pushes(&self) -> u64 {
        self.pushes
    }

    /// High-water mark of [`EventQueue::len`] since the last clear.
    pub(crate) fn max_depth(&self) -> u64 {
        self.max_depth
    }

    #[inline]
    fn slot(&self, cycle: u64) -> usize {
        (cycle % WINDOW) as usize
    }

    /// Schedules `ev` at `at`, tagged with the next sequence number.
    pub(crate) fn push(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.pushes += 1;
        if at >= self.base && at < self.base + WINDOW {
            let slot = self.slot(at);
            self.buckets[slot].push((self.seq, ev));
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse((at, self.seq, ev)));
        }
        let depth = self.len() as u64;
        if depth > self.max_depth {
            self.max_depth = depth;
        }
    }

    /// Pops the minimum `(cycle, seq)` event — exactly the order the
    /// reference binary heap would produce.
    pub(crate) fn pop(&mut self) -> Option<(u64, Ev)> {
        if self.ring_len == 0 {
            // Ring empty: serve the overflow and jump the window forward
            // so successor pushes land in buckets again.
            let Reverse((at, _, ev)) = self.overflow.pop()?;
            if at > self.base {
                let slot = self.slot(self.base);
                self.buckets[slot].clear();
                self.head = 0;
                self.base = at;
            }
            return Some((at, ev));
        }
        // Advance to the ring's next unconsumed entry, retiring spent
        // buckets along the way.
        loop {
            let slot = self.slot(self.base);
            if self.head < self.buckets[slot].len() {
                break;
            }
            self.buckets[slot].clear();
            self.head = 0;
            self.base += 1;
        }
        let slot = self.slot(self.base);
        let (seq, ev) = self.buckets[slot][self.head];
        // The overflow can hold an earlier event: a past-cycle push, or
        // an equal-cycle push made while the window sat further back.
        if let Some(&Reverse((o_at, o_seq, _))) = self.overflow.peek() {
            if (o_at, o_seq) < (self.base, seq) {
                let Reverse((at, _, ev)) = self.overflow.pop().expect("peeked");
                return Some((at, ev));
            }
        }
        self.head += 1;
        self.ring_len -= 1;
        Some((self.base, ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::NodeId;
    use proptest::prelude::*;

    /// The reference implementation the queue must match event-for-event.
    #[derive(Default)]
    struct HeapQueue {
        heap: BinaryHeap<Reverse<(u64, u64, Ev)>>,
        seq: u64,
    }

    impl HeapQueue {
        fn push(&mut self, at: u64, ev: Ev) {
            self.seq += 1;
            self.heap.push(Reverse((at, self.seq, ev)));
        }

        fn pop(&mut self) -> Option<(u64, Ev)> {
            self.heap.pop().map(|Reverse((at, _, ev))| (at, ev))
        }
    }

    fn ev(i: usize) -> Ev {
        match i % 5 {
            0 => Ev::Data(NodeId::new(i)),
            1 => Ev::Token(NodeId::new(i)),
            2 => Ev::Release(NodeId::new(i)),
            3 => Ev::TryMem(NodeId::new(i)),
            _ => Ev::Complete(NodeId::new(i)),
        }
    }

    #[test]
    fn fifo_within_a_cycle() {
        let mut q = EventQueue::default();
        q.push(5, ev(0));
        q.push(5, ev(1));
        q.push(3, ev(2));
        assert_eq!(q.pop(), Some((3, ev(2))));
        assert_eq!(q.pop(), Some((5, ev(0))));
        assert_eq!(q.pop(), Some((5, ev(1))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_spills_and_returns() {
        let mut q = EventQueue::default();
        q.push(0, ev(0));
        q.push(WINDOW * 10, ev(1)); // overflow
        assert_eq!(q.pop(), Some((0, ev(0))));
        // Window jumps to the overflow event; successors bucket normally.
        assert_eq!(q.pop(), Some((WINDOW * 10, ev(1))));
        q.push(WINDOW * 10 + 1, ev(2));
        assert_eq!(q.pop(), Some((WINDOW * 10 + 1, ev(2))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn past_push_wins_over_ring_head() {
        let mut q = EventQueue::default();
        q.push(100, ev(0));
        assert_eq!(q.pop(), Some((100, ev(0))));
        q.push(200, ev(1));
        assert_eq!(q.pop(), Some((200, ev(1)))); // base is now 200
        q.push(300, ev(2));
        q.push(50, ev(3)); // behind base: overflow
        assert_eq!(q.pop(), Some((50, ev(3))));
        assert_eq!(q.pop(), Some((300, ev(2))));
    }

    #[test]
    fn equal_cycle_across_ring_and_overflow_pops_in_seq_order() {
        let mut q = EventQueue::default();
        // seq 1 lands in the overflow (outside the initial window)...
        q.push(WINDOW + 7, ev(0));
        q.push(0, ev(1));
        assert_eq!(q.pop(), Some((0, ev(1))));
        // drain moves base forward only via pops; push the same cycle
        // into the ring once the window covers it.
        q.push(WINDOW - 1, ev(2));
        assert_eq!(q.pop(), Some((WINDOW - 1, ev(2)))); // base = WINDOW-1
        q.push(WINDOW + 7, ev(3)); // ring, seq 4
                                   // Overflow's seq-1 event at the same cycle must pop first.
        assert_eq!(q.pop(), Some((WINDOW + 7, ev(0))));
        assert_eq!(q.pop(), Some((WINDOW + 7, ev(3))));
    }

    #[test]
    fn stats_track_pushes_and_depth() {
        let mut q = EventQueue::default();
        for i in 0..10 {
            q.push(i, ev(i as usize));
        }
        assert_eq!(q.pushes(), 10);
        assert_eq!(q.max_depth(), 10);
        while q.pop().is_some() {}
        assert_eq!(q.max_depth(), 10);
        q.clear();
        assert_eq!(q.pushes(), 0);
        assert_eq!(q.len(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Differential: on arbitrary interleaved push/pop schedules —
        /// including past-cycle pushes and far jumps the engine itself
        /// never produces — the calendar queue pops the exact sequence
        /// of the reference binary heap.
        #[test]
        fn matches_binary_heap_on_random_schedules(
            ops in proptest::collection::vec((any::<u16>(), 0u8..4), 1..300),
        ) {
            let mut q = EventQueue::default();
            let mut h = HeapQueue::default();
            for (i, &(raw, kind)) in ops.iter().enumerate() {
                if kind == 3 {
                    prop_assert_eq!(q.pop(), h.pop());
                } else {
                    // Mix tight clusters, far jumps and megacycle spills.
                    let at = match kind {
                        0 => u64::from(raw) % 64,
                        1 => u64::from(raw),
                        _ => u64::from(raw) * 97,
                    };
                    q.push(at, ev(i));
                    h.push(at, ev(i));
                }
            }
            loop {
                let (a, b) = (q.pop(), h.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
