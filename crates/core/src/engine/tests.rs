//! Engine-level unit tests: reference parity, backend-relative timing,
//! energy shape and stall attribution. The port-calendar test lives next
//! to `Calendar` in `core.rs`.

use super::simulate;
use crate::config::Backend;
use crate::driver::run_backend;
use crate::energy::EnergyModel;
use crate::error::SimError;
use crate::testutil::{check_against_reference, sim_config as config};
use nachos_ir::{
    AffineExpr, Binding, IntOp, LoopInfo, MemRef, Provenance, RegionBuilder, UnknownPattern,
};

/// st A; ld A; st A — classic forwarding + ordering chain.
#[test]
fn ordering_chain_matches_reference() {
    let mut b = RegionBuilder::new("chain");
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero());
    let x = b.input();
    b.store(m.clone(), &[x]);
    let ld = b.load(m.clone(), &[]);
    let y = b.int_op(IntOp::Add, &[ld]);
    b.store(m, &[y]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1_0000],
        ..Binding::default()
    };
    check_against_reference(&region, &binding, 5);
}

/// MAY aliases through unknown pointers that sometimes truly conflict.
#[test]
fn dynamic_conflicts_match_reference() {
    let mut b = RegionBuilder::new("may");
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let x = b.input();
    b.store(MemRef::unknown(u0, 0), &[x]);
    b.load(MemRef::unknown(u1, 0), &[]);
    let region = b.finish();
    // Scatter in a tiny window so real conflicts happen across
    // invocations.
    let binding = Binding {
        base_addrs: vec![],
        params: vec![],
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 1,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
            UnknownPattern::Scatter {
                seed: 2,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
        ],
    };
    check_against_reference(&region, &binding, 40);
}

/// Loop-carried walk over two arrays with provenance-resolvable args.
#[test]
fn strided_arrays_match_reference() {
    let mut b = RegionBuilder::new("stride");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 16));
    let a0 = b.arg(0, Provenance::Object(1));
    let a1 = b.arg(1, Provenance::Object(2));
    let ld = b.load(MemRef::affine(a0, AffineExpr::var(i).scaled(8)), &[]);
    let v = b.int_op(IntOp::Mul, &[ld]);
    b.store(MemRef::affine(a1, AffineExpr::var(i).scaled(8)), &[v]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1_0000, 0x2_0000],
        ..Binding::default()
    };
    check_against_reference(&region, &binding, 16);
}

/// NACHOS must beat NACHOS-SW when MAY edges never truly conflict.
#[test]
fn nachos_recovers_parallelism_from_false_mays() {
    let mut b = RegionBuilder::new("false-may");
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let x = b.input();
    // Older store through an unknown pointer, then a chain of loads
    // that MAY-alias it but never actually do.
    b.store(MemRef::unknown(u0, 0), &[x]);
    for k in 0..6 {
        let ld = b.load(MemRef::unknown(u1, k * 64), &[]);
        b.int_op(IntOp::Add, &[ld]);
    }
    let region = b.finish();
    let binding = Binding {
        unknowns: vec![
            UnknownPattern::Fixed(0x10_0000),
            UnknownPattern::Fixed(0x20_0000),
        ],
        ..Binding::default()
    };
    let cfg = config(8);
    let em = EnergyModel::default();
    let sw = run_backend(&region, &binding, Backend::NachosSw, &cfg, &em).unwrap();
    let hw = run_backend(&region, &binding, Backend::Nachos, &cfg, &em).unwrap();
    assert!(
        hw.sim.cycles < sw.sim.cycles,
        "NACHOS ({}) should beat NACHOS-SW ({})",
        hw.sim.cycles,
        sw.sim.cycles
    );
    assert!(hw.sim.events.may_checks > 0, "checks actually ran");
    check_against_reference(&region, &binding, 8);
}

/// Independent loads: the LSQ's in-order allocation and load-to-use
/// penalty should cost cycles relative to NACHOS-SW.
#[test]
fn lsq_penalty_on_independent_loads() {
    let mut b = RegionBuilder::new("indep");
    for k in 0..8u32 {
        let g = b.global(&format!("g{k}"), 64, k);
        let ld = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        b.int_op(IntOp::Add, &[ld]);
    }
    let region = b.finish();
    let binding = Binding {
        base_addrs: (0..8).map(|k| 0x1_0000 + k * 0x1000).collect(),
        ..Binding::default()
    };
    let cfg = config(8);
    let em = EnergyModel::default();
    let lsq = run_backend(&region, &binding, Backend::OptLsq, &cfg, &em).unwrap();
    let sw = run_backend(&region, &binding, Backend::NachosSw, &cfg, &em).unwrap();
    assert!(
        sw.sim.cycles < lsq.sim.cycles,
        "NACHOS-SW ({}) should beat OPT-LSQ ({}) here",
        sw.sim.cycles,
        lsq.sim.cycles
    );
    check_against_reference(&region, &binding, 8);
}

/// Energy: fully-resolved workloads impose no MDE energy under NACHOS
/// while the LSQ still pays per-op costs.
#[test]
fn energy_shape_for_resolved_region() {
    let mut b = RegionBuilder::new("resolved");
    let g0 = b.global("a", 64, 0);
    let g1 = b.global("b", 64, 1);
    let x = b.input();
    b.store(MemRef::affine(g0, AffineExpr::zero()), &[x]);
    b.load(MemRef::affine(g1, AffineExpr::zero()), &[]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1_0000, 0x2_0000],
        ..Binding::default()
    };
    let cfg = config(4);
    let em = EnergyModel::default();
    let hw = run_backend(&region, &binding, Backend::Nachos, &cfg, &em).unwrap();
    assert_eq!(hw.sim.energy.mde, 0.0, "no MAY/MUST edges survive");
    let lsq = run_backend(&region, &binding, Backend::OptLsq, &cfg, &em).unwrap();
    assert!(lsq.sim.energy.lsq() > 0.0);
    assert_eq!(hw.sim.energy.lsq(), 0.0);
}

/// Scratchpad accesses bypass both the LSQ and the cache.
#[test]
fn scratchpad_bypasses_cache_and_lsq() {
    use nachos_ir::MemSpace;
    let mut b = RegionBuilder::new("scratch");
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero()).with_space(MemSpace::Scratchpad);
    let x = b.input();
    b.store(m.clone(), &[x]);
    b.load(m, &[]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1_0000],
        ..Binding::default()
    };
    let cfg = config(2);
    let em = EnergyModel::default();
    for backend in Backend::ALL {
        let run = run_backend(&region, &binding, backend, &cfg, &em).unwrap();
        assert_eq!(run.sim.events.l1_accesses, 0, "{backend}: no cache traffic");
        assert_eq!(run.sim.l1.accesses(), 0);
    }
    check_against_reference(&region, &binding, 2);
}

/// Store-to-load forwarding is used by both schemes and skips the L1.
#[test]
fn forwarding_skips_cache() {
    let mut b = RegionBuilder::new("fwd");
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero());
    let x = b.input();
    b.store(m.clone(), &[x]);
    b.load(m, &[]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1_0000],
        ..Binding::default()
    };
    let cfg = config(3);
    let em = EnergyModel::default();
    for backend in Backend::ALL {
        let run = run_backend(&region, &binding, backend, &cfg, &em).unwrap();
        assert_eq!(
            run.sim.events.forwards, 3,
            "{backend}: one forward per invocation"
        );
        // Only the store touches the cache.
        assert_eq!(run.sim.events.l1_accesses, 3, "{backend}");
    }
    check_against_reference(&region, &binding, 3);
}

#[test]
fn incomplete_binding_is_rejected() {
    let mut b = RegionBuilder::new("t");
    let g = b.global("g", 64, 0);
    b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
    let region = b.finish();
    let err = simulate(
        &region,
        &Binding::default(),
        Backend::Nachos,
        &config(1),
        &EnergyModel::default(),
    )
    .unwrap_err();
    assert!(matches!(err, SimError::IncompleteBinding(_)));
    assert!(err.to_string().contains("base"));
}

#[test]
fn cycles_scale_with_invocations() {
    let mut b = RegionBuilder::new("t");
    let g = b.global("g", 64, 0);
    b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1_0000],
        ..Binding::default()
    };
    let em = EnergyModel::default();
    let one = simulate(&region, &binding, Backend::Nachos, &config(1), &em).unwrap();
    let four = simulate(&region, &binding, Backend::Nachos, &config(4), &em).unwrap();
    assert!(four.cycles > one.cycles);
    assert_eq!(four.invocations, 4);
    assert!(
        four.cycles_per_invocation() < one.cycles_per_invocation() * 1.5,
        "warm cache should not inflate per-invocation cost"
    );
}

/// Regression guard for `try_may_check`'s byte-overlap test: accesses
/// of different sizes that only *partially* overlap (no shared start
/// address) must still be detected as conflicts and released in order.
#[test]
fn partial_byte_overlap_conflicts_match_reference() {
    let mut b = RegionBuilder::new("overlap");
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let x = b.input();
    // 8-byte store vs 2-byte load on 2-byte alignment: most dynamic
    // conflicts straddle the store rather than aligning with it.
    b.store(MemRef::unknown(u0, 0), &[x]);
    b.load(MemRef::unknown(u1, 0).with_size(2), &[]);
    let region = b.finish();
    let binding = Binding {
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 11,
                lo: 0x1000,
                hi: 0x1020,
                align: 8,
            },
            UnknownPattern::Scatter {
                seed: 12,
                lo: 0x1000,
                hi: 0x1020,
                align: 2,
            },
        ],
        ..Binding::default()
    };
    let run = run_backend(
        &region,
        &binding,
        Backend::Nachos,
        &config(48),
        &EnergyModel::default(),
    )
    .unwrap();
    assert!(run.sim.events.may_checks > 0, "the `==?` path actually ran");
    check_against_reference(&region, &binding, 48);
}

/// Regression guard for the OPT-LSQ store pre-search/data-ready
/// handshake: a store whose address resolves long before its data
/// (behind a deep compute chain) must not issue early, and the younger
/// load must still observe its value (via forwarding).
#[test]
fn store_presearch_waits_for_late_data() {
    let mut b = RegionBuilder::new("late-data");
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero());
    let mut v = b.input();
    for _ in 0..12 {
        v = b.int_op(IntOp::Mul, &[v]);
    }
    b.store(m.clone(), &[v]);
    b.load(m, &[]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1_0000],
        ..Binding::default()
    };
    let run = run_backend(
        &region,
        &binding,
        Backend::OptLsq,
        &config(4),
        &EnergyModel::default(),
    )
    .unwrap();
    assert_eq!(run.sim.events.forwards, 4, "one forward per invocation");
    check_against_reference(&region, &binding, 4);
}

/// Regression guard for `forward_value` timing: with the forwarded
/// store's value arriving late, every backend's load must observe the
/// same (current-invocation) value as the reference.
#[test]
fn forward_value_uses_current_invocation_data() {
    let mut b = RegionBuilder::new("fwd-timing");
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero());
    let mut v = b.input();
    for _ in 0..8 {
        v = b.int_op(IntOp::Add, &[v]);
    }
    b.store(m.clone(), &[v]);
    let ld = b.load(m.clone(), &[]);
    let w = b.int_op(IntOp::Add, &[ld]);
    b.store(m, &[w]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1_0000],
        ..Binding::default()
    };
    check_against_reference(&region, &binding, 6);
}

/// Regression test for the OPT-LSQ scratchpad ordering bug: a
/// scratchpad store and load that MAY-alias (same slot on one loop
/// iteration only) get a compiler-wired local ordering edge, and
/// `try_mem_lsq`'s bypass path used to issue the load without
/// honouring it — the load could read the scratchpad before the
/// conflicting store committed.
#[test]
fn optlsq_honours_wired_scratchpad_ordering() {
    use nachos_ir::MemSpace;
    let mut b = RegionBuilder::new("sp-order");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 4));
    let sp = b.global("sp", 256, 0);
    let x = b.input();
    // st sp[i*8]; ld sp[8]: they collide only when i == 1, so the
    // wired dependence is MAY (a token edge), not FORWARD.
    b.store(
        MemRef::affine(sp, AffineExpr::var(i).scaled(8)).with_space(MemSpace::Scratchpad),
        &[x],
    );
    b.load(
        MemRef::affine(sp, AffineExpr::constant_expr(8)).with_space(MemSpace::Scratchpad),
        &[],
    );
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x2_0000],
        ..Binding::default()
    };
    check_against_reference(&region, &binding, 6);
}

/// Stall attribution: each backend only charges its own mechanisms,
/// and a memory-port-starved region reports mem-port stalls.
#[test]
fn stall_attribution_is_backend_consistent() {
    let mut b = RegionBuilder::new("stalls");
    // Unknown-pointer store + loads => MAY edges (token/may-gate
    // stalls under the MDE backends, search stalls under the LSQ).
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let x = b.input();
    b.store(MemRef::unknown(u0, 0), &[x]);
    for k in 0..6 {
        b.load(MemRef::unknown(u1, k * 8), &[]);
    }
    let region = b.finish();
    let binding = Binding {
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 3,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
            UnknownPattern::Scatter {
                seed: 4,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
        ],
        ..Binding::default()
    };
    let mut cfg = config(16);
    cfg.mem_ports = 1; // starve the edge ports
    let em = EnergyModel::default();
    let lsq = run_backend(&region, &binding, Backend::OptLsq, &cfg, &em).unwrap();
    assert_eq!(lsq.sim.stalls.token, 0);
    assert_eq!(lsq.sim.stalls.may_gate, 0);
    assert_eq!(lsq.sim.stalls.comparator, 0);
    let sw = run_backend(&region, &binding, Backend::NachosSw, &cfg, &em).unwrap();
    assert_eq!(sw.sim.stalls.lsq_alloc, 0);
    assert_eq!(sw.sim.stalls.lsq_search, 0);
    assert_eq!(sw.sim.stalls.comparator, 0);
    assert!(
        sw.sim.stalls.token > 0,
        "serialized MAY edges stall on tokens"
    );
    let hw = run_backend(&region, &binding, Backend::Nachos, &cfg, &em).unwrap();
    assert_eq!(hw.sim.stalls.lsq_alloc, 0);
    assert_eq!(hw.sim.stalls.lsq_search, 0);
    for run in [&lsq, &sw, &hw] {
        assert!(
            run.sim.stalls.mem_port > 0,
            "{}: one port over 7 memory ops must queue",
            run.sim.backend
        );
        assert_eq!(
            run.sim.stalls.total(),
            run.sim.stalls.lsq_alloc
                + run.sim.stalls.lsq_search
                + run.sim.stalls.token
                + run.sim.stalls.may_gate
                + run.sim.stalls.comparator
                + run.sim.stalls.mem_port
        );
    }
}

/// The IDEAL oracle never runs comparator checks, charges no MDE
/// gating stalls on conflict-free regions, and still matches the
/// reference executor on regions with genuine dynamic conflicts.
#[test]
fn ideal_oracle_is_sound_and_checkless() {
    let mut b = RegionBuilder::new("ideal");
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let x = b.input();
    b.store(MemRef::unknown(u0, 0), &[x]);
    b.load(MemRef::unknown(u1, 0), &[]);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![],
        params: vec![],
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 1,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
            UnknownPattern::Scatter {
                seed: 2,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
        ],
    };
    let inv = 40;
    let expected = crate::reference::execute(&region, &binding, inv);
    let run = run_backend(
        &region,
        &binding,
        Backend::Ideal,
        &config(inv),
        &EnergyModel::default(),
    )
    .unwrap();
    assert_eq!(run.sim.mem, expected.mem, "IDEAL: memory state diverged");
    assert_eq!(
        run.sim.loads.digest(),
        expected.loads.digest(),
        "IDEAL: load observations diverged"
    );
    assert_eq!(run.sim.events.may_checks, 0, "the oracle never checks");
    assert_eq!(run.sim.stalls.comparator, 0);
    let hw = run_backend(
        &region,
        &binding,
        Backend::Nachos,
        &config(inv),
        &EnergyModel::default(),
    )
    .unwrap();
    assert!(
        run.sim.cycles <= hw.sim.cycles,
        "IDEAL ({}) is an upper bound on NACHOS ({})",
        run.sim.cycles,
        hw.sim.cycles
    );
}

/// A pre-tripped cancellation token stops the run at its first event with
/// a structured [`SimError::Cancelled`]; a live token leaves the run
/// untouched until it is cancelled.
#[test]
fn cancellation_token_stops_the_run_cooperatively() {
    use crate::config::CancelToken;
    let (region, binding) = crate::testutil::store_load_region("cancel");
    let token = CancelToken::new();
    let cfg = config(8).with_cancel(token.clone());
    // Un-cancelled: the token is inert and the run completes normally.
    let ok = simulate(
        &region,
        &binding,
        Backend::Nachos,
        &cfg,
        &EnergyModel::default(),
    );
    assert!(ok.is_ok(), "inert token must not perturb the run");
    // Cancelled before the run starts: the engine notices at its very
    // first handled event and reports where it stopped.
    token.cancel();
    let err = simulate(
        &region,
        &binding,
        Backend::Nachos,
        &cfg,
        &EnergyModel::default(),
    )
    .unwrap_err();
    match err {
        SimError::Cancelled {
            backend,
            invocation,
            cycle,
        } => {
            assert_eq!(backend, Backend::Nachos);
            assert_eq!(invocation, 0, "cut at the first invocation");
            assert_eq!(cycle, 0, "cut at the first event");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}
