//! The cycle-level accelerator simulator, layered as a backend-agnostic
//! scheduler core plus pluggable disambiguation policies.
//!
//! Executes a (compiled) region on the CGRA model for a configured number
//! of invocations under one of four disambiguation backends
//! ([`Backend`]): OPT-LSQ, NACHOS-SW, NACHOS or the IDEAL oracle.
//! Invocations are block-atomic (the paper's accelerated paths restrict
//! the execution window); the cache hierarchy stays warm across
//! invocations.
//!
//! The module tree mirrors the layering:
//!
//! * [`core`] — the scheduler core: event calendar, operand readiness,
//!   functional execution, memory-port arbitration and the watchdog. It
//!   knows nothing about disambiguation and never branches on the
//!   backend. Its shared vocabulary lives beside it: [`calendar`] (the
//!   per-cycle bandwidth calendar) and [`state`] (events, per-node
//!   scheduler state, stall causes).
//! * [`policy`] — the [`policy::DisambiguationPolicy`] trait: hooks for
//!   op-issue gating, memory-request admission, completion/release and
//!   stall attribution. One implementation per backend lives under
//!   `policy/`.
//! * [`arena`] — [`SimArena`], the reusable per-worker allocation arena:
//!   repeated runs reset the engine's heap, node table, calendars and
//!   policy state instead of reallocating them.
//!
//! The engine is event-driven with resource calendars for the structural
//! hazards that matter: cache ports at the grid edge, LSQ
//! allocation/retirement bandwidth and bank capacity, and the one-per-cycle
//! `==?` comparator arbitration at each MAY site (paper §VII).
//!
//! Alongside timing, the engine performs *functional* execution against a
//! [`DataMemory`] with the shared value semantics of [`crate::value`], so
//! every run can be checked against the in-order reference executor.

use crate::config::{Backend, SimConfig};
use crate::energy::{EnergyBreakdown, EnergyModel, EventCounts};
use crate::error::SimError;
use crate::value::LoadObserver;
use nachos_cgra::Placement;
use nachos_ir::{Binding, Region};
use nachos_lsq::BloomStats;
use nachos_mem::{CacheStats, DataMemory};

pub(crate) mod arena;
pub(crate) mod calendar;
pub(crate) mod core;
pub(crate) mod policy;
pub(crate) mod queue;
pub(crate) mod state;
pub mod telemetry;

#[cfg(test)]
mod tests;

pub use arena::SimArena;
pub use state::StallCause;
pub use telemetry::{
    BackpressureEvent, CycleRecord, NoopSink, RunSummary, StatsWriter, TelemetrySink,
};

use self::arena::PolicyMut;
use self::core::SchedCore;
use self::policy::DisambiguationPolicy;

/// Cycle-weighted stall attribution: how long memory operations sat ready
/// but unable to proceed, bucketed by the resource or ordering mechanism
/// that held them. The differential-sweep harness aggregates these per
/// region so perf work can see *where* each backend loses cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallCounts {
    /// Cycles memory ops waited for their in-order LSQ allocation slot
    /// (OPT-LSQ only: address ready before the port-limited allocator
    /// reached the op's age).
    pub lsq_alloc: u64,
    /// Cycles memory ops spent blocked on an LSQ disambiguation search
    /// (ambiguous older address, or overlapping older op incomplete).
    pub lsq_search: u64,
    /// Cycles fired memory ops waited on MUST/order completion tokens
    /// (includes MAY edges serialized by NACHOS-SW).
    pub token: u64,
    /// Cycles fired memory ops waited on unresolved MAY gates
    /// (NACHOS hardware-check releases; true conflicts under IDEAL).
    pub may_gate: u64,
    /// Cycles `==?` checks waited on the per-site comparator arbiter.
    pub comparator: u64,
    /// Cycles accesses waited for a free cache port at the grid edge.
    pub mem_port: u64,
}

impl StallCounts {
    /// Total attributed stall cycles across all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.lsq_alloc
            + self.lsq_search
            + self.token
            + self.may_gate
            + self.comparator
            + self.mem_port
    }
}

/// The outcome of a simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Backend simulated.
    pub backend: Backend,
    /// Total cycles across all invocations.
    pub cycles: u64,
    /// Invocations executed.
    pub invocations: u64,
    /// Raw event counts.
    pub events: EventCounts,
    /// Cycle-weighted stall attribution.
    pub stalls: StallCounts,
    /// Energy by component.
    pub energy: EnergyBreakdown,
    /// Final functional memory state.
    pub mem: DataMemory,
    /// Digest of every load's observed value.
    pub loads: LoadObserver,
    /// L1 statistics.
    pub l1: CacheStats,
    /// LLC statistics.
    pub llc: CacheStats,
    /// LSQ bloom statistics (OPT-LSQ backend only; zero otherwise).
    pub bloom: BloomStats,
    /// Distinct younger operations hosting a `==?` comparator site (MAY
    /// fan-in destinations, scratchpad-local edges excluded). The figure
    /// `nachos-opt` coalescing shrinks; zero for MDE-free backends.
    pub comparator_sites: u64,
    /// Total events pushed through the calendar queue over the run.
    pub queue_events: u64,
    /// High-water mark of the queue's live depth over the run.
    pub heap_max_depth: u64,
    /// Deterministic descriptions of every injected fault that fired
    /// during the run (empty outside fault-injection runs).
    pub injected: Vec<String>,
}

impl SimResult {
    /// Cycles per invocation.
    #[must_use]
    pub fn cycles_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.cycles as f64 / self.invocations as f64
        }
    }
}

/// Simulates `region` under `backend`.
///
/// For [`Backend::OptLsq`] the region's MDEs are ignored (the LSQ is the
/// ordering mechanism); for the NACHOS backends (and the IDEAL oracle)
/// the region must already carry its MDEs (see [`nachos_alias::compile`]).
///
/// Allocates a fresh [`SimArena`] per call; hot callers that run many
/// regions should hold an arena and use [`simulate_in`].
///
/// # Errors
///
/// Returns [`SimError`] when the region is invalid, does not fit the grid,
/// the binding is incomplete, the configuration is structurally unusable,
/// or the run deadlocks / violates the token protocol (reachable only
/// under fault injection or on graphs that bypassed validation).
pub fn simulate(
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<SimResult, SimError> {
    let mut arena = SimArena::new();
    simulate_in(&mut arena, region, binding, backend, config, energy)
}

/// Like [`simulate`], but reuses the heaps, calendars, node tables and
/// policy state pooled in `arena` instead of reallocating them — the
/// sweep harness holds one arena per worker thread across the whole
/// matrix. Results are identical to [`simulate`] for any arena history.
///
/// # Errors
///
/// Identical to [`simulate`].
pub fn simulate_in(
    arena: &mut SimArena,
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<SimResult, SimError> {
    simulate_observed(arena, region, binding, backend, config, energy, None)
}

/// Like [`simulate_in`], with a [`TelemetrySink`] attached: the sink
/// observes cycle boundaries, backpressure windows and the run summary.
///
/// Telemetry is observation only — the returned [`SimResult`] (cycles,
/// stalls, memory image, load digest) is bit-identical to running
/// [`simulate_in`] without a sink (`tests/prop_telemetry.rs` pins this).
///
/// # Errors
///
/// Identical to [`simulate`].
pub fn simulate_with_telemetry(
    arena: &mut SimArena,
    region: &Region,
    binding: &Binding,
    backend: Backend,
    config: &SimConfig,
    energy: &EnergyModel,
    sink: &mut dyn TelemetrySink,
) -> Result<SimResult, SimError> {
    simulate_observed(arena, region, binding, backend, config, energy, Some(sink))
}

#[allow(clippy::too_many_arguments)]
fn simulate_observed<'a>(
    arena: &mut SimArena,
    region: &'a Region,
    binding: &'a Binding,
    backend: Backend,
    config: &'a SimConfig,
    energy: &EnergyModel,
    sink: Option<&'a mut dyn TelemetrySink>,
) -> Result<SimResult, SimError> {
    nachos_ir::validate_region(region).map_err(SimError::Validation)?;
    if config.mem_ports == 0 {
        return Err(SimError::BadConfig("mem_ports must be positive".into()));
    }
    if config.comparators_per_site == 0 {
        return Err(SimError::BadConfig(
            "comparators_per_site must be positive".into(),
        ));
    }
    if config.lsq.alloc_per_cycle == 0 {
        return Err(SimError::BadConfig(
            "lsq.alloc_per_cycle must be positive".into(),
        ));
    }
    if binding.base_addrs.len() < region.bases.len() {
        return Err(SimError::IncompleteBinding(format!(
            "{} base addresses for {} bases",
            binding.base_addrs.len(),
            region.bases.len()
        )));
    }
    if binding.params.len() < region.params.len() {
        return Err(SimError::IncompleteBinding(
            "missing parameter values".into(),
        ));
    }
    if binding.unknowns.len() < region.num_unknowns {
        return Err(SimError::IncompleteBinding(
            "missing unknown-pointer patterns".into(),
        ));
    }
    let placement = Placement::compute(&region.dfg, config.grid)?;
    let (bufs, policy) = arena.split(backend, config);
    let mut core = SchedCore::new(region, binding, backend, config, placement, bufs, sink);
    // Drive a monomorphized event loop per backend: the policy hooks sit
    // on the engine's hottest path, and concrete dispatch lets them
    // inline where a `dyn` call could not.
    let result = match policy {
        PolicyMut::OptLsq(p) => drive(&mut core, p, config, energy),
        PolicyMut::NachosSw(p) => drive(&mut core, p, config, energy),
        PolicyMut::Nachos(p) => drive(&mut core, p, config, energy),
        PolicyMut::Ideal(p) => drive(&mut core, p, config, energy),
    };
    core.reclaim(bufs);
    result
}

/// Runs every invocation and finalizes the result for one concrete
/// policy type.
fn drive<P: DisambiguationPolicy>(
    core: &mut SchedCore,
    policy: &mut P,
    config: &SimConfig,
    energy: &EnergyModel,
) -> Result<SimResult, SimError> {
    for inv in 0..config.invocations {
        core.run_invocation(policy, inv)?;
    }
    Ok(core.finish(policy, energy))
}
