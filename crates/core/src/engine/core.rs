//! The backend-agnostic scheduler core.
//!
//! [`SchedCore`] owns everything every disambiguation scheme shares: the
//! event calendar, operand readiness and firing, functional execution,
//! scratchpad and cache access, memory-port arbitration, stall-window
//! accounting, fault-injection polling and the deadlock watchdog. It
//! contains **zero** backend-specific branches — every point where the
//! schemes diverge is a call through the
//! [`DisambiguationPolicy`](super::policy::DisambiguationPolicy) trait.
//!
//! Hot-path layout: per-node state is a structure of arrays
//! ([`NodeTable`]), events flow through the bucketed calendar queue
//! ([`EventQueue`]), and an optional [`TelemetrySink`] observes cycle
//! boundaries and backpressure windows without perturbing either.

use crate::config::{Backend, CancelToken, SimConfig};
use crate::energy::EventCounts;
use crate::error::{DeadlockCause, DeadlockInfo, SimError, StalledNode, WaitForEdge};
use crate::fault::{FaultClass, FaultKind, FaultState};
use crate::value::{apply, LoadObserver};
use nachos_cgra::Placement;
use nachos_ir::{Binding, EdgeKind, MemSpace, NodeId, OpKind, Region};
use nachos_mem::{DataMemory, MemoryHierarchy};

use super::arena::CoreBufs;
use super::calendar::Calendar;
use super::policy::{DisambiguationPolicy, EdgeGate};
use super::queue::EventQueue;
use super::state::{Ev, NodeTable, StallCause};
use super::telemetry::{BackpressureEvent, CycleRecord, RunSummary, TelemetrySink};
use super::StallCounts;

/// The shared execution substrate. Policies reach into the `pub(crate)`
/// fields for state/counters and call the `pub(crate)` methods for event
/// scheduling and memory access; the core itself never inspects which
/// policy is driving it (the `backend` field is carried for diagnostics
/// and fault-scoping only).
pub(crate) struct SchedCore<'a> {
    pub(crate) region: &'a Region,
    pub(crate) binding: &'a Binding,
    pub(crate) backend: Backend,
    pub(crate) config: &'a SimConfig,
    pub(crate) placement: Placement,
    pub(crate) hierarchy: MemoryHierarchy,
    pub(crate) mem: DataMemory,
    pub(crate) loads: LoadObserver,
    pub(crate) counts: EventCounts,
    pub(crate) clock: u64,
    /// Per-invocation node state (rebuilt each invocation), SoA layout.
    pub(crate) state: NodeTable,
    pub(crate) mem_ports: Calendar,
    /// Cycle-weighted stall attribution for the whole run.
    pub(crate) stalls: StallCounts,
    /// Fault-injection opportunity counters and fired-fault log.
    pub(crate) fault: FaultState,
    queue: EventQueue,
    /// Opt-in observer; `None` costs one branch per event.
    sink: Option<&'a mut dyn TelemetrySink>,
    /// Events handled at the current `clock` cycle (telemetry census).
    cyc_events: u64,
    pub(crate) inv: u64,
    pub(crate) iv: Vec<i64>,
    pub(crate) unknown_vals: Vec<u64>,
    /// This invocation's store nodes, program order (reused scratch).
    pub(crate) store_nodes: Vec<NodeId>,
    /// Operand-gathering scratch.
    operands: Vec<u64>,
}

/// Node kind lookup that borrows only the region (usable while `self` is
/// otherwise mutably borrowed).
pub(crate) fn node_kind(region: &Region, n: NodeId) -> &OpKind {
    &region.dfg.node(n).kind
}

/// Scratchpad test that borrows only the region.
pub(crate) fn is_scratch(region: &Region, n: NodeId) -> bool {
    node_kind(region, n)
        .mem_ref()
        .is_some_and(|m| m.space == MemSpace::Scratchpad)
}

impl<'a> SchedCore<'a> {
    pub(crate) fn new(
        region: &'a Region,
        binding: &'a Binding,
        backend: Backend,
        config: &'a SimConfig,
        placement: Placement,
        bufs: &mut CoreBufs,
        sink: Option<&'a mut dyn TelemetrySink>,
    ) -> Self {
        let n = region.dfg.num_nodes();
        let mut state = std::mem::take(&mut bufs.state);
        state.reset(n);
        let mut queue = std::mem::take(&mut bufs.queue);
        queue.clear();
        let hierarchy = match bufs.hierarchy.take() {
            Some(mut h) if *h.config() == config.hierarchy => {
                h.reset();
                h
            }
            _ => MemoryHierarchy::new(config.hierarchy),
        };
        let mem_ports = Calendar::from_parts(config.mem_ports, std::mem::take(&mut bufs.ports));
        Self {
            region,
            binding,
            backend,
            config,
            placement,
            hierarchy,
            mem: DataMemory::new(),
            loads: LoadObserver::new(),
            counts: EventCounts::default(),
            clock: 0,
            state,
            mem_ports,
            stalls: StallCounts::default(),
            fault: FaultState::default(),
            queue,
            sink,
            cyc_events: 0,
            inv: 0,
            iv: std::mem::take(&mut bufs.iv),
            unknown_vals: std::mem::take(&mut bufs.unknown_vals),
            store_nodes: std::mem::take(&mut bufs.store_nodes),
            operands: std::mem::take(&mut bufs.operands),
        }
    }

    /// Returns the reusable buffers to the arena.
    pub(crate) fn reclaim(self, bufs: &mut CoreBufs) {
        let Self {
            mut state,
            mut queue,
            mem_ports,
            hierarchy,
            mut store_nodes,
            operands,
            iv,
            unknown_vals,
            ..
        } = self;
        state.reset(0);
        queue.clear();
        store_nodes.clear();
        bufs.state = state;
        bufs.queue = queue;
        bufs.ports = mem_ports.into_used();
        bufs.hierarchy = Some(hierarchy);
        bufs.store_nodes = store_nodes;
        bufs.operands = operands;
        bufs.iv = iv;
        bufs.unknown_vals = unknown_vals;
    }

    pub(crate) fn push(&mut self, at: u64, ev: Ev) {
        self.queue.push(at, ev);
    }

    pub(crate) fn node_kind(&self, n: NodeId) -> &OpKind {
        node_kind(self.region, n)
    }

    pub(crate) fn is_scratch(&self, n: NodeId) -> bool {
        is_scratch(self.region, n)
    }

    /// Emits the per-cycle telemetry census for the current `clock`
    /// cycle, if a sink is attached and the cycle handled any events.
    fn flush_cycle(&mut self) {
        if self.cyc_events == 0 {
            return;
        }
        let rec = CycleRecord {
            cycle: self.clock,
            invocation: self.inv,
            events: self.cyc_events,
            queue_depth: self.queue.len() as u64,
            stalls: self.stalls,
            may_checks: self.counts.may_checks,
        };
        self.cyc_events = 0;
        if let Some(s) = self.sink.as_mut() {
            s.on_cycle(&rec);
        }
    }

    pub(crate) fn run_invocation<P: DisambiguationPolicy>(
        &mut self,
        policy: &mut P,
        inv: u64,
    ) -> Result<(), SimError> {
        self.inv = inv;
        let t0 = self.clock;
        let region = self.region;
        let nest_total = region.loops.total_invocations().max(1);
        self.iv.clear();
        if !region.loops.is_empty() {
            let mut iv = std::mem::take(&mut self.iv);
            region
                .loops
                .iteration_vector_into(inv % nest_total, &mut iv);
            self.iv = iv;
        }
        let mut unknown_vals = std::mem::take(&mut self.unknown_vals);
        self.binding.unknown_values_into(inv, &mut unknown_vals);
        self.unknown_vals = unknown_vals;

        // Rebuild per-invocation node state. The policy decides how each
        // non-local memory-dependence edge gates its destination; data
        // edges and scratchpad-local dependencies (register dataflow the
        // compiler wired explicitly — the LSQ never sees local accesses)
        // are gated identically under every backend.
        policy.begin_invocation(self, t0);
        self.state.reset(region.dfg.num_nodes());
        for n in region.dfg.node_ids() {
            let (mut data, mut token, mut may) = (0u32, 0u32, 0u32);
            for e in region.dfg.in_edges(n) {
                let local = is_scratch(region, e.src) && is_scratch(region, e.dst);
                let gate = match e.kind {
                    EdgeKind::Data => EdgeGate::Data,
                    EdgeKind::Forward if local => EdgeGate::Data,
                    EdgeKind::Order | EdgeKind::May if local => EdgeGate::Token,
                    _ => policy.edge_gate(self, e),
                };
                match gate {
                    EdgeGate::Data => data += 1,
                    EdgeGate::Token => token += 1,
                    EdgeGate::May => may += 1,
                    EdgeGate::Ignore => {}
                }
            }
            let i = n.index();
            self.state.data_pending[i] = data;
            self.state.token_pending[i] = token;
            self.state.may_pending[i] = may;
        }
        // Program-order setup: LSQ allocation, MAY-site construction.
        policy.after_gating(self, t0);

        // Invocations are block-atomic: no event before t0 can be claimed
        // again, so drop the port calendar's history (unbounded otherwise).
        self.mem_ports.prune_below(t0);

        // Store addresses resolve from index computation, independent of
        // the (possibly late) data operand — like the separate
        // address/data paths of a real LSQ, and like Figure 13's
        // comparator receiving store addresses before the stores execute.
        let agen = self.config.latency.mem_agen;
        let mut stores = std::mem::take(&mut self.store_nodes);
        stores.clear();
        stores.extend(
            region
                .dfg
                .mem_ops()
                .iter()
                .copied()
                .filter(|&n| node_kind(region, n).is_store()),
        );
        for &n in &stores {
            let (addr, size) = self.eval_mem_ref(n);
            let i = n.index();
            self.state.addr[i] = addr;
            self.state.size[i] = size;
            self.state.addr_ready[i] = t0 + agen;
        }
        self.store_nodes = stores;
        policy.on_stores_resolved(self, t0, agen);

        // Seed source nodes.
        for n in region.dfg.node_ids() {
            if self.state.data_pending[n.index()] == 0 {
                self.push(t0, Ev::Data(n)); // zero-pending: fires immediately
            }
        }

        // Event loop, under the watchdog's cycle budget. A healthy
        // invocation finishes orders of magnitude below the budget; only
        // a zero-progress hang (e.g. a livelocked retry chain) can reach
        // the deadline. The cooperative cancellation token is polled at
        // the same granularity as the watchdog check: once per event, so
        // a supervisor can stop a run within one simulated cycle without
        // killing the worker thread.
        let budget = self.config.watchdog.budget(region.dfg.num_nodes());
        let deadline = t0.saturating_add(budget);
        let cancel = self.config.cancel.clone();
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= t0);
            if t > deadline {
                return Err(self.deadlock(DeadlockCause::BudgetExhausted, t, budget));
            }
            if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Err(SimError::Cancelled {
                    backend: self.backend,
                    invocation: self.inv,
                    cycle: t,
                });
            }
            self.handle(policy, t, ev)?;
        }

        // The queue drained: every node must have completed. A node left
        // incomplete means some gate never opened — a dropped token, a
        // never-released MAY gate — and the run would silently produce
        // partial results. Convert the starvation into a diagnosed
        // deadlock instead.
        if self.state.completed.contains(&super::state::NO_CYCLE) {
            let at = self.clock;
            return Err(self.deadlock(DeadlockCause::Starved, at, budget));
        }

        // Close the invocation's last cycle in the telemetry stream
        // before the drain advances the clock event-free.
        if self.sink.is_some() {
            self.flush_cycle();
        }

        // Let the policy drain its structures (e.g. LSQ retirement) so the
        // next invocation can begin; bounded by the same budget.
        policy.end_invocation(self, deadline, budget)?;

        // Count this invocation's span; leave one idle cycle between
        // block-atomic invocations.
        self.clock += 1;
        Ok(())
    }

    /// Evaluates a memory op's reference against the current invocation's
    /// binding context.
    pub(crate) fn eval_mem_ref(&self, n: NodeId) -> (u64, u8) {
        let mref = node_kind(self.region, n).mem_ref().expect("mem op");
        let ctx = self.binding.eval_ctx(&self.iv, &self.unknown_vals);
        (mref.eval(&ctx), mref.size)
    }

    /// Polls the fault injector at one opportunity of `class`.
    pub(crate) fn poll_fault(&mut self, class: FaultClass) -> Option<FaultKind> {
        self.fault.poll(&self.config.fault, self.backend, class)
    }

    /// Delivers an ordering token to `dst` at `at`, counting the delivery
    /// as a token fault-injection opportunity (drop / duplicate).
    pub(crate) fn push_token(&mut self, at: u64, dst: NodeId) {
        match self.poll_fault(FaultClass::TokenDelivery) {
            Some(FaultKind::DropToken) => {
                self.fault.record(
                    FaultKind::DropToken,
                    at,
                    &format!("token to node {}", dst.index()),
                );
            }
            Some(FaultKind::DuplicateToken) => {
                self.fault.record(
                    FaultKind::DuplicateToken,
                    at,
                    &format!("token to node {}", dst.index()),
                );
                self.push(at, Ev::Token(dst));
                self.push(at, Ev::Token(dst));
            }
            _ => self.push(at, Ev::Token(dst)),
        }
    }

    /// Builds the deadlock diagnostic: every incomplete node with its
    /// outstanding gate counts, plus the wait-for edges among them.
    pub(crate) fn deadlock(&mut self, cause: DeadlockCause, cycle: u64, budget: u64) -> SimError {
        let mut incomplete = vec![false; self.state.len()];
        let mut stalled = Vec::new();
        for n in self.region.dfg.node_ids() {
            let i = n.index();
            if !self.state.is_completed(i) {
                incomplete[i] = true;
                stalled.push(StalledNode {
                    node: i,
                    data_pending: self.state.data_pending[i],
                    token_pending: self.state.token_pending[i],
                    may_pending: self.state.may_pending[i],
                    fired: self.state.has_fired(i),
                    issued: self.state.issued[i],
                });
            }
        }
        let mut wait_for = Vec::new();
        for n in self.region.dfg.node_ids() {
            if !incomplete[n.index()] {
                continue;
            }
            for e in self.region.dfg.in_edges(n) {
                if incomplete[e.src.index()] {
                    let kind = match e.kind {
                        EdgeKind::Data => "data",
                        EdgeKind::Order => "order",
                        EdgeKind::Forward => "forward",
                        EdgeKind::May => "may",
                    };
                    wait_for.push(WaitForEdge {
                        from: e.src.index(),
                        to: n.index(),
                        kind: kind.into(),
                    });
                }
            }
        }
        SimError::Deadlock(Box::new(DeadlockInfo {
            backend: self.backend,
            invocation: self.inv,
            cycle,
            budget,
            cause,
            stalled,
            wait_for,
            stalls: self.stalls,
            injected: self.fault.fired.clone(),
        }))
    }

    fn handle<P: DisambiguationPolicy>(
        &mut self,
        policy: &mut P,
        t: u64,
        ev: Ev,
    ) -> Result<(), SimError> {
        if t > self.clock {
            if self.sink.is_some() {
                self.flush_cycle();
            }
            self.clock = t;
        }
        self.cyc_events += 1;
        if let Some(FaultKind::PanicOnEvent) = self.poll_fault(FaultClass::Event) {
            // Deliberate: exercises the sweep harness's per-run panic
            // isolation (`catch_unwind` at the worker boundary).
            panic!("injected fault: panic-on-event at cycle {t} handling {ev:?}");
        }
        match ev {
            Ev::Data(n) => {
                let i = n.index();
                if self.state.has_fired(i) {
                    return Ok(());
                }
                self.state.data_pending[i] = self.state.data_pending[i].saturating_sub(1);
                if self.state.data_pending[i] == 0 {
                    self.fire(policy, t, n);
                }
            }
            Ev::Token(n) => {
                let i = n.index();
                match self.state.token_pending[i].checked_sub(1) {
                    Some(left) => self.state.token_pending[i] = left,
                    None => {
                        return Err(SimError::ProtocolViolation {
                            backend: self.backend,
                            node: i,
                            message: "ordering-token underflow: an extra completion \
                                      token arrived"
                                .into(),
                        });
                    }
                }
                self.push(t, Ev::TryMem(n));
            }
            Ev::Release(n) => {
                let i = n.index();
                match self.state.may_pending[i].checked_sub(1) {
                    Some(left) => self.state.may_pending[i] = left,
                    None => {
                        return Err(SimError::ProtocolViolation {
                            backend: self.backend,
                            node: i,
                            message: "MAY-gate release underflow: an extra comparator \
                                      release arrived"
                                .into(),
                        });
                    }
                }
                self.push(t, Ev::TryMem(n));
            }
            Ev::TryMem(n) => self.try_mem(policy, t, n),
            Ev::Complete(n) => self.complete(policy, t, n),
        }
        Ok(())
    }

    /// All data (and forward) operands have arrived: start execution.
    fn fire<P: DisambiguationPolicy>(&mut self, policy: &mut P, t: u64, n: NodeId) {
        self.state.fired[n.index()] = t;
        let region = self.region;
        let kind = node_kind(region, n);
        match kind {
            OpKind::Load(_) => {
                // Count address generation as an integer ALU event.
                self.counts.int_ops += 1;
                let (addr, size) = self.eval_mem_ref(n);
                let agen = self.config.latency.mem_agen;
                let addr_t = t + agen;
                let i = n.index();
                self.state.addr[i] = addr;
                self.state.size[i] = size;
                self.state.addr_ready[i] = addr_t;
                policy.on_load_address(self, addr_t, n);
                self.push(addr_t, Ev::TryMem(n));
            }
            OpKind::Store(_) => {
                // Address was resolved at invocation start; firing means
                // the data operand is now available.
                self.counts.int_ops += 1;
                let v = self.eval_node(n);
                self.state.value[n.index()] = v;
                policy.on_store_data(self, t, n);
                // Forwarding happens from the *in-flight* value: the
                // moment the store's data operand exists, it can be
                // routed to forwarded loads — before the store commits.
                for e in region.dfg.out_edges(n) {
                    if e.kind != EdgeKind::Forward {
                        continue;
                    }
                    let hops = self.placement.hops(e.src, e.dst);
                    let at = t + self.config.latency.route_latency(hops);
                    if is_scratch(region, e.src) && is_scratch(region, e.dst) {
                        self.counts.data_links += 1;
                        self.push(at, Ev::Data(e.dst));
                    } else {
                        policy.on_forward_edge(self, at, e.dst);
                    }
                }
                let ready = self.state.addr_ready[n.index()];
                debug_assert_ne!(ready, super::state::NO_CYCLE, "set at start");
                self.push(ready.max(t), Ev::TryMem(n));
            }
            OpKind::Int(_) => {
                self.counts.int_ops += 1;
                let v = self.eval_node(n);
                self.state.value[n.index()] = v;
                self.push(t + self.config.latency.op_latency(kind), Ev::Complete(n));
            }
            OpKind::Fp(_) => {
                self.counts.fp_ops += 1;
                let v = self.eval_node(n);
                self.state.value[n.index()] = v;
                self.push(t + self.config.latency.op_latency(kind), Ev::Complete(n));
            }
            OpKind::Input { .. } | OpKind::Const { .. } | OpKind::Output => {
                let v = self.eval_node(n);
                self.state.value[n.index()] = v;
                self.push(t, Ev::Complete(n));
            }
        }
    }

    /// Applies a node's operator to its data operands (reusing the operand
    /// scratch buffer).
    fn eval_node(&mut self, n: NodeId) -> u64 {
        let region = self.region;
        let kind = node_kind(region, n);
        let mut ops = std::mem::take(&mut self.operands);
        ops.clear();
        ops.extend(
            region
                .dfg
                .in_edges(n)
                .filter(|e| e.kind == EdgeKind::Data)
                .map(|e| self.state.value[e.src.index()]),
        );
        let v = apply(kind, &ops, self.inv);
        self.operands = ops;
        v
    }

    /// Attempts the memory stage of a load/store: the core checks address
    /// readiness, the policy decides admission. (Under OPT-LSQ, stores may
    /// bind and pre-search before their data operand arrives; issuing to
    /// the cache always requires the node to have fired.)
    fn try_mem<P: DisambiguationPolicy>(&mut self, policy: &mut P, t: u64, n: NodeId) {
        let i = n.index();
        if self.state.issued[i] {
            return;
        }
        let Some(addr_t) = self.state.addr_ready_at(i) else {
            return;
        };
        if t < addr_t {
            return;
        }
        let fired = self.state.has_fired(i);
        policy.admit_mem(self, t, n, fired);
    }

    /// Closes a memory op's stall-attribution window (opened when a ready
    /// op was observed blocked) and charges the recorded mechanism.
    pub(crate) fn charge_block_stall(&mut self, t: u64, n: NodeId) {
        if let Some((since, cause)) = self.state.take_block(n.index()) {
            let cycles = t.saturating_sub(since);
            match cause {
                StallCause::LsqSearch => self.stalls.lsq_search += cycles,
                StallCause::Token => self.stalls.token += cycles,
                StallCause::MayGate => self.stalls.may_gate += cycles,
            }
            if self.sink.is_some() {
                let ev = BackpressureEvent {
                    invocation: self.inv,
                    node: n.index(),
                    cause,
                    from: since,
                    until: t,
                };
                if let Some(s) = self.sink.as_mut() {
                    s.on_backpressure(&ev);
                }
            }
        }
    }

    pub(crate) fn has_forward_in(&self, n: NodeId) -> bool {
        self.region
            .dfg
            .in_edges(n)
            .any(|e| e.kind == EdgeKind::Forward)
    }

    fn forward_value(&self, n: NodeId) -> u64 {
        self.region
            .dfg
            .in_edges(n)
            .find(|e| e.kind == EdgeKind::Forward)
            .map(|e| self.state.value[e.src.index()])
            .expect("forward edge present")
    }

    /// The gate-free memory stage: all ordering gates passed, go to memory
    /// (or consume the forwarded value).
    pub(crate) fn issue_dataflow(&mut self, t: u64, n: NodeId) {
        self.charge_block_stall(t, n);
        let is_load = self.node_kind(n).is_load();
        if self.is_scratch(n) {
            self.state.issued[n.index()] = true;
            self.scratch_access(t, n);
            return;
        }
        if is_load && self.has_forward_in(n) {
            // Memory dependence became a data dependence: no cache access.
            self.state.issued[n.index()] = true;
            let v = self.forward_value(n);
            let v = self.consume_forward(t, n, v, "forward into node");
            self.state.value[n.index()] = v;
            self.counts.forwards += 1;
            self.record_load(n, v);
            self.push(t + 1, Ev::Complete(n));
            return;
        }
        self.state.issued[n.index()] = true;
        self.cache_access(t, n, 0);
    }

    /// Applies the forward-consume fault hook (possible value corruption)
    /// to a forwarded value.
    pub(crate) fn consume_forward(&mut self, t: u64, n: NodeId, mut v: u64, what: &str) -> u64 {
        if let Some(FaultKind::CorruptForward { mask }) =
            self.poll_fault(FaultClass::ForwardConsume)
        {
            self.fault.record(
                FaultKind::CorruptForward { mask },
                t,
                &format!("{what} {}", n.index()),
            );
            v ^= mask;
        }
        v
    }

    /// Performs the scratchpad access: 1-cycle latency, no cache energy.
    pub(crate) fn scratch_access(&mut self, t: u64, n: NodeId) {
        let is_load = self.node_kind(n).is_load();
        let i = n.index();
        let (addr, size) = (self.state.addr[i], self.state.size[i]);
        if is_load {
            let v = self.mem.read(addr, size);
            self.state.value[i] = v;
            self.record_load(n, v);
        } else {
            let v = self.state.value[i];
            self.mem.write(addr, size, v);
        }
        self.push(t + 1, Ev::Complete(n));
    }

    /// Issues a cache access through the edge ports; performs the
    /// functional read/write at the issue cycle.
    pub(crate) fn cache_access(&mut self, t: u64, n: NodeId, mut extra_latency: u64) {
        if let Some(FaultKind::DelayMem { cycles }) = self.poll_fault(FaultClass::MemResponse) {
            self.fault.record(
                FaultKind::DelayMem { cycles },
                t,
                &format!("response to node {}", n.index()),
            );
            extra_latency += cycles;
        }
        let issue = self.mem_ports.claim(t);
        // Cycles spent queued for an edge memory port.
        self.stalls.mem_port += issue - t;
        let is_load = self.node_kind(n).is_load();
        let i = n.index();
        let (addr, size) = (self.state.addr[i], self.state.size[i]);
        let hops = self.placement.hops_to_mem(n);
        // Request + response each traverse the FU<->cache connection once.
        self.counts.mem_links += 2;
        self.counts.l1_accesses += 1;
        let res = self.hierarchy.access(addr, !is_load, issue);
        if is_load {
            let v = self.mem.read(addr, size);
            self.state.value[i] = v;
            self.record_load(n, v);
        } else {
            let v = self.state.value[i];
            self.mem.write(addr, size, v);
        }
        let route = self.config.latency.route_latency(hops);
        self.push(res.complete_at + extra_latency + route, Ev::Complete(n));
    }

    pub(crate) fn record_load(&mut self, n: NodeId, v: u64) {
        let slot = self
            .region
            .dfg
            .node(n)
            .mem_slot
            .expect("load has a slot")
            .index();
        self.loads.record(self.inv, slot, v);
    }

    /// A node finished: propagate values, tokens and completion wakeups.
    fn complete<P: DisambiguationPolicy>(&mut self, policy: &mut P, t: u64, n: NodeId) {
        if self.state.is_completed(n.index()) {
            return;
        }
        self.state.completed[n.index()] = t;
        let region = self.region;
        for e in region.dfg.out_edges(n) {
            let dst = e.dst;
            let route = self
                .config
                .latency
                .route_latency(self.placement.hops(e.src, dst));
            let local = is_scratch(region, n) && is_scratch(region, dst);
            match e.kind {
                EdgeKind::Data => {
                    self.counts.data_links += 1;
                    self.push(t + route, Ev::Data(dst));
                }
                // Forward payloads were already sent when the store's
                // value became available (see the Store arm of `fire`).
                EdgeKind::Forward => {}
                // Local (scratchpad) dependencies are register dataflow:
                // honoured everywhere, no MDE energy.
                EdgeKind::Order | EdgeKind::May if local => {
                    self.push_token(t + route, dst);
                }
                EdgeKind::Order | EdgeKind::May => {
                    policy.on_completion_edge(self, t + route, dst, e.kind);
                }
            }
        }
        policy.on_complete(self, t, n);
    }

    pub(crate) fn finish<P: DisambiguationPolicy>(
        &mut self,
        policy: &mut P,
        energy: &crate::energy::EnergyModel,
    ) -> super::SimResult {
        let mut counts = self.counts;
        let bloom = policy.finalize(&mut counts);
        let breakdown = crate::energy::EnergyBreakdown::from_events(&counts, energy);
        let injected = std::mem::take(&mut self.fault.fired);
        // Distinct younger operations carrying a `==?` comparator: each
        // MAY-edge destination hosts one site, however many parents fan
        // in. Scratchpad-local MAY edges become plain tokens (no check).
        let mut site_at = vec![false; self.region.dfg.num_nodes()];
        for e in self.region.dfg.edges() {
            if e.kind == EdgeKind::May
                && !(is_scratch(self.region, e.src) && is_scratch(self.region, e.dst))
            {
                site_at[e.dst.index()] = true;
            }
        }
        let comparator_sites = site_at.iter().filter(|&&s| s).count() as u64;
        let queue_events = self.queue.pushes();
        let heap_max_depth = self.queue.max_depth();
        if self.sink.is_some() {
            self.flush_cycle();
            let summary = RunSummary {
                backend: self.backend,
                cycles: self.clock,
                invocations: self.config.invocations,
                queue_events,
                heap_max_depth,
                stalls: self.stalls,
            };
            if let Some(s) = self.sink.as_mut() {
                s.on_run_end(&summary);
            }
        }
        super::SimResult {
            backend: self.backend,
            cycles: self.clock,
            invocations: self.config.invocations,
            events: counts,
            energy: breakdown,
            mem: std::mem::replace(&mut self.mem, DataMemory::new()),
            loads: std::mem::replace(&mut self.loads, LoadObserver::new()),
            l1: self.hierarchy.l1_stats(),
            llc: self.hierarchy.llc_stats(),
            bloom,
            stalls: self.stalls,
            comparator_sites,
            queue_events,
            heap_max_depth,
            injected,
        }
    }
}
