//! Opt-in cycle-level telemetry for the scheduler core.
//!
//! A [`TelemetrySink`] observes a run without participating in it: the
//! core calls the sink at cycle boundaries (one [`CycleRecord`] per
//! simulated cycle that handled events), whenever a stall-attribution
//! window closes (one [`BackpressureEvent`] per blocked→released memory
//! op), and once at the end of the run ([`RunSummary`]). Telemetry is
//! observation, never causation: attaching any sink yields bit-identical
//! cycles, stall counters and reports to running without one (pinned by
//! `tests/prop_telemetry.rs`), and runs without a sink pay a single
//! branch per event (asserted allocation-free by the `engine_reuse`
//! criterion bench).
//!
//! [`StatsWriter`] is the stock sink: it streams `nachos-stats-v1` JSON
//! lines (cyclotron-style `stats.jsonl`) suitable for offline stall
//! analysis; the sweep and bench binaries expose it as `--stats PATH`.
//! The stream deliberately lives *outside* [`crate::config::SimConfig`],
//! so journal and cache RunKeys — content hashes over the run's inputs —
//! are byte-identical with and without telemetry.

use std::io::{self, Write};

use crate::config::Backend;
use crate::json::JsonWriter;

use super::state::StallCause;
use super::StallCounts;

/// One simulated cycle's census, emitted when the scheduler's clock
/// leaves the cycle. Counter fields (`stalls`, `may_checks`) are
/// cumulative over the run so far — consumers diff consecutive records
/// for per-cycle rates.
#[derive(Clone, Copy, Debug)]
pub struct CycleRecord {
    /// The cycle being closed.
    pub cycle: u64,
    /// Invocation the cycle belonged to.
    pub invocation: u64,
    /// Events handled at this cycle.
    pub events: u64,
    /// Queue depth (events pending) when the cycle closed.
    pub queue_depth: u64,
    /// Cumulative stall-attribution counters.
    pub stalls: StallCounts,
    /// Cumulative `==?` comparator checks.
    pub may_checks: u64,
}

/// One closed backpressure window: a ready memory op sat blocked from
/// `from` until `until`, charged to `cause`.
#[derive(Clone, Copy, Debug)]
pub struct BackpressureEvent {
    /// Invocation the window closed in.
    pub invocation: u64,
    /// The blocked node.
    pub node: usize,
    /// The ordering mechanism that held it.
    pub cause: StallCause,
    /// First cycle the op was observed blocked.
    pub from: u64,
    /// Cycle the op was released (retried successfully).
    pub until: u64,
}

/// End-of-run aggregates, mirroring what lands in the perf artifact.
#[derive(Clone, Copy, Debug)]
pub struct RunSummary {
    /// Backend simulated.
    pub backend: Backend,
    /// Total cycles across all invocations.
    pub cycles: u64,
    /// Invocations executed.
    pub invocations: u64,
    /// Total events pushed through the calendar queue.
    pub queue_events: u64,
    /// High-water mark of the queue's live depth.
    pub heap_max_depth: u64,
    /// Final stall-attribution counters.
    pub stalls: StallCounts,
}

/// A passive observer of one simulation run. All hooks default to no-ops
/// so sinks implement only what they consume.
pub trait TelemetrySink {
    /// A simulated cycle closed.
    fn on_cycle(&mut self, _rec: &CycleRecord) {}

    /// A blocked memory op was released.
    fn on_backpressure(&mut self, _ev: &BackpressureEvent) {}

    /// The run finished.
    fn on_run_end(&mut self, _summary: &RunSummary) {}
}

/// The do-nothing sink: attaching it must be indistinguishable from
/// attaching none (beyond the per-event dispatch).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {}

fn stall_fields(w: &mut JsonWriter, s: &StallCounts) {
    w.key("stalls");
    w.open_obj();
    w.u64_field("lsq_alloc", s.lsq_alloc);
    w.u64_field("lsq_search", s.lsq_search);
    w.u64_field("token", s.token);
    w.u64_field("may_gate", s.may_gate);
    w.u64_field("comparator", s.comparator);
    w.u64_field("mem_port", s.mem_port);
    w.close_obj();
}

/// Streams `nachos-stats-v1` JSON lines to a writer.
///
/// Line vocabulary (`"t"` tags the record type):
///
/// * `{"schema":"nachos-stats-v1","run":…,"backend":…}` — run header,
///   written on construction / [`StatsWriter::begin_run`];
/// * `{"t":"cycle","cycle":…,"invocation":…,"events":…,"queue_depth":…,
///   "stalls":{…},"may_checks":…}` — per-cycle census (cumulative
///   counters);
/// * `{"t":"backpressure","invocation":…,"node":…,"cause":…,"from":…,
///   "until":…}` — one closed stall window;
/// * `{"t":"summary","backend":…,"cycles":…,"queue_events":…,
///   "heap_max_depth":…,"stalls":{…}}` — end of run.
///
/// Write errors are recorded (see [`StatsWriter::io_error`]) and silence
/// the stream rather than panicking mid-simulation.
pub struct StatsWriter<W: Write> {
    out: W,
    run: String,
    error: Option<io::Error>,
}

impl<W: Write> StatsWriter<W> {
    /// Creates a writer labelled `run` and emits the header line.
    pub fn new(out: W, run: &str) -> Self {
        let mut s = Self {
            out,
            run: String::new(),
            error: None,
        };
        s.begin_run(run, None);
        s
    }

    /// Starts a new run block (the stream can carry several runs, e.g.
    /// one per sweep cell): emits a fresh header line.
    pub fn begin_run(&mut self, run: &str, backend: Option<Backend>) {
        self.run = run.to_owned();
        let mut w = JsonWriter::compact();
        w.open_obj();
        w.str_field("schema", "nachos-stats-v1");
        w.str_field("run", run);
        if let Some(b) = backend {
            w.str_field("backend", &b.to_string());
        }
        w.close_obj();
        self.line(w.finish());
    }

    /// The first write error, if the stream went silent.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the first error the stream encountered (including the
    /// final flush).
    pub fn finish(mut self) -> io::Result<W> {
        match self.error {
            Some(e) => Err(e),
            None => {
                self.out.flush()?;
                Ok(self.out)
            }
        }
    }

    fn line(&mut self, json: String) {
        if self.error.is_some() {
            return;
        }
        // `JsonWriter::finish` already terminates the line.
        debug_assert!(json.ends_with('\n'), "JSON lines are newline-terminated");
        if let Err(e) = self.out.write_all(json.as_bytes()) {
            self.error = Some(e);
        }
    }
}

impl<W: Write> TelemetrySink for StatsWriter<W> {
    fn on_cycle(&mut self, rec: &CycleRecord) {
        let mut w = JsonWriter::compact();
        w.open_obj();
        w.str_field("t", "cycle");
        w.u64_field("cycle", rec.cycle);
        w.u64_field("invocation", rec.invocation);
        w.u64_field("events", rec.events);
        w.u64_field("queue_depth", rec.queue_depth);
        stall_fields(&mut w, &rec.stalls);
        w.u64_field("may_checks", rec.may_checks);
        w.close_obj();
        self.line(w.finish());
    }

    fn on_backpressure(&mut self, ev: &BackpressureEvent) {
        let mut w = JsonWriter::compact();
        w.open_obj();
        w.str_field("t", "backpressure");
        w.u64_field("invocation", ev.invocation);
        w.u64_field("node", ev.node as u64);
        w.str_field("cause", ev.cause.label());
        w.u64_field("from", ev.from);
        w.u64_field("until", ev.until);
        w.close_obj();
        self.line(w.finish());
    }

    fn on_run_end(&mut self, summary: &RunSummary) {
        let mut w = JsonWriter::compact();
        w.open_obj();
        w.str_field("t", "summary");
        w.str_field("run", &self.run.clone());
        w.str_field("backend", &summary.backend.to_string());
        w.u64_field("cycles", summary.cycles);
        w.u64_field("invocations", summary.invocations);
        w.u64_field("queue_events", summary.queue_events);
        w.u64_field("heap_max_depth", summary.heap_max_depth);
        stall_fields(&mut w, &summary.stalls);
        w.close_obj();
        self.line(w.finish());
    }
}
