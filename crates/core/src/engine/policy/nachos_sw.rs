//! The NACHOS-SW policy: MDEs in full, with MAY edges serialized exactly
//! like MUST edges (paper §V) — every dependence is a 1-bit completion
//! token over the operand network, and no comparator hardware exists.

use crate::config::{Backend, SimConfig};
use nachos_ir::{Edge, EdgeKind, NodeId};

use super::super::core::SchedCore;
use super::super::state::Ev;
use super::{dataflow_admit, DisambiguationPolicy, EdgeGate};

#[derive(Default)]
pub(crate) struct NachosSwPolicy;

impl DisambiguationPolicy for NachosSwPolicy {
    fn backend(&self) -> Backend {
        Backend::NachosSw
    }

    fn prepare_run(&mut self, _config: &SimConfig) {}

    fn edge_gate(&mut self, _core: &SchedCore, e: &Edge) -> EdgeGate {
        match e.kind {
            EdgeKind::Forward => EdgeGate::Data,
            // MAY is conservatively serialized: an ordering token, same
            // as MUST.
            EdgeKind::Order | EdgeKind::May => EdgeGate::Token,
            EdgeKind::Data => EdgeGate::Data,
        }
    }

    /// Forwarded values ride the operand network as MUST-edge traffic.
    fn on_forward_edge(&mut self, core: &mut SchedCore, at: u64, dst: NodeId) {
        core.counts.must_tokens += 1;
        core.push(at, Ev::Data(dst));
    }

    fn admit_mem(&mut self, core: &mut SchedCore, t: u64, n: NodeId, fired: bool) {
        dataflow_admit(core, t, n, fired);
    }

    /// Both ORDER and (serialized) MAY complete as 1-bit tokens.
    fn on_completion_edge(&mut self, core: &mut SchedCore, at: u64, dst: NodeId, _kind: EdgeKind) {
        core.counts.must_tokens += 1;
        core.push_token(at, dst);
    }
}
