//! The OPT-LSQ baseline policy: a banked, bloom-filtered load/store queue
//! with in-order, port-limited allocation and in-order retirement (paper
//! §IV). MDEs are ignored — the LSQ is the ordering mechanism — except for
//! compiler-wired scratchpad-local dependencies, which gate issue exactly
//! as they do under the MDE backends.

use crate::config::{Backend, SimConfig};
use crate::energy::EventCounts;
use crate::error::{DeadlockCause, SimError};
use nachos_ir::{Edge, NodeId};
use nachos_lsq::{BloomStats, LoadSearch, Lsq, StoreSearch};

use super::super::core::SchedCore;
use super::super::state::{Ev, StallCause};
use super::{DisambiguationPolicy, EdgeGate};

pub(crate) struct OptLsqPolicy {
    lsq: Lsq,
    /// Node -> disambiguation age for the current invocation.
    ages: Vec<Option<u32>>,
    /// Inverse mapping age -> node, rebuilt at allocation time so LSQ
    /// forwards resolve in O(1).
    age_nodes: Vec<NodeId>,
    /// The node's address has been bound into the LSQ.
    bound: Vec<bool>,
    /// The LSQ-allocation wait was already charged (at most once per op).
    alloc_charged: Vec<bool>,
    /// Nodes blocked on a search, re-tried on state changes.
    blocked: Vec<NodeId>,
    /// Swap buffer so waking the blocked set never reallocates.
    wake_scratch: Vec<NodeId>,
    /// Per-age store/load kinds (reused scratch).
    kinds: Vec<bool>,
    /// Allocation reference point: the cycle this invocation's in-order
    /// allocation began.
    alloc_t0: u64,
}

impl OptLsqPolicy {
    pub(crate) fn new(config: &SimConfig) -> Self {
        Self {
            lsq: Lsq::new(config.lsq),
            ages: Vec::new(),
            age_nodes: Vec::new(),
            bound: Vec::new(),
            alloc_charged: Vec::new(),
            blocked: Vec::new(),
            wake_scratch: Vec::new(),
            kinds: Vec::new(),
            alloc_t0: 0,
        }
    }

    fn age_of(&self, n: NodeId) -> Option<u32> {
        self.ages[n.index()]
    }

    /// Records an op blocked by an LSQ search: queues the retry and opens
    /// the stall-attribution window.
    fn lsq_block(&mut self, core: &mut SchedCore, t: u64, n: NodeId) {
        core.state.open_block(n.index(), t, StallCause::LsqSearch);
        self.blocked.push(n);
    }

    fn wake_blocked(&mut self, core: &mut SchedCore, t: u64) {
        std::mem::swap(&mut self.blocked, &mut self.wake_scratch);
        for &n in &self.wake_scratch {
            core.push(t, Ev::TryMem(n));
        }
        self.wake_scratch.clear();
    }
}

impl DisambiguationPolicy for OptLsqPolicy {
    fn backend(&self) -> Backend {
        Backend::OptLsq
    }

    fn prepare_run(&mut self, config: &SimConfig) {
        if self.lsq.config() == &config.lsq {
            self.lsq.reset();
        } else {
            self.lsq = Lsq::new(config.lsq);
        }
        self.ages.clear();
        self.age_nodes.clear();
        self.bound.clear();
        self.alloc_charged.clear();
        self.blocked.clear();
        self.kinds.clear();
        self.alloc_t0 = 0;
    }

    /// Non-local MDEs never gate issue under the LSQ: FORWARD degenerates
    /// to a queue search hit, ORDER/MAY are discharged by disambiguation.
    fn edge_gate(&mut self, _core: &SchedCore, _e: &Edge) -> EdgeGate {
        EdgeGate::Ignore
    }

    /// Allocate entries in program order with port bandwidth.
    fn after_gating(&mut self, core: &mut SchedCore, t0: u64) {
        let n = core.region.dfg.num_nodes();
        self.ages.clear();
        self.ages.resize(n, None);
        self.age_nodes.clear();
        self.bound.clear();
        self.bound.resize(n, false);
        self.alloc_charged.clear();
        self.alloc_charged.resize(n, false);
        self.blocked.clear();
        self.alloc_t0 = t0;
        self.kinds.clear();
        let region = core.region;
        let disambig = region.dfg.mem_ops().iter().copied().filter(|&op| {
            super::super::core::node_kind(region, op)
                .mem_ref()
                .is_some_and(nachos_ir::MemRef::needs_disambiguation)
        });
        let apc = u64::from(self.lsq.config().alloc_per_cycle);
        for (age, node) in disambig.enumerate() {
            self.kinds
                .push(super::super::core::node_kind(region, node).is_store());
            self.ages[node.index()] = Some(age as u32);
            self.age_nodes.push(node);
        }
        self.lsq.begin_invocation(&self.kinds);
        for age in 0..self.age_nodes.len() {
            let cycle = t0 + age as u64 / apc;
            let got = self.lsq.allocate_next(cycle);
            debug_assert_eq!(got, Some(age as u32));
            core.counts.lsq_allocs += 1;
        }
    }

    /// Stores can bind and pre-search as soon as allocated.
    fn on_stores_resolved(&mut self, core: &mut SchedCore, t0: u64, agen: u64) {
        let apc = u64::from(self.lsq.config().alloc_per_cycle);
        for i in 0..core.store_nodes.len() {
            let n = core.store_nodes[i];
            if let Some(age) = self.age_of(n) {
                let at = (t0 + agen).max(t0 + u64::from(age) / apc);
                core.push(at, Ev::TryMem(n));
            }
        }
    }

    fn on_store_data(&mut self, core: &mut SchedCore, t: u64, n: NodeId) {
        if let Some(age) = self.age_of(n) {
            if self.bound[n.index()] {
                self.lsq.mark_data_ready(age);
                self.wake_blocked(core, t);
            }
        }
    }

    /// LSQ memory stage: bind, search, then issue/forward.
    fn admit_mem(&mut self, core: &mut SchedCore, t: u64, n: NodeId, fired: bool) {
        if core.is_scratch(n) {
            // Local accesses bypass the LSQ entirely (the baseline elides
            // them for fairness, §IV Observation 1) — but the compiler's
            // wired scratchpad dependencies (ORDER/MAY token edges from
            // `wire_local_deps`) still gate issue, exactly as they do
            // under the MDE backends.
            let i = n.index();
            if !fired || core.state.token_pending[i] > 0 || core.state.may_pending[i] > 0 {
                if fired {
                    core.state.open_block(i, t, StallCause::Token);
                }
                return;
            }
            core.charge_block_stall(t, n);
            core.state.issued[i] = true;
            core.scratch_access(t, n);
            return;
        }
        let age = self.age_of(n).expect("age assigned");
        let apc = u64::from(self.lsq.config().alloc_per_cycle);
        let alloc_t = self.alloc_t0 + u64::from(age) / apc;
        if t < alloc_t {
            // Address already resolved (checked by the core) but the
            // port-limited in-order allocator has not reached this age.
            if !self.alloc_charged[n.index()] {
                core.stalls.lsq_alloc += alloc_t - t;
                self.alloc_charged[n.index()] = true;
            }
            core.push(alloc_t, Ev::TryMem(n));
            return;
        }
        if !self.bound[n.index()] {
            let (addr, size) = (core.state.addr[n.index()], core.state.size[n.index()]);
            self.lsq.bind_address(age, addr, size);
            self.bound[n.index()] = true;
            if core.node_kind(n).is_store() && fired {
                self.lsq.mark_data_ready(age);
            }
            // A newly-bound address may unblock others.
            self.wake_blocked(core, t);
        }
        let is_store = core.node_kind(n).is_store();
        if is_store {
            match self.lsq.search_store(age) {
                StoreSearch::CanIssue => {
                    // The disambiguation wait (if any) ends here even when
                    // the data operand is still outstanding.
                    core.charge_block_stall(t, n);
                    if !fired {
                        // Search passed (the verdict is monotonic); the
                        // data operand will re-trigger the issue.
                        return;
                    }
                    core.state.issued[n.index()] = true;
                    core.cache_access(t, n, 0);
                }
                StoreSearch::Blocked(_) => self.lsq_block(core, t, n),
            }
        } else {
            match self.lsq.search_load(age) {
                LoadSearch::CanIssue => {
                    core.charge_block_stall(t, n);
                    core.state.issued[n.index()] = true;
                    let penalty = self.lsq.config().load_to_use_penalty;
                    core.cache_access(t, n, penalty);
                }
                LoadSearch::Forward(older_age) => {
                    core.charge_block_stall(t, n);
                    core.state.issued[n.index()] = true;
                    let older = self.age_nodes[older_age as usize];
                    let v = core.state.value[older.index()];
                    let v = core.consume_forward(t, n, v, "LSQ forward into node");
                    core.state.value[n.index()] = v;
                    core.counts.forwards += 1;
                    core.record_load(n, v);
                    let penalty = self.lsq.config().load_to_use_penalty;
                    core.push(t + 1 + penalty, Ev::Complete(n));
                }
                LoadSearch::Blocked(_) => self.lsq_block(core, t, n),
            }
        }
    }

    /// Retirement bookkeeping: completion frees the entry for in-order
    /// retirement and may unblock searches.
    fn on_complete(&mut self, core: &mut SchedCore, t: u64, n: NodeId) {
        if let Some(age) = self.age_of(n) {
            self.lsq.mark_completed(age);
            self.lsq.retire_ready(t);
            self.wake_blocked(core, t);
        }
    }

    /// Drain the LSQ so the next invocation can begin (bounded by the
    /// same budget: with all nodes complete the drain terminates, but the
    /// watchdog guards the loop all the same).
    fn end_invocation(
        &mut self,
        core: &mut SchedCore,
        deadline: u64,
        budget: u64,
    ) -> Result<(), SimError> {
        let mut t = core.clock;
        while !self.lsq.is_drained() {
            if t > deadline {
                return Err(core.deadlock(DeadlockCause::BudgetExhausted, t, budget));
            }
            self.lsq.retire_ready(t);
            t += 1;
        }
        core.clock = core.clock.max(t);
        Ok(())
    }

    fn finalize(&mut self, counts: &mut EventCounts) -> BloomStats {
        let lsq_stats = self.lsq.stats();
        let bloom = self.lsq.bloom_stats();
        counts.lsq_bloom_queries = bloom.queries;
        counts.lsq_bloom_hits = bloom.hits;
        counts.lsq_cam_loads = lsq_stats.cam_load_searches;
        counts.lsq_cam_stores = lsq_stats.cam_store_searches;
        counts.lsq_bank_overflows = lsq_stats.bank_overflows;
        bloom
    }
}
