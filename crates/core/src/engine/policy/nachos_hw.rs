//! The NACHOS policy: MDEs with hardware-assisted MAY resolution. Each
//! MAY edge routes the older op's address to a comparator at the younger
//! op's site; the `==?` check releases the younger op early when the
//! addresses do not overlap, and otherwise holds it until the older op
//! completes (paper §VI–VII). One comparator per site arbitrates checks.

use crate::config::{Backend, SimConfig};
use nachos_ir::{Edge, EdgeKind, NodeId};

use super::super::calendar::Calendar;
use super::super::core::{is_scratch, SchedCore};
use super::super::state::Ev;
use super::{dataflow_admit, DisambiguationPolicy, EdgeGate};
use crate::fault::{FaultClass, FaultKind};

#[derive(Clone, Debug)]
struct MayEdge {
    older: NodeId,
    younger: NodeId,
    /// Mesh links from the older op's FU to the younger's comparator.
    hops: u32,
    checked: bool,
}

/// "Node hosts no comparator site" sentinel in [`NachosPolicy::site_of`].
const NO_SITE: usize = usize::MAX;

#[derive(Default)]
pub(crate) struct NachosPolicy {
    may_edges: Vec<MayEdge>,
    /// Younger nodes waiting for an older op's completion (conflict case).
    conflict_waiters: Vec<Vec<(NodeId, u32)>>,
    /// Comparator-site slot per node ([`NO_SITE`] = none), rebuilt each
    /// invocation. Dense-by-`NodeId` so the check path is an index, not a
    /// hash probe.
    site_of: Vec<usize>,
    /// Comparator-site calendars, indexed by the slots in `site_of`.
    /// Pooled across invocations (slots are re-assigned in deterministic
    /// edge order, so capacity carries over).
    site_cals: Vec<Calendar>,
    /// Per-node MAY-edge index lists (edges where the node is older or
    /// younger), in ascending edge order. Built once per invocation so
    /// address resolution walks only the node's own edges instead of
    /// scanning the whole table.
    edges_of: Vec<Vec<u32>>,
    /// Scratch for the indices of edges to re-check.
    to_check: Vec<usize>,
}

impl NachosPolicy {
    /// The older op's address is now known — wake every MAY edge it
    /// participates in (as older: route the address to the younger's
    /// comparator; as younger: its own checks can begin).
    fn propagate_may_addresses(&mut self, core: &mut SchedCore, addr_t: u64, n: NodeId) {
        let mut to_check = std::mem::take(&mut self.to_check);
        to_check.clear();
        to_check.extend(self.edges_of[n.index()].iter().map(|&idx| idx as usize));
        for &idx in &to_check {
            self.try_may_check(core, addr_t, idx);
        }
        self.to_check = to_check;
    }

    /// Performs the `==?` check of one MAY edge if both addresses are
    /// available, honouring the per-site single-comparator arbitration.
    fn try_may_check(&mut self, core: &mut SchedCore, now: u64, idx: usize) {
        let e = &self.may_edges[idx];
        if e.checked {
            return;
        }
        let (older, younger, hops) = (e.older, e.younger, e.hops);
        let (Some(older_addr_t), Some(younger_addr_t)) = (
            core.state.addr_ready_at(older.index()),
            core.state.addr_ready_at(younger.index()),
        ) else {
            return;
        };
        // Address reaches the younger site over the operand network.
        let ready = now
            .max(older_addr_t + core.config.latency.route_latency(hops))
            .max(younger_addr_t);
        let slot = self.site_of[younger.index()];
        debug_assert_ne!(slot, NO_SITE, "site registered for may edge");
        let check_t = self.site_cals[slot].claim(ready);
        // Cycles the check spent queued behind the site's single comparator.
        core.stalls.comparator += check_t - ready;
        self.may_edges[idx].checked = true;
        core.counts.may_checks += 1;
        let a = (
            core.state.addr[older.index()],
            core.state.size[older.index()],
        );
        let b = (
            core.state.addr[younger.index()],
            core.state.size[younger.index()],
        );
        let mut conflict = a.0 < b.0 + u64::from(b.1) && b.0 < a.0 + u64::from(a.1);
        match core.poll_fault(FaultClass::MayCheck) {
            Some(kind @ FaultKind::ForceNoConflict) => {
                core.fault.record(
                    kind,
                    check_t,
                    &format!("check n{} vs n{}", older.index(), younger.index()),
                );
                conflict = false;
            }
            Some(kind @ FaultKind::ForceConflict) => {
                core.fault.record(
                    kind,
                    check_t,
                    &format!("check n{} vs n{}", older.index(), younger.index()),
                );
                conflict = true;
            }
            _ => {}
        }
        if !conflict {
            core.push(check_t + 1, Ev::Release(younger));
        } else if let Some(done) = core.state.completed_at(older.index()) {
            let release = (done + core.config.latency.route_latency(hops)).max(check_t + 1);
            core.push(release, Ev::Release(younger));
        } else {
            self.conflict_waiters[older.index()].push((younger, hops));
        }
    }
}

impl DisambiguationPolicy for NachosPolicy {
    fn backend(&self) -> Backend {
        Backend::Nachos
    }

    fn prepare_run(&mut self, _config: &SimConfig) {
        self.may_edges.clear();
        self.conflict_waiters.clear();
        self.site_of.clear();
        self.site_cals.clear();
        self.edges_of.clear();
    }

    fn edge_gate(&mut self, _core: &SchedCore, e: &Edge) -> EdgeGate {
        match e.kind {
            EdgeKind::Forward => EdgeGate::Data,
            EdgeKind::Order => EdgeGate::Token,
            // Unresolved until the comparator releases it.
            EdgeKind::May => EdgeGate::May,
            EdgeKind::Data => EdgeGate::Data,
        }
    }

    /// Build the MAY-edge table and comparator sites for this invocation.
    fn after_gating(&mut self, core: &mut SchedCore, _t0: u64) {
        let region = core.region;
        let n = region.dfg.num_nodes();
        self.may_edges.clear();
        if self.conflict_waiters.len() < n {
            self.conflict_waiters.resize(n, Vec::new());
        }
        for w in &mut self.conflict_waiters {
            w.clear();
        }
        self.site_of.clear();
        self.site_of.resize(n, NO_SITE);
        if self.edges_of.len() < n {
            self.edges_of.resize(n, Vec::new());
        }
        for l in &mut self.edges_of {
            l.clear();
        }
        let width = core.config.comparators_per_site;
        let mut slots = 0usize;
        for e in region.dfg.edges() {
            if e.kind == EdgeKind::May && !(is_scratch(region, e.src) && is_scratch(region, e.dst))
            {
                let idx = u32::try_from(self.may_edges.len()).expect("edge count fits u32");
                self.edges_of[e.src.index()].push(idx);
                if e.dst != e.src {
                    self.edges_of[e.dst.index()].push(idx);
                }
                self.may_edges.push(MayEdge {
                    older: e.src,
                    younger: e.dst,
                    hops: core.placement.hops(e.src, e.dst),
                    checked: false,
                });
                if self.site_of[e.dst.index()] == NO_SITE {
                    self.site_of[e.dst.index()] = slots;
                    if slots < self.site_cals.len() {
                        self.site_cals[slots].reset(width);
                    } else {
                        self.site_cals.push(Calendar::new(width));
                    }
                    slots += 1;
                }
            }
        }
    }

    fn on_stores_resolved(&mut self, core: &mut SchedCore, t0: u64, agen: u64) {
        for i in 0..core.store_nodes.len() {
            let n = core.store_nodes[i];
            self.propagate_may_addresses(core, t0 + agen, n);
        }
    }

    fn on_load_address(&mut self, core: &mut SchedCore, addr_t: u64, n: NodeId) {
        self.propagate_may_addresses(core, addr_t, n);
    }

    fn on_forward_edge(&mut self, core: &mut SchedCore, at: u64, dst: NodeId) {
        core.counts.must_tokens += 1;
        core.push(at, Ev::Data(dst));
    }

    fn admit_mem(&mut self, core: &mut SchedCore, t: u64, n: NodeId, fired: bool) {
        dataflow_admit(core, t, n, fired);
    }

    /// ORDER completes as a token; MAY releases ride the comparator
    /// protocol instead.
    fn on_completion_edge(&mut self, core: &mut SchedCore, at: u64, dst: NodeId, kind: EdgeKind) {
        if kind == EdgeKind::Order {
            core.counts.must_tokens += 1;
            core.push_token(at, dst);
        }
    }

    /// Conflicting younger ops waiting on this completion.
    fn on_complete(&mut self, core: &mut SchedCore, t: u64, n: NodeId) {
        if self.conflict_waiters.len() <= n.index() {
            return;
        }
        let waiters = std::mem::take(&mut self.conflict_waiters[n.index()]);
        for (younger, hops) in waiters {
            let route = core.config.latency.route_latency(hops);
            core.push(t + route, Ev::Release(younger));
        }
    }
}
