//! The IDEAL oracle policy: perfect, zero-cost memory disambiguation —
//! the upper bound of Fig. 9. The oracle evaluates both endpoints of
//! every MAY edge against the invocation's binding at gating time:
//! non-conflicting MAY edges vanish entirely (no gate, no check, no
//! energy), and true conflicts hold the younger op exactly until the
//! older op completes (plus routing) — the minimum any sound mechanism
//! could achieve. ORDER and FORWARD edges are real dependencies and are
//! honoured as under NACHOS.

use crate::config::{Backend, SimConfig};
use nachos_ir::{Edge, EdgeKind, NodeId};

use super::super::core::SchedCore;
use super::super::state::Ev;
use super::{dataflow_admit, DisambiguationPolicy, EdgeGate};

#[derive(Default)]
pub(crate) struct IdealPolicy {
    /// Younger ops gated by a true conflict, indexed by the older node.
    waiters: Vec<Vec<(NodeId, u32)>>,
}

impl IdealPolicy {
    /// Oracle verdict for one MAY edge: do the two accesses *actually*
    /// overlap this invocation? Uses the same byte-overlap test as the
    /// NACHOS comparator, but with perfect knowledge and zero cost.
    fn conflicts(core: &SchedCore, a: NodeId, b: NodeId) -> bool {
        let (a0, asz) = core.eval_mem_ref(a);
        let (b0, bsz) = core.eval_mem_ref(b);
        a0 < b0 + u64::from(bsz) && b0 < a0 + u64::from(asz)
    }
}

impl DisambiguationPolicy for IdealPolicy {
    fn backend(&self) -> Backend {
        Backend::Ideal
    }

    fn prepare_run(&mut self, _config: &SimConfig) {
        self.waiters.clear();
    }

    fn begin_invocation(&mut self, core: &mut SchedCore, _t0: u64) {
        let n = core.region.dfg.num_nodes();
        if self.waiters.len() < n {
            self.waiters.resize(n, Vec::new());
        }
        for w in &mut self.waiters {
            w.clear();
        }
    }

    fn edge_gate(&mut self, core: &SchedCore, e: &Edge) -> EdgeGate {
        match e.kind {
            EdgeKind::Forward => EdgeGate::Data,
            EdgeKind::Order => EdgeGate::Token,
            EdgeKind::May => {
                if Self::conflicts(core, e.src, e.dst) {
                    // A true dependence: the younger op must wait for the
                    // older op's completion (plus routing), and no less.
                    let hops = core.placement.hops(e.src, e.dst);
                    self.waiters[e.src.index()].push((e.dst, hops));
                    EdgeGate::May
                } else {
                    // Perfect disambiguation: the false MAY costs nothing.
                    EdgeGate::Ignore
                }
            }
            EdgeKind::Data => EdgeGate::Data,
        }
    }

    fn on_forward_edge(&mut self, core: &mut SchedCore, at: u64, dst: NodeId) {
        core.counts.must_tokens += 1;
        core.push(at, Ev::Data(dst));
    }

    fn admit_mem(&mut self, core: &mut SchedCore, t: u64, n: NodeId, fired: bool) {
        dataflow_admit(core, t, n, fired);
    }

    /// ORDER completes as a token; true-conflict MAY releases happen in
    /// `on_complete`.
    fn on_completion_edge(&mut self, core: &mut SchedCore, at: u64, dst: NodeId, kind: EdgeKind) {
        if kind == EdgeKind::Order {
            core.counts.must_tokens += 1;
            core.push_token(at, dst);
        }
    }

    /// Release every younger op whose true conflict this completion
    /// resolves — at completion + route, the earliest sound release.
    fn on_complete(&mut self, core: &mut SchedCore, t: u64, n: NodeId) {
        if self.waiters.len() <= n.index() {
            return;
        }
        let waiters = std::mem::take(&mut self.waiters[n.index()]);
        for (younger, hops) in waiters {
            let route = core.config.latency.route_latency(hops);
            core.push(t + route, Ev::Release(younger));
        }
    }
}
