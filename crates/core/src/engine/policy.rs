//! The disambiguation-policy layer.
//!
//! [`DisambiguationPolicy`] is the seam between the backend-agnostic
//! scheduler core and a memory-ordering scheme. Each hook corresponds to
//! one decision point the paper's backends disagree on:
//!
//! | hook                  | decision                                        |
//! |-----------------------|-------------------------------------------------|
//! | `edge_gate`           | op-issue gating: how a non-local MDE gates issue |
//! | `after_gating`        | program-order setup (LSQ alloc, MAY sites)       |
//! | `on_stores_resolved`  | early store-address broadcast                    |
//! | `on_load_address`     | load-address broadcast (comparator wake-up)      |
//! | `on_store_data`       | store data-ready (LSQ data path)                 |
//! | `on_forward_edge`     | routing a forwarded value over the mesh          |
//! | `admit_mem`           | memory-request admission + stall attribution     |
//! | `on_completion_edge`  | completion/release token fan-out                 |
//! | `on_complete`         | completion bookkeeping (waiter release, retire)  |
//! | `end_invocation`      | drain backend structures between invocations     |
//! | `finalize`            | backend-specific event counters                  |
//!
//! A new scheme (speculative, scratchpad-routed, hybrid…) is a new
//! implementation of this trait under `policy/` — not an engine fork.

use crate::config::{Backend, SimConfig};
use crate::energy::EventCounts;
use crate::error::SimError;
use nachos_ir::{Edge, EdgeKind, NodeId};
use nachos_lsq::BloomStats;

use super::core::SchedCore;
use super::state::StallCause;

pub(crate) mod ideal;
pub(crate) mod nachos_hw;
pub(crate) mod nachos_sw;
pub(crate) mod optlsq;

/// How one incoming dependence edge gates its destination node's issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EdgeGate {
    /// Counts toward operand readiness (the node cannot fire without it).
    Data,
    /// Counts as an ordering token the memory stage must collect.
    Token,
    /// Counts as an unresolved MAY gate awaiting a comparator release.
    May,
    /// The backend discharges the dependence by other means (or proves it
    /// vacuous): no gate.
    Ignore,
}

/// One memory-disambiguation scheme, driven by the scheduler core.
///
/// Implementations own all backend-specific state (LSQ, MAY-edge tables,
/// conflict waiters) and reach into the core's `pub(crate)` surface for
/// event scheduling, node state and counters. Hooks that push events must
/// preserve the core's deterministic push order — event sequence numbers
/// are tie-breakers, so reordering pushes changes timing.
pub(crate) trait DisambiguationPolicy {
    /// The backend this policy implements (diagnostics / fault scoping).
    fn backend(&self) -> Backend;

    /// Resets all per-run state so a pooled policy can be reused by a new
    /// simulation with `config`.
    fn prepare_run(&mut self, config: &SimConfig);

    /// Starts an invocation: clear per-invocation policy state. Runs
    /// before edge classification.
    fn begin_invocation(&mut self, _core: &mut SchedCore, _t0: u64) {}

    /// Classifies how one non-local memory-dependence edge (FORWARD,
    /// ORDER or MAY; never DATA, never scratchpad-local) gates its
    /// destination.
    fn edge_gate(&mut self, core: &SchedCore, e: &Edge) -> EdgeGate;

    /// Program-order setup after all node gates are in place: LSQ
    /// allocation, MAY-site construction.
    fn after_gating(&mut self, _core: &mut SchedCore, _t0: u64) {}

    /// Store addresses resolved (all of `core.store_nodes`, program
    /// order, ready at `t0 + agen`).
    fn on_stores_resolved(&mut self, _core: &mut SchedCore, _t0: u64, _agen: u64) {}

    /// A load's address becomes known at `addr_t` (its node fired).
    fn on_load_address(&mut self, _core: &mut SchedCore, _addr_t: u64, _n: NodeId) {}

    /// A store's data operand arrived at `t` (the store fired).
    fn on_store_data(&mut self, _core: &mut SchedCore, _t: u64, _n: NodeId) {}

    /// A store's non-local FORWARD out-edge payload is routable at `at`.
    fn on_forward_edge(&mut self, _core: &mut SchedCore, _at: u64, _dst: NodeId) {}

    /// Memory-request admission for node `n` (address known and ready at
    /// `t`; `fired` = all data operands arrived). The policy issues the
    /// access, blocks it (attributing the stall), or re-schedules it.
    fn admit_mem(&mut self, core: &mut SchedCore, t: u64, n: NodeId, fired: bool);

    /// A completing node's non-local ORDER/MAY out-edge, with the token
    /// arrival cycle `at` (completion + route).
    fn on_completion_edge(
        &mut self,
        _core: &mut SchedCore,
        _at: u64,
        _dst: NodeId,
        _kind: EdgeKind,
    ) {
    }

    /// Node `n` completed at `t` (after the edge fan-out).
    fn on_complete(&mut self, _core: &mut SchedCore, _t: u64, _n: NodeId) {}

    /// Invocation end: drain backend structures (may advance
    /// `core.clock`); bounded by the watchdog's `deadline`.
    ///
    /// # Errors
    ///
    /// Returns the core's deadlock diagnostic if the drain exceeds the
    /// budget.
    fn end_invocation(
        &mut self,
        _core: &mut SchedCore,
        _deadline: u64,
        _budget: u64,
    ) -> Result<(), SimError> {
        Ok(())
    }

    /// Fills backend-specific event counters (LSQ CAM/bloom activity) and
    /// returns the bloom statistics for the report.
    fn finalize(&mut self, _counts: &mut EventCounts) -> BloomStats {
        BloomStats::default()
    }
}

/// The shared token/MAY-gated admission used by every MDE-based policy
/// (NACHOS-SW, NACHOS, IDEAL): a fired op with a ready address proceeds
/// once its token and MAY gates are clear; otherwise the stall-attribution
/// window opens against the mechanism still holding it.
pub(crate) fn dataflow_admit(core: &mut SchedCore, t: u64, n: NodeId, fired: bool) {
    let i = n.index();
    let tokens = core.state.token_pending[i];
    if !fired || tokens > 0 || core.state.may_pending[i] > 0 {
        // A fired op with a ready address is stalled purely by the
        // ordering mechanism: start the attribution clock.
        if fired {
            let cause = if tokens > 0 {
                StallCause::Token
            } else {
                StallCause::MayGate
            };
            core.state.open_block(i, t, cause);
        }
        return;
    }
    core.issue_dataflow(t, n);
}
