//! Per-node scheduler state and the event vocabulary shared by the core
//! and every disambiguation policy.

use nachos_ir::NodeId;

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Ev {
    /// A data or forward payload arrived at `node`.
    Data(NodeId),
    /// An ordering token arrived at `node`.
    Token(NodeId),
    /// One MAY gate of `node` released.
    Release(NodeId),
    /// Re-attempt the memory stage of `node`.
    TryMem(NodeId),
    /// `node` finished (value available / store performed).
    Complete(NodeId),
}

/// The ordering mechanism a blocked memory op is charged against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StallCause {
    LsqSearch,
    Token,
    MayGate,
}

#[derive(Clone, Debug, Default)]
pub(crate) struct NodeState {
    pub(crate) data_pending: u32,
    pub(crate) token_pending: u32,
    pub(crate) may_pending: u32,
    pub(crate) fired: Option<u64>,
    pub(crate) addr_ready: Option<u64>,
    pub(crate) addr: u64,
    pub(crate) size: u8,
    pub(crate) value: u64,
    pub(crate) completed: Option<u64>,
    pub(crate) issued: bool,
    /// First cycle a ready memory stage was observed blocked, with the
    /// mechanism charged for the wait (stall attribution).
    pub(crate) blocked_since: Option<(u64, StallCause)>,
}
