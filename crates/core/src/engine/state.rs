//! Per-node scheduler state and the event vocabulary shared by the core
//! and every disambiguation policy.
//!
//! Node state is laid out as a structure of arrays ([`NodeTable`]):
//! every field is a dense vector indexed by `NodeId`. The scheduler's
//! inner loop touches one or two fields of many nodes per cycle —
//! readiness counters on token delivery, completion stamps on fan-out —
//! so parallel arrays keep each access within a few hot cache lines
//! instead of striding over 80-byte AoS records.

use nachos_ir::NodeId;

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Ev {
    /// A data or forward payload arrived at `node`.
    Data(NodeId),
    /// An ordering token arrived at `node`.
    Token(NodeId),
    /// One MAY gate of `node` released.
    Release(NodeId),
    /// Re-attempt the memory stage of `node`.
    TryMem(NodeId),
    /// `node` finished (value available / store performed).
    Complete(NodeId),
}

/// The ordering mechanism a blocked memory op is charged against.
///
/// Public because the telemetry stream's backpressure events carry it;
/// the engine's stall-attribution buckets aggregate the same causes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// Blocked on an LSQ disambiguation search (OPT-LSQ).
    LsqSearch,
    /// Waiting on MUST/ORDER completion tokens.
    Token,
    /// Waiting on an unresolved MAY gate.
    MayGate,
}

impl StallCause {
    /// Stable lowercase label used in the telemetry stream.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::LsqSearch => "lsq_search",
            StallCause::Token => "token",
            StallCause::MayGate => "may_gate",
        }
    }
}

/// Sentinel for "no cycle recorded" in the dense cycle columns. The
/// watchdog bounds real cycles far below it.
pub(crate) const NO_CYCLE: u64 = u64::MAX;

/// Structure-of-arrays per-node scheduler state, rebuilt each invocation.
///
/// Cycle-valued columns (`fired`, `addr_ready`, `completed`,
/// `blocked_at`) use [`NO_CYCLE`] as "unset"; the accessors expose the
/// `Option` view where call sites need it.
#[derive(Default)]
pub(crate) struct NodeTable {
    /// Outstanding data/forward operands before the node can fire.
    pub(crate) data_pending: Vec<u32>,
    /// Outstanding ordering tokens before the memory stage may proceed.
    pub(crate) token_pending: Vec<u32>,
    /// Outstanding MAY-gate releases before the memory stage may proceed.
    pub(crate) may_pending: Vec<u32>,
    /// Cycle the node fired ([`NO_CYCLE`] = not yet).
    pub(crate) fired: Vec<u64>,
    /// Cycle the node's address became known ([`NO_CYCLE`] = unknown).
    pub(crate) addr_ready: Vec<u64>,
    /// Cycle the node completed ([`NO_CYCLE`] = incomplete).
    pub(crate) completed: Vec<u64>,
    pub(crate) addr: Vec<u64>,
    pub(crate) size: Vec<u8>,
    pub(crate) value: Vec<u64>,
    pub(crate) issued: Vec<bool>,
    /// First cycle a ready memory stage was observed blocked
    /// ([`NO_CYCLE`] = no open window).
    pub(crate) blocked_at: Vec<u64>,
    /// The mechanism charged for the open window (meaningful only while
    /// `blocked_at` is set).
    pub(crate) blocked_cause: Vec<StallCause>,
}

impl NodeTable {
    /// Number of nodes in the table.
    pub(crate) fn len(&self) -> usize {
        self.completed.len()
    }

    /// Resets every column to the default state for `n` nodes, keeping
    /// capacity.
    pub(crate) fn reset(&mut self, n: usize) {
        fn refill<T: Copy>(v: &mut Vec<T>, n: usize, x: T) {
            v.clear();
            v.resize(n, x);
        }
        refill(&mut self.data_pending, n, 0);
        refill(&mut self.token_pending, n, 0);
        refill(&mut self.may_pending, n, 0);
        refill(&mut self.fired, n, NO_CYCLE);
        refill(&mut self.addr_ready, n, NO_CYCLE);
        refill(&mut self.completed, n, NO_CYCLE);
        refill(&mut self.addr, n, 0);
        refill(&mut self.size, n, 0);
        refill(&mut self.value, n, 0);
        refill(&mut self.issued, n, false);
        refill(&mut self.blocked_at, n, NO_CYCLE);
        refill(&mut self.blocked_cause, n, StallCause::Token);
    }

    #[inline]
    pub(crate) fn has_fired(&self, i: usize) -> bool {
        self.fired[i] != NO_CYCLE
    }

    #[inline]
    pub(crate) fn addr_ready_at(&self, i: usize) -> Option<u64> {
        let t = self.addr_ready[i];
        (t != NO_CYCLE).then_some(t)
    }

    #[inline]
    pub(crate) fn completed_at(&self, i: usize) -> Option<u64> {
        let t = self.completed[i];
        (t != NO_CYCLE).then_some(t)
    }

    #[inline]
    pub(crate) fn is_completed(&self, i: usize) -> bool {
        self.completed[i] != NO_CYCLE
    }

    /// Opens the stall-attribution window if none is open.
    #[inline]
    pub(crate) fn open_block(&mut self, i: usize, t: u64, cause: StallCause) {
        if self.blocked_at[i] == NO_CYCLE {
            self.blocked_at[i] = t;
            self.blocked_cause[i] = cause;
        }
    }

    /// Closes and returns the open stall-attribution window, if any.
    #[inline]
    pub(crate) fn take_block(&mut self, i: usize) -> Option<(u64, StallCause)> {
        let since = self.blocked_at[i];
        if since == NO_CYCLE {
            return None;
        }
        self.blocked_at[i] = NO_CYCLE;
        Some((since, self.blocked_cause[i]))
    }
}
