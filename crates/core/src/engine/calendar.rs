//! Per-cycle bandwidth calendars for structural hazards (cache ports at
//! the grid edge, LSQ allocation slots, per-site comparators).

/// A per-cycle bandwidth calendar: `claim(at)` returns the earliest cycle
/// `>= at` with a free slot and consumes it.
///
/// Slot counts live in a dense `Vec` offset from `base` — claims are
/// clustered (an invocation's worth of cycles), so the vector stays as
/// short as the busy window and a claim is a bump plus a linear probe,
/// with none of the hashing the old `HashMap<u64, u32>` layout paid on
/// every access. Cycles outside the vector (before `base` or past the
/// end) are free, exactly as absent map entries were.
#[derive(Clone, Debug)]
pub(crate) struct Calendar {
    width: u32,
    /// Cycle of `used[0]`. Set lazily by the first claim so per-site
    /// calendars reset each invocation never materialize the gap from
    /// cycle zero.
    base: u64,
    pub(crate) used: Vec<u32>,
}

impl Calendar {
    pub(crate) fn new(width: u32) -> Self {
        Self::from_parts(width, Vec::new())
    }

    /// Builds a calendar around a pooled (possibly dirty) slot vector.
    pub(crate) fn from_parts(width: u32, mut used: Vec<u32>) -> Self {
        // Invariant: widths come from SimConfig fields that `simulate`
        // rejects (BadConfig) when zero.
        assert!(width > 0, "calendar width validated before construction");
        used.clear();
        Self {
            width,
            base: 0,
            used,
        }
    }

    /// Empties the calendar in place and adopts a (validated) new width.
    pub(crate) fn reset(&mut self, width: u32) {
        assert!(width > 0, "calendar width validated before construction");
        self.width = width;
        self.base = 0;
        self.used.clear();
    }

    /// Releases the slot vector for pooling.
    pub(crate) fn into_used(self) -> Vec<u32> {
        self.used
    }

    pub(crate) fn claim(&mut self, at: u64) -> u64 {
        if self.used.is_empty() {
            self.base = at;
        } else if at < self.base {
            // A claim behind the window: those cycles are free (either
            // never claimed or pruned). Grow the window backwards.
            let gap = usize::try_from(self.base - at).expect("claim gap fits usize");
            self.used.splice(0..0, std::iter::repeat_n(0, gap));
            self.base = at;
        }
        let mut i = usize::try_from(at - self.base).expect("claim offset fits usize");
        loop {
            if i >= self.used.len() {
                // Idle gap (or fresh tail): cycles between the last entry
                // and `at` were never claimed, so they materialize as 0.
                self.used.resize(i + 1, 0);
            }
            if self.used[i] < self.width {
                self.used[i] += 1;
                return self.base + i as u64;
            }
            i += 1;
        }
    }

    /// Drops bookkeeping for cycles before `t`. Invocations are
    /// block-atomic, so entries older than the current invocation's start
    /// can never be claimed again; without pruning, a long sweep grows one
    /// slot per busy cycle for the whole run. In practice every claim
    /// precedes the next invocation's start, so the drain clears the
    /// vector outright.
    pub(crate) fn prune_below(&mut self, t: u64) {
        if t <= self.base {
            return;
        }
        let k = usize::try_from(t - self.base).map_or(self.used.len(), |k| k.min(self.used.len()));
        if k == self.used.len() {
            self.used.clear();
        } else {
            self.used.drain(..k);
        }
        self.base = t;
    }
}

#[cfg(test)]
mod tests {
    use super::Calendar;

    /// The port calendar stays bounded: pruning drops reservations below
    /// the new invocation's start, and claims still respect the width.
    #[test]
    fn calendar_prunes_and_keeps_width() {
        let mut c = Calendar::new(2);
        for t in 0..1000 {
            assert_eq!(c.claim(t), t);
            assert_eq!(c.claim(t), t); // width 2: same cycle twice
        }
        assert_eq!(c.used.len(), 1000);
        c.prune_below(990);
        assert_eq!(c.used.len(), 10);
        // Cycles 990..1000 are all full; the claim spills past them.
        assert_eq!(c.claim(990), 1000);
        // Pruned cycles can be claimed again, but block-atomic invocations
        // never go back in time, so that's unreachable in the engine.
        assert_eq!(c.claim(0), 0);
    }

    /// A reset calendar claiming at a large cycle anchors its window
    /// there instead of materializing the gap from zero.
    #[test]
    fn lazy_base_skips_the_gap() {
        let mut c = Calendar::new(1);
        c.reset(1);
        assert_eq!(c.claim(1_000_000), 1_000_000);
        assert_eq!(c.used.len(), 1);
        // Earlier cycles are still free and still claimable.
        assert_eq!(c.claim(999_998), 999_998);
        assert_eq!(c.claim(1_000_000), 1_000_001);
    }
}
