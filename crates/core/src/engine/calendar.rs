//! Per-cycle bandwidth calendars for structural hazards (cache ports at
//! the grid edge, LSQ allocation slots, per-site comparators).

use std::collections::HashMap;

/// A per-cycle bandwidth calendar: `claim(at)` returns the earliest cycle
/// `>= at` with a free slot and consumes it.
#[derive(Clone, Debug)]
pub(crate) struct Calendar {
    width: u32,
    pub(crate) used: HashMap<u64, u32>,
}

impl Calendar {
    pub(crate) fn new(width: u32) -> Self {
        Self::from_parts(width, HashMap::new())
    }

    /// Builds a calendar around a pooled (possibly dirty) slot map.
    pub(crate) fn from_parts(width: u32, mut used: HashMap<u64, u32>) -> Self {
        // Invariant: widths come from SimConfig fields that `simulate`
        // rejects (BadConfig) when zero.
        assert!(width > 0, "calendar width validated before construction");
        used.clear();
        Self { width, used }
    }

    /// Empties the calendar in place and adopts a (validated) new width.
    pub(crate) fn reset(&mut self, width: u32) {
        assert!(width > 0, "calendar width validated before construction");
        self.width = width;
        self.used.clear();
    }

    /// Releases the slot map for pooling.
    pub(crate) fn into_used(self) -> HashMap<u64, u32> {
        self.used
    }

    pub(crate) fn claim(&mut self, at: u64) -> u64 {
        let mut t = at;
        loop {
            let u = self.used.entry(t).or_insert(0);
            if *u < self.width {
                *u += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Drops bookkeeping for cycles before `t`. Invocations are
    /// block-atomic, so entries older than the current invocation's start
    /// can never be claimed again; without pruning, a long sweep grows one
    /// map entry per busy cycle for the whole run.
    pub(crate) fn prune_below(&mut self, t: u64) {
        self.used.retain(|&cycle, _| cycle >= t);
    }
}

#[cfg(test)]
mod tests {
    use super::Calendar;

    /// The port calendar stays bounded: pruning drops reservations below
    /// the new invocation's start, and claims still respect the width.
    #[test]
    fn calendar_prunes_and_keeps_width() {
        let mut c = Calendar::new(2);
        for t in 0..1000 {
            assert_eq!(c.claim(t), t);
            assert_eq!(c.claim(t), t); // width 2: same cycle twice
        }
        assert_eq!(c.used.len(), 1000);
        c.prune_below(990);
        assert_eq!(c.used.len(), 10);
        // Cycles 990..1000 are all full; the claim spills past them.
        assert_eq!(c.claim(990), 1000);
        // Pruned cycles can be claimed again, but block-atomic invocations
        // never go back in time, so that's unreachable in the engine.
        assert_eq!(c.claim(0), 0);
    }
}
