//! Simulator configuration: backend selection and structural parameters.

use crate::fault::FaultPlan;
use nachos_cgra::{GridConfig, LatencyModel};
use nachos_lsq::LsqConfig;
use nachos_mem::HierarchyConfig;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which memory-disambiguation scheme the accelerator uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The optimized LSQ baseline (§VIII-C): program-order allocation,
    /// banked CAM with bloom filtering, fixed load-to-use penalty.
    OptLsq,
    /// NACHOS-SW (§V): compiler MDEs only; MAY edges serialize like MUST.
    NachosSw,
    /// NACHOS (§VII): compiler MDEs plus per-site hardware comparators
    /// that disambiguate MAY edges at run time.
    Nachos,
    /// The perfect-disambiguation oracle (Fig. 9's upper bound): every
    /// false MAY edge costs nothing and every true conflict releases the
    /// moment the older op completes. Not a buildable scheme — an
    /// analysis backend, excluded from [`Backend::ALL`] and opt-in in the
    /// report emitters (`--ideal`).
    Ideal,
}

impl Backend {
    /// The three *paper* backends, in the paper's comparison order.
    /// [`Backend::Ideal`] is an opt-in oracle, not part of the matrix.
    pub const ALL: [Backend; 3] = [Backend::OptLsq, Backend::NachosSw, Backend::Nachos];

    /// `true` for the backends that rely on compiler-inserted MDEs (the
    /// IDEAL oracle resolves the same MDE set, just perfectly).
    #[must_use]
    pub fn uses_mdes(self) -> bool {
        !matches!(self, Backend::OptLsq)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Backend::OptLsq => "OPT-LSQ",
            Backend::NachosSw => "NACHOS-SW",
            Backend::Nachos => "NACHOS",
            Backend::Ideal => "IDEAL",
        };
        f.write_str(s)
    }
}

/// A shared cooperative-cancellation flag for in-flight simulations.
///
/// The supervisor (or any external controller) holds one clone and the
/// engine polls another: [`CancelToken::cancel`] makes every run carrying
/// the token return [`crate::SimError::Cancelled`] at its next event —
/// cycle granularity, checked alongside the watchdog — so wall-clock
/// deadlines can be enforced without killing worker threads. Cancellation
/// is sticky: a cancelled token never un-cancels.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every run holding a clone of this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Tokens compare by identity (the shared flag), not by state: a clone
/// equals its source, two independently created tokens do not.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Full structural configuration of one simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// CGRA grid geometry.
    pub grid: GridConfig,
    /// FU and network latencies.
    pub latency: LatencyModel,
    /// Cache hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// OPT-LSQ parameters (used by [`Backend::OptLsq`] only).
    pub lsq: LsqConfig,
    /// Cache requests accepted per cycle at the grid edge.
    pub mem_ports: u32,
    /// `==?` comparators per younger-operation site (paper: 1; the
    /// arbiter serializes checks when several parents are ready at once).
    pub comparators_per_site: u32,
    /// Region invocations to simulate.
    pub invocations: u64,
    /// Run the certificate-carrying MDE optimizer (`nachos-opt`) after
    /// compilation: transitive reduction of ORDER tokens, comparator-site
    /// coalescing and stage-5 MAY upgrades, each re-verified by the
    /// audit's `CertLint` before the region is trusted. Off by default —
    /// the paper's pipeline stops at stage 4.
    pub optimize: bool,
    /// Engine watchdog parameters (cycle budget, liveness checks).
    pub watchdog: WatchdogConfig,
    /// Deterministic fault-injection plan (empty by default).
    pub fault: FaultPlan,
    /// Cooperative cancellation hook (`None` by default — zero cost).
    /// When set, the engine polls the token once per handled event and
    /// aborts the run with [`crate::SimError::Cancelled`] as soon as it
    /// trips. Runtime control, not configuration: excluded from journal
    /// run keys.
    pub cancel: Option<CancelToken>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            grid: GridConfig::paper(),
            latency: LatencyModel::default(),
            hierarchy: HierarchyConfig::default(),
            lsq: LsqConfig::default(),
            mem_ports: 4,
            comparators_per_site: 1,
            invocations: 64,
            optimize: false,
            watchdog: WatchdogConfig::default(),
            fault: FaultPlan::default(),
            cancel: None,
        }
    }
}

impl SimConfig {
    /// Sets the number of invocations, builder-style.
    #[must_use]
    pub fn with_invocations(mut self, invocations: u64) -> Self {
        self.invocations = invocations;
        self
    }

    /// Enables or disables the post-compile MDE optimizer, builder-style.
    #[must_use]
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Sets the fault-injection plan, builder-style.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Attaches a cooperative cancellation token, builder-style.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// Engine watchdog parameters. The per-invocation cycle budget scales
/// with region size: `base_cycles + cycles_per_node * num_nodes`. The
/// defaults are generous — hundreds of times any legitimate
/// per-invocation latency observed in the sweep — so the watchdog only
/// fires on genuine zero-progress hangs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Flat per-invocation budget component, in cycles.
    pub base_cycles: u64,
    /// Per-node budget component, in cycles.
    pub cycles_per_node: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            base_cycles: 10_000,
            cycles_per_node: 1_000,
        }
    }
}

impl WatchdogConfig {
    /// The per-invocation cycle budget for a region of `nodes` nodes.
    #[must_use]
    pub fn budget(&self, nodes: usize) -> u64 {
        self.base_cycles
            .saturating_add(self.cycles_per_node.saturating_mul(nodes as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_display_and_mde_use() {
        assert_eq!(Backend::OptLsq.to_string(), "OPT-LSQ");
        assert_eq!(Backend::Nachos.to_string(), "NACHOS");
        assert_eq!(Backend::Ideal.to_string(), "IDEAL");
        assert!(!Backend::OptLsq.uses_mdes());
        assert!(Backend::NachosSw.uses_mdes());
        assert!(Backend::Nachos.uses_mdes());
        assert!(Backend::Ideal.uses_mdes());
        assert_eq!(Backend::ALL.len(), 3);
        assert!(!Backend::ALL.contains(&Backend::Ideal));
    }

    #[test]
    fn default_config_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.grid.capacity(), 1024);
        assert_eq!(c.hierarchy.mem_latency, 200);
        assert_eq!(c.lsq.entries_per_bank, 48);
        assert_eq!(c.comparators_per_site, 1);
        assert!(c.fault.is_empty());
        assert_eq!(c.with_invocations(10).invocations, 10);
    }

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled(), "cancellation is visible through clones");
        assert_eq!(t, clone, "clones compare equal (same flag)");
        assert_ne!(t, CancelToken::new(), "independent tokens are distinct");
        // Default config carries no token — the hot path stays free.
        assert!(SimConfig::default().cancel.is_none());
        let cfg = SimConfig::default().with_cancel(t.clone());
        assert!(cfg.cancel.as_ref().is_some_and(CancelToken::is_cancelled));
    }

    #[test]
    fn watchdog_budget_scales_with_region_size() {
        let w = WatchdogConfig::default();
        assert_eq!(w.budget(0), 10_000);
        assert_eq!(w.budget(12), 10_000 + 12_000);
        // Saturates instead of overflowing on absurd inputs.
        let huge = WatchdogConfig {
            base_cycles: u64::MAX,
            cycles_per_node: u64::MAX,
        };
        assert_eq!(huge.budget(usize::MAX), u64::MAX);
    }
}
