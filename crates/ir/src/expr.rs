//! Affine expressions over loop induction variables and symbolic parameters.
//!
//! Pointer offsets and array subscripts in an acceleration region are
//! modelled as affine functions of the enclosing loop nest's induction
//! variables, mirroring what LLVM's scalar evolution (SCEV) recovers for
//! well-behaved code. An [`AffineExpr`] is
//!
//! ```text
//!     c0 + c1·iv(L1) + c2·iv(L2) + …
//! ```
//!
//! with integer coefficients. A [`ScaledParam`] additionally allows one
//! symbolic integer parameter as a multiplicative factor, which is how
//! symbolic array strides (`A[i][j]` with runtime extent `n`) are expressed.

use crate::ids::{LoopId, ParamId};
use std::fmt;

/// An affine integer expression over loop induction variables:
/// `constant + Σ coeff·iv(loop)`.
///
/// Terms are kept sorted by [`LoopId`] with no zero coefficients and no
/// duplicate loops, so structural equality coincides with semantic equality.
///
/// # Examples
///
/// ```
/// use nachos_ir::{AffineExpr, LoopId};
///
/// let i = LoopId::new(0);
/// let e = AffineExpr::var(i).scaled(8).plus(16); // 8*i + 16
/// assert_eq!(e.coeff(i), 8);
/// assert_eq!(e.constant(), 16);
/// assert_eq!(e.eval(&[5]), 56);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// `(loop, coefficient)` pairs, sorted by loop id, coefficients nonzero.
    terms: Vec<(LoopId, i64)>,
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    #[must_use]
    pub fn constant_expr(c: i64) -> Self {
        Self {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The zero expression.
    #[must_use]
    pub fn zero() -> Self {
        Self::constant_expr(0)
    }

    /// The expression `iv(loop)` with coefficient 1.
    #[must_use]
    pub fn var(loop_id: LoopId) -> Self {
        Self {
            terms: vec![(loop_id, 1)],
            constant: 0,
        }
    }

    /// Builds an expression from raw terms; duplicate loops are combined and
    /// zero coefficients dropped.
    #[must_use]
    pub fn from_terms(terms: &[(LoopId, i64)], constant: i64) -> Self {
        let mut sorted: Vec<(LoopId, i64)> = Vec::with_capacity(terms.len());
        for &(l, c) in terms {
            match sorted.binary_search_by_key(&l, |&(tl, _)| tl) {
                Ok(pos) => sorted[pos].1 += c,
                Err(pos) => sorted.insert(pos, (l, c)),
            }
        }
        sorted.retain(|&(_, c)| c != 0);
        Self {
            terms: sorted,
            constant,
        }
    }

    /// Returns `self + c`.
    #[must_use]
    pub fn plus(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// Returns `self * k`.
    #[must_use]
    pub fn scaled(mut self, k: i64) -> Self {
        if k == 0 {
            return Self::zero();
        }
        for term in &mut self.terms {
            term.1 *= k;
        }
        self.constant *= k;
        self
    }

    /// Returns `self + other`.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        let mut terms = self.terms.clone();
        for &(l, c) in &other.terms {
            match terms.binary_search_by_key(&l, |&(tl, _)| tl) {
                Ok(pos) => terms[pos].1 += c,
                Err(pos) => terms.insert(pos, (l, c)),
            }
        }
        terms.retain(|&(_, c)| c != 0);
        Self {
            terms,
            constant: self.constant + other.constant,
        }
    }

    /// Returns `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.clone().scaled(-1))
    }

    /// The constant part of the expression.
    #[must_use]
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `loop_id` (zero if absent).
    #[must_use]
    pub fn coeff(&self, loop_id: LoopId) -> i64 {
        self.terms
            .binary_search_by_key(&loop_id, |&(l, _)| l)
            .map(|pos| self.terms[pos].1)
            .unwrap_or(0)
    }

    /// Iterates over the `(loop, coefficient)` terms in loop order.
    pub fn terms(&self) -> impl Iterator<Item = (LoopId, i64)> + '_ {
        self.terms.iter().copied()
    }

    /// `true` if the expression has no induction-variable terms.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of distinct induction variables referenced.
    #[must_use]
    pub fn num_ivs(&self) -> usize {
        self.terms.len()
    }

    /// Evaluates the expression for a concrete induction-variable vector,
    /// indexed by [`LoopId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `iv` is shorter than the largest referenced loop id.
    #[must_use]
    pub fn eval(&self, iv: &[i64]) -> i64 {
        let mut v = self.constant;
        for &(l, c) in &self.terms {
            v += c * iv[l.index()];
        }
        v
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(l, c) in &self.terms {
            if first {
                if c == 1 {
                    write!(f, "{l}")?;
                } else {
                    write!(f, "{c}*{l}")?;
                }
                first = false;
            } else if c < 0 {
                write!(f, " - {}*{l}", -c)?;
            } else {
                write!(f, " + {c}*{l}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0 {
            if self.constant < 0 {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// A possibly-symbolic integer factor: `scale` or `scale·param`.
///
/// Used for array strides and extents whose value is only known at run time
/// (the situation where LLVM's SCEV gives up but polyhedral analysis, given
/// in-bounds guarantees, still succeeds).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScaledParam {
    /// Constant multiplicative factor; always nonzero for a valid stride.
    pub scale: i64,
    /// Optional symbolic parameter multiplied into the factor.
    pub param: Option<ParamId>,
}

impl ScaledParam {
    /// A compile-time-constant factor.
    #[must_use]
    pub fn constant(scale: i64) -> Self {
        Self { scale, param: None }
    }

    /// A symbolic factor `scale·param`.
    #[must_use]
    pub fn symbolic(scale: i64, param: ParamId) -> Self {
        Self {
            scale,
            param: Some(param),
        }
    }

    /// `true` if the factor involves a symbolic parameter.
    #[must_use]
    pub fn is_symbolic(&self) -> bool {
        self.param.is_some()
    }

    /// Evaluates the factor given concrete parameter values indexed by
    /// [`ParamId::index`].
    ///
    /// # Panics
    ///
    /// Panics if a referenced parameter is out of range of `params`.
    #[must_use]
    pub fn eval(&self, params: &[i64]) -> i64 {
        match self.param {
            Some(p) => self.scale * params[p.index()],
            None => self.scale,
        }
    }
}

impl fmt::Debug for ScaledParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.param {
            Some(p) if self.scale == 1 => write!(f, "{p}"),
            Some(p) => write!(f, "{}*{p}", self.scale),
            None => write!(f, "{}", self.scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> LoopId {
        LoopId::new(i)
    }

    #[test]
    fn constant_expr_basics() {
        let e = AffineExpr::constant_expr(5);
        assert!(e.is_constant());
        assert_eq!(e.eval(&[]), 5);
        assert_eq!(e.num_ivs(), 0);
    }

    #[test]
    fn from_terms_normalizes() {
        let e = AffineExpr::from_terms(&[(l(1), 2), (l(0), 3), (l(1), -2)], 7);
        assert_eq!(e.num_ivs(), 1);
        assert_eq!(e.coeff(l(0)), 3);
        assert_eq!(e.coeff(l(1)), 0);
        assert_eq!(e.constant(), 7);
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let a = AffineExpr::from_terms(&[(l(0), 4), (l(2), -1)], 3);
        let b = AffineExpr::from_terms(&[(l(0), -4), (l(1), 9)], -3);
        let sum = a.add(&b);
        assert_eq!(sum.coeff(l(0)), 0);
        assert_eq!(sum.coeff(l(1)), 9);
        assert_eq!(sum.coeff(l(2)), -1);
        let back = sum.sub(&b);
        assert_eq!(back, a);
    }

    #[test]
    fn structural_equality_is_semantic() {
        let a = AffineExpr::from_terms(&[(l(0), 1), (l(1), 0)], 2);
        let b = AffineExpr::var(l(0)).plus(2);
        assert_eq!(a, b);
    }

    #[test]
    fn eval_matches_structure() {
        let e = AffineExpr::from_terms(&[(l(0), 8), (l(1), -2)], 100);
        assert_eq!(e.eval(&[3, 10]), 100 + 24 - 20);
    }

    #[test]
    fn scaled_by_zero_is_zero() {
        let e = AffineExpr::var(l(0)).plus(9).scaled(0);
        assert_eq!(e, AffineExpr::zero());
    }

    #[test]
    fn display_is_readable() {
        let e = AffineExpr::from_terms(&[(l(0), 8), (l(1), -2)], -4);
        assert_eq!(e.to_string(), "8*L0 - 2*L1 - 4");
        assert_eq!(AffineExpr::zero().to_string(), "0");
        assert_eq!(AffineExpr::var(l(1)).to_string(), "L1");
    }

    #[test]
    fn scaled_param_eval() {
        let c = ScaledParam::constant(8);
        assert!(!c.is_symbolic());
        assert_eq!(c.eval(&[]), 8);
        let s = ScaledParam::symbolic(4, ParamId::new(0));
        assert!(s.is_symbolic());
        assert_eq!(s.eval(&[100]), 400);
    }
}
