//! Strongly-typed identifiers used throughout the IR.
//!
//! Every entity in a [`crate::Region`] — nodes, edges, base objects, loops,
//! symbolic parameters and unknown-provenance pointers — is referred to by a
//! small integer wrapped in a dedicated newtype, so that an index into one
//! table can never be confused with an index into another
//! (see C-NEWTYPE in the Rust API guidelines).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[must_use]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }

            /// Returns the id as a `usize` suitable for indexing a table.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[must_use]
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a node (operation) in a [`crate::Dfg`].
    NodeId,
    "n"
);
define_id!(
    /// Identifies an edge in a [`crate::Dfg`].
    EdgeId,
    "e"
);
define_id!(
    /// Ordinal of a memory operation in region program order.
    ///
    /// `MemSlot(0)` is the oldest memory operation of the region. The
    /// compiler assigns these explicitly (the paper uses 8-bit ids, max 256
    /// memory operations, like TRIPS).
    MemSlot,
    "m"
);
define_id!(
    /// Identifies a base object in a region's base-object table.
    BaseId,
    "b"
);
define_id!(
    /// Identifies a loop in the enclosing [`crate::LoopNest`].
    LoopId,
    "L"
);
define_id!(
    /// Identifies a symbolic integer parameter of a region (e.g. an array
    /// extent that is not a compile-time constant).
    ParamId,
    "p"
);
define_id!(
    /// Identifies an unknown-provenance pointer source (e.g. a pointer
    /// loaded from memory, the result of pointer chasing).
    UnknownId,
    "u"
);
define_id!(
    /// Identifies a `restrict`-style no-alias scope.
    ScopeId,
    "s"
);

/// Maximum number of memory operations per region.
///
/// The compiler encodes memory-operation ids in 8 bits (like TRIPS), giving
/// a hard limit of 256 memory operations per acceleration region.
pub const MAX_MEM_OPS: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(MemSlot::new(7).to_string(), "m7");
        assert_eq!(BaseId::new(0).to_string(), "b0");
        assert_eq!(format!("{:?}", LoopId::new(1)), "L1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(MemSlot::new(1) < MemSlot::new(2));
        assert_eq!(EdgeId::new(5), EdgeId::new(5));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn id_overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
