//! Edges of the dataflow graph, including memory dependency edges (MDEs).

use crate::ids::NodeId;
use std::fmt;

/// The kind of a dataflow-graph edge.
///
/// `Data` edges are inserted by the front end; the remaining kinds are
/// *memory dependency edges* (MDEs) inserted by the NACHOS-SW compiler
/// (see paper §V): `Order` and `Forward` enforce MUST-alias pairs, `May`
/// marks a compiler-uncertain pair that NACHOS-SW serializes and NACHOS
/// checks in hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A value dependence routed over the operand network (64-bit payload).
    Data,
    /// A 1-bit ready signal ordering two MUST-alias memory operations
    /// (LD→ST and ST→ST pairs).
    Order,
    /// A 64-bit store-to-load forwarding edge for a MUST-alias ST→LD pair;
    /// the memory dependence becomes a data dependence.
    Forward,
    /// A compiler-uncertain pair. NACHOS-SW treats it as [`EdgeKind::Order`];
    /// NACHOS routes the older operation's address to a comparator at the
    /// younger operation's functional unit.
    May,
}

impl EdgeKind {
    /// `true` for the MDE kinds (everything but plain data edges).
    #[must_use]
    pub fn is_mde(self) -> bool {
        self != EdgeKind::Data
    }

    /// Payload width in bits routed over the operand network for this edge.
    ///
    /// `Order` edges carry a 1-bit ready token; `Data` and `Forward` carry a
    /// 64-bit value; `May` edges carry the older operation's 64-bit address
    /// to the comparator (plus a 1-bit completion signal, folded into the
    /// MDE energy constant).
    #[must_use]
    pub fn payload_bits(self) -> u32 {
        match self {
            EdgeKind::Order => 1,
            EdgeKind::Data | EdgeKind::Forward | EdgeKind::May => 64,
        }
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeKind::Data => "data",
            EdgeKind::Order => "order",
            EdgeKind::Forward => "forward",
            EdgeKind::May => "may",
        };
        f.write_str(s)
    }
}

/// A directed edge `src → dst` of a given kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
}

impl Edge {
    /// Creates an edge.
    #[must_use]
    pub fn new(src: NodeId, dst: NodeId, kind: EdgeKind) -> Self {
        Self { src, dst, kind }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -[{}]-> {}", self.src, self.kind, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mde_classification() {
        assert!(!EdgeKind::Data.is_mde());
        assert!(EdgeKind::Order.is_mde());
        assert!(EdgeKind::Forward.is_mde());
        assert!(EdgeKind::May.is_mde());
    }

    #[test]
    fn payload_widths_match_paper() {
        assert_eq!(EdgeKind::Order.payload_bits(), 1);
        assert_eq!(EdgeKind::Forward.payload_bits(), 64);
        assert_eq!(EdgeKind::Data.payload_bits(), 64);
        assert_eq!(EdgeKind::May.payload_bits(), 64);
    }

    #[test]
    fn edge_display() {
        let e = Edge::new(NodeId::new(1), NodeId::new(2), EdgeKind::Order);
        assert_eq!(e.to_string(), "n1 -[order]-> n2");
    }
}
