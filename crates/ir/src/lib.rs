//! # nachos-ir — dataflow IR for acceleration regions
//!
//! The intermediate representation shared by the NACHOS (HPCA 2018)
//! reproduction. An acceleration region — a control-flow-free superblock
//! trace offloaded to a CGRA — is represented as a [`Region`]:
//!
//! * a [`Dfg`] of operations ([`OpKind`]) connected by data edges and, after
//!   compilation, *memory dependency edges* ([`EdgeKind::Order`],
//!   [`EdgeKind::Forward`], [`EdgeKind::May`]),
//! * a table of [`BaseObject`]s describing pointer provenance,
//! * an enclosing [`LoopNest`] providing induction variables and bounds,
//! * symbolic parameters ([`ParamInfo`]) for run-time array extents, and
//! * a [`CallContext`] carrying inter-procedural provenance for Stage 2.
//!
//! Pointer operands are *executable* models ([`MemRef::eval`]) so the same
//! expressions drive both the static alias analysis (`nachos-alias`) and
//! the dynamic address traces of the simulator (`nachos` core crate).
//!
//! ## Example
//!
//! ```
//! use nachos_ir::{AffineExpr, IntOp, LoopInfo, MemRef, RegionBuilder};
//!
//! // for i in 0..64 { acc += a[i]; b[i] = acc; }   (one unrolled body)
//! let mut b = RegionBuilder::new("example");
//! let i = b.enclosing_loop(LoopInfo::range("i", 0, 64));
//! let arr_a = b.global("a", 512, 0);
//! let arr_b = b.global("b", 512, 1);
//! let acc = b.input();
//! let ld = b.load(MemRef::affine(arr_a, AffineExpr::var(i).scaled(8)), &[]);
//! let sum = b.int_op(IntOp::Add, &[acc, ld]);
//! let _st = b.store(MemRef::affine(arr_b, AffineExpr::var(i).scaled(8)), &[sum]);
//! let region = b.finish();
//! assert_eq!(region.dfg.num_mem_ops(), 2);
//! assert_eq!(region.loops.total_invocations(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
mod builder;
mod dot;
mod edge;
mod expr;
mod graph;
mod ids;
mod loops;
mod memref;
mod op;
mod region;
mod validate;

pub use binding::{Binding, UnknownPattern};
pub use builder::RegionBuilder;
pub use dot::{to_dot, to_dot_highlighted, to_dot_with_removed};
pub use edge::{Edge, EdgeKind};
pub use expr::{AffineExpr, ScaledParam};
pub use graph::{Dfg, GraphError, Node};
pub use ids::{BaseId, EdgeId, LoopId, MemSlot, NodeId, ParamId, ScopeId, UnknownId, MAX_MEM_OPS};
pub use loops::{LoopInfo, LoopNest};
pub use memref::{
    AccessType, BaseKind, BaseObject, CallContext, EvalCtx, MemRef, MemSpace, ParamInfo,
    Provenance, PtrExpr, Subscript,
};
pub use op::{FpOp, IntOp, OpKind};
pub use region::Region;
pub use validate::{validate_region, ValidateError};
