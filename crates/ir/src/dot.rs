//! Graphviz DOT export of regions, for debugging and documentation.

use crate::edge::EdgeKind;
use crate::ids::NodeId;
use crate::region::Region;
use std::fmt::Write as _;

/// Renders the region's DFG as a Graphviz `digraph`.
///
/// Memory operations are drawn as boxes annotated with their program-order
/// slot; MDEs are drawn dashed (`order`), bold (`forward`) or dotted
/// (`may`), matching the figures in the paper. The younger endpoint of
/// every MAY edge — the operation that hosts the hardware comparator
/// site — gets a `cmp` annotation and a diamond peripheral, so the
/// comparator population of Figure 14 is readable straight off the graph.
#[must_use]
pub fn to_dot(region: &Region) -> String {
    to_dot_with_removed(region, &[], &[])
}

/// Like [`to_dot`], additionally coloring `flagged` nodes red — the
/// rendering hook for audit findings (`nachos-lint` diagnostics carry the
/// [`NodeId`]s to pass here), making a flagged verdict or race visually
/// debuggable in context.
#[must_use]
pub fn to_dot_highlighted(region: &Region, flagged: &[NodeId]) -> String {
    to_dot_with_removed(region, flagged, &[])
}

/// Like [`to_dot_highlighted`], additionally rendering optimizer-removed
/// MDEs as dashed grey ghost edges (label suffix `(removed)`), so a
/// before/after pair of `nachos-opt` plans is visually diffable from the
/// *after* region alone. `removed` carries the `(src, dst, kind)` of each
/// deleted edge, exactly as reported by the optimizer's certificates.
#[must_use]
pub fn to_dot_with_removed(
    region: &Region,
    flagged: &[NodeId],
    removed: &[(NodeId, NodeId, EdgeKind)],
) -> String {
    // Comparator sites: the younger (destination) op of each MAY edge.
    let mut comparator = vec![false; region.dfg.num_nodes()];
    for e in region.dfg.edges() {
        if e.kind == EdgeKind::May && e.dst.index() < comparator.len() {
            comparator[e.dst.index()] = true;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", region.name);
    let _ = writeln!(out, "  rankdir=TB;");
    for n in region.dfg.node_ids() {
        let node = region.dfg.node(n);
        let (shape, mut label) = match node.mem_slot {
            Some(slot) => ("box", format!("{} {}", node.kind.mnemonic(), slot)),
            None => ("ellipse", node.kind.mnemonic().to_owned()),
        };
        let mut attrs = String::new();
        if comparator[n.index()] {
            label.push_str("\\ncmp");
            attrs.push_str(", peripheries=2");
        }
        if flagged.contains(&n) {
            attrs.push_str(", color=red, fontcolor=red");
        }
        let _ = writeln!(out, "  {n} [shape={shape}, label=\"{label}\"{attrs}];");
    }
    for e in region.dfg.edges() {
        let style = match e.kind {
            EdgeKind::Data => "solid",
            EdgeKind::Order => "dashed",
            EdgeKind::Forward => "bold",
            EdgeKind::May => "dotted",
        };
        let _ = writeln!(
            out,
            "  {} -> {} [style={style}, label=\"{}\"];",
            e.src,
            e.dst,
            if e.kind == EdgeKind::Data {
                ""
            } else {
                e.kind.into_label()
            }
        );
    }
    for &(src, dst, kind) in removed {
        let _ = writeln!(
            out,
            "  {src} -> {dst} [style=dashed, color=grey, fontcolor=grey, \
             label=\"{} (removed)\"];",
            kind.into_label()
        );
    }
    out.push_str("}\n");
    out
}

impl EdgeKind {
    fn into_label(self) -> &'static str {
        match self {
            EdgeKind::Data => "",
            EdgeKind::Order => "O",
            EdgeKind::Forward => "F",
            EdgeKind::May => "M?",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RegionBuilder;
    use crate::expr::AffineExpr;
    use crate::memref::MemRef;

    #[test]
    fn dot_contains_nodes_and_mde_styles() {
        let mut b = RegionBuilder::new("dot-test");
        let g = b.global("g", 64, 0);
        let ld = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let st = b.store(MemRef::affine(g, AffineExpr::zero()), &[ld]);
        let mut r = b.finish();
        r.dfg.add_edge(ld, st, EdgeKind::Order).unwrap();
        let dot = to_dot(&r);
        assert!(dot.starts_with("digraph \"dot-test\""));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"O\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn may_comparator_sites_are_annotated() {
        let mut b = RegionBuilder::new("cmp");
        let g = b.global("g", 64, 0);
        let st = b.store(MemRef::affine(g, AffineExpr::zero()), &[]);
        let ld = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let mut r = b.finish();
        r.dfg.add_edge(st, ld, EdgeKind::May).unwrap();
        let dot = to_dot(&r);
        // Only the younger endpoint (the load) hosts the comparator.
        assert!(dot.contains(&format!(
            "{ld} [shape=box, label=\"ld m1\\ncmp\", peripheries=2]"
        )));
        assert!(!dot.contains("st m0\\ncmp"));
    }

    #[test]
    fn flagged_nodes_are_colored() {
        let mut b = RegionBuilder::new("flag");
        let g = b.global("g", 64, 0);
        let ld = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let r = b.finish();
        let dot = to_dot_highlighted(&r, &[ld]);
        assert!(dot.contains("color=red, fontcolor=red"));
        assert!(!to_dot(&r).contains("color=red"));
    }

    #[test]
    fn removed_edges_render_as_grey_ghosts() {
        let mut b = RegionBuilder::new("ghost");
        let g = b.global("g", 64, 0);
        let ld = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let st = b.store(MemRef::affine(g, AffineExpr::zero()), &[ld]);
        let r = b.finish();
        let dot = to_dot_with_removed(&r, &[], &[(ld, st, EdgeKind::Order)]);
        assert!(dot.contains(&format!(
            "{ld} -> {st} [style=dashed, color=grey, fontcolor=grey, label=\"O (removed)\"]"
        )));
        // A plain render carries no ghosts.
        assert!(!to_dot(&r).contains("removed"));
    }
}
