//! Graphviz DOT export of regions, for debugging and documentation.

use crate::edge::EdgeKind;
use crate::region::Region;
use std::fmt::Write as _;

/// Renders the region's DFG as a Graphviz `digraph`.
///
/// Memory operations are drawn as boxes annotated with their program-order
/// slot; MDEs are drawn dashed (`order`), bold (`forward`) or dotted
/// (`may`), matching the figures in the paper.
#[must_use]
pub fn to_dot(region: &Region) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", region.name);
    let _ = writeln!(out, "  rankdir=TB;");
    for n in region.dfg.node_ids() {
        let node = region.dfg.node(n);
        let (shape, label) = match node.mem_slot {
            Some(slot) => ("box", format!("{} {}", node.kind.mnemonic(), slot)),
            None => ("ellipse", node.kind.mnemonic().to_owned()),
        };
        let _ = writeln!(out, "  {n} [shape={shape}, label=\"{label}\"];");
    }
    for e in region.dfg.edges() {
        let style = match e.kind {
            EdgeKind::Data => "solid",
            EdgeKind::Order => "dashed",
            EdgeKind::Forward => "bold",
            EdgeKind::May => "dotted",
        };
        let _ = writeln!(
            out,
            "  {} -> {} [style={style}, label=\"{}\"];",
            e.src,
            e.dst,
            if e.kind == EdgeKind::Data {
                ""
            } else {
                e.kind.into_label()
            }
        );
    }
    out.push_str("}\n");
    out
}

impl EdgeKind {
    fn into_label(self) -> &'static str {
        match self {
            EdgeKind::Data => "",
            EdgeKind::Order => "O",
            EdgeKind::Forward => "F",
            EdgeKind::May => "M?",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RegionBuilder;
    use crate::expr::AffineExpr;
    use crate::memref::MemRef;

    #[test]
    fn dot_contains_nodes_and_mde_styles() {
        let mut b = RegionBuilder::new("dot-test");
        let g = b.global("g", 64, 0);
        let ld = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let st = b.store(MemRef::affine(g, AffineExpr::zero()), &[ld]);
        let mut r = b.finish();
        r.dfg.add_edge(ld, st, EdgeKind::Order).unwrap();
        let dot = to_dot(&r);
        assert!(dot.starts_with("digraph \"dot-test\""));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"O\""));
        assert!(dot.ends_with("}\n"));
    }
}
