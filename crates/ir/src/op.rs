//! Operation kinds for dataflow-graph nodes.

use crate::memref::MemRef;
use std::fmt;

/// Integer ALU operations mapped onto a CGRA functional unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// Addition/subtraction.
    Add,
    /// Multiplication.
    Mul,
    /// Shifts.
    Shift,
    /// Bitwise logic.
    Logic,
    /// Comparison / select.
    Cmp,
    /// Address computation (GEP-like).
    AddrCalc,
}

/// Floating-point operations mapped onto a CGRA functional unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// FP add/subtract.
    Add,
    /// FP multiply.
    Mul,
    /// FP divide (long latency).
    Div,
    /// Fused multiply-add.
    MulAdd,
}

/// The kind of a dataflow node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A live-in value entering the region (register operand or argument).
    Input {
        /// Position in the region signature.
        index: u32,
    },
    /// A compile-time constant.
    Const {
        /// The constant's bit pattern.
        value: u64,
    },
    /// Integer computation.
    Int(IntOp),
    /// Floating-point computation.
    Fp(FpOp),
    /// A memory load described by a [`MemRef`].
    Load(MemRef),
    /// A memory store described by a [`MemRef`].
    Store(MemRef),
    /// A live-out value leaving the region.
    Output,
}

impl OpKind {
    /// `true` for loads and stores.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, OpKind::Load(_) | OpKind::Store(_))
    }

    /// `true` for stores.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, OpKind::Store(_))
    }

    /// `true` for loads.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, OpKind::Load(_))
    }

    /// `true` for FP compute nodes.
    #[must_use]
    pub fn is_fp(&self) -> bool {
        matches!(self, OpKind::Fp(_))
    }

    /// The memory reference of a load/store node, if any.
    #[must_use]
    pub fn mem_ref(&self) -> Option<&MemRef> {
        match self {
            OpKind::Load(m) | OpKind::Store(m) => Some(m),
            _ => None,
        }
    }

    /// A short mnemonic for display and DOT output.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Input { .. } => "in",
            OpKind::Const { .. } => "const",
            OpKind::Int(IntOp::Add) => "add",
            OpKind::Int(IntOp::Mul) => "mul",
            OpKind::Int(IntOp::Shift) => "shl",
            OpKind::Int(IntOp::Logic) => "and",
            OpKind::Int(IntOp::Cmp) => "cmp",
            OpKind::Int(IntOp::AddrCalc) => "gep",
            OpKind::Fp(FpOp::Add) => "fadd",
            OpKind::Fp(FpOp::Mul) => "fmul",
            OpKind::Fp(FpOp::Div) => "fdiv",
            OpKind::Fp(FpOp::MulAdd) => "fma",
            OpKind::Load(_) => "ld",
            OpKind::Store(_) => "st",
            OpKind::Output => "out",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::ids::BaseId;

    #[test]
    fn mem_classification() {
        let m = MemRef::affine(BaseId::new(0), AffineExpr::zero());
        assert!(OpKind::Load(m.clone()).is_mem());
        assert!(OpKind::Load(m.clone()).is_load());
        assert!(!OpKind::Load(m.clone()).is_store());
        assert!(OpKind::Store(m.clone()).is_store());
        assert!(OpKind::Store(m.clone()).mem_ref().is_some());
        assert!(!OpKind::Int(IntOp::Add).is_mem());
        assert!(OpKind::Int(IntOp::Add).mem_ref().is_none());
    }

    #[test]
    fn fp_classification() {
        assert!(OpKind::Fp(FpOp::Mul).is_fp());
        assert!(!OpKind::Int(IntOp::Mul).is_fp());
    }

    #[test]
    fn mnemonics_are_distinct_for_mem() {
        let m = MemRef::affine(BaseId::new(0), AffineExpr::zero());
        assert_eq!(OpKind::Load(m.clone()).to_string(), "ld");
        assert_eq!(OpKind::Store(m).to_string(), "st");
        assert_eq!(OpKind::Const { value: 3 }.to_string(), "const");
    }
}
