//! Runtime bindings: the concrete values that make a region executable.
//!
//! A [`crate::Region`] is a *static* artifact. To simulate it (or to
//! cross-check alias labels against dynamic behaviour) every symbol needs a
//! concrete value: base addresses for base objects, integers for symbolic
//! parameters, and per-invocation values for unknown-provenance pointers.
//! A [`Binding`] packages those; [`Binding::eval_ctx`] produces the
//! [`crate::EvalCtx`] for one invocation.

use crate::ids::UnknownId;
use crate::memref::EvalCtx;

/// How an unknown-provenance pointer behaves across invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnknownPattern {
    /// The same address every invocation.
    Fixed(u64),
    /// `base + invocation·step` — a regular walk the compiler could not
    /// prove (e.g. a pointer advanced through a linked arena).
    Stride {
        /// Address at invocation 0.
        base: u64,
        /// Bytes advanced per invocation.
        step: u64,
    },
    /// Pseudo-random `align`-aligned addresses in `[lo, hi)` — pointer
    /// chasing through scattered nodes. Deterministic per
    /// `(seed, invocation)`.
    Scatter {
        /// RNG seed.
        seed: u64,
        /// Inclusive lower bound of the address range.
        lo: u64,
        /// Exclusive upper bound of the address range.
        hi: u64,
        /// Address alignment (power of two).
        align: u64,
    },
}

impl UnknownPattern {
    /// The pointer value at a given invocation.
    #[must_use]
    pub fn resolve(&self, invocation: u64) -> u64 {
        match *self {
            UnknownPattern::Fixed(a) => a,
            UnknownPattern::Stride { base, step } => base.wrapping_add(invocation * step),
            UnknownPattern::Scatter {
                seed,
                lo,
                hi,
                align,
            } => {
                debug_assert!(align.is_power_of_two() && hi > lo);
                let mut x = seed ^ invocation.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                // SplitMix64 finalizer.
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                let span = (hi - lo) / align;
                lo + (x % span.max(1)) * align
            }
        }
    }
}

/// Concrete runtime bindings for one region.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Binding {
    /// Byte address of each base object, indexed by [`crate::BaseId`].
    pub base_addrs: Vec<u64>,
    /// Value of each symbolic parameter, indexed by [`crate::ParamId`].
    pub params: Vec<i64>,
    /// Behaviour of each unknown pointer, indexed by [`UnknownId`].
    pub unknowns: Vec<UnknownPattern>,
}

impl Binding {
    /// Materializes the unknown-pointer values for one invocation.
    #[must_use]
    pub fn unknown_values(&self, invocation: u64) -> Vec<u64> {
        let mut vals = Vec::new();
        self.unknown_values_into(invocation, &mut vals);
        vals
    }

    /// Like [`Binding::unknown_values`], writing into a caller-owned
    /// buffer (cleared first) so hot callers skip the allocation.
    pub fn unknown_values_into(&self, invocation: u64, vals: &mut Vec<u64>) {
        vals.clear();
        vals.extend(self.unknowns.iter().map(|p| p.resolve(invocation)));
    }

    /// Builds the evaluation context for one invocation, given the
    /// iteration vector `iv` and pre-materialized `unknown_vals` (from
    /// [`Binding::unknown_values`]).
    #[must_use]
    pub fn eval_ctx<'a>(&'a self, iv: &'a [i64], unknown_vals: &'a [u64]) -> EvalCtx<'a> {
        EvalCtx {
            base_addrs: &self.base_addrs,
            iv,
            params: &self.params,
            unknowns: unknown_vals,
        }
    }

    /// The value of one unknown pointer at one invocation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn resolve_unknown(&self, id: UnknownId, invocation: u64) -> u64 {
        self.unknowns[id.index()].resolve(invocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_stride() {
        assert_eq!(UnknownPattern::Fixed(0x100).resolve(7), 0x100);
        let s = UnknownPattern::Stride {
            base: 0x1000,
            step: 64,
        };
        assert_eq!(s.resolve(0), 0x1000);
        assert_eq!(s.resolve(3), 0x10c0);
    }

    #[test]
    fn scatter_is_deterministic_aligned_and_in_range() {
        let p = UnknownPattern::Scatter {
            seed: 42,
            lo: 0x1_0000,
            hi: 0x2_0000,
            align: 8,
        };
        for inv in 0..1000 {
            let a = p.resolve(inv);
            assert_eq!(a, p.resolve(inv), "deterministic");
            assert!((0x1_0000..0x2_0000).contains(&a));
            assert_eq!(a % 8, 0);
        }
        // Not trivially constant.
        assert_ne!(p.resolve(0), p.resolve(1));
    }

    #[test]
    fn binding_materializes_ctx() {
        let b = Binding {
            base_addrs: vec![0x1000, 0x2000],
            params: vec![16],
            unknowns: vec![UnknownPattern::Fixed(0x3000)],
        };
        let iv = [2i64];
        let u = b.unknown_values(0);
        let ctx = b.eval_ctx(&iv, &u);
        assert_eq!(ctx.base_addrs[1], 0x2000);
        assert_eq!(ctx.params[0], 16);
        assert_eq!(ctx.unknowns[0], 0x3000);
        assert_eq!(b.resolve_unknown(UnknownId::new(0), 5), 0x3000);
    }
}
