//! Memory references: base objects, pointer expressions and typed accesses.
//!
//! Every load/store in a region carries a [`MemRef`] describing *where* it
//! accesses memory in terms the compiler can reason about:
//!
//! * a [`PtrExpr`] — provenance (base object or unknown) plus an offset
//!   shape (affine, multidimensional-subscript, or opaque), and
//! * an [`AccessType`] — a type-based-alias-analysis (TBAA) tag, and
//! * the access size and address space (main memory vs scratchpad).
//!
//! The same `MemRef` is *executable*: [`MemRef::eval`] computes the concrete
//! byte address for a given evaluation context, which is how the simulator
//! derives its dynamic address traces and how tests cross-check the static
//! alias labels against dynamic behaviour.

use crate::expr::{AffineExpr, ScaledParam};
use crate::ids::{BaseId, ScopeId, UnknownId};
use std::fmt;

/// What kind of object a [`BaseId`] names.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BaseKind {
    /// A global variable visible to the region.
    Global {
        /// Source-level name, for diagnostics.
        name: String,
    },
    /// A stack allocation local to the offloaded path (never escapes).
    Stack {
        /// Source-level name, for diagnostics.
        name: String,
    },
    /// A heap allocation identified by its allocation site.
    Heap {
        /// Allocation-site identifier.
        site: u32,
    },
    /// An incoming pointer argument of the acceleration region. Its
    /// provenance is unknown *within* the region; Stage 2 of NACHOS-SW may
    /// recover it from the calling context.
    Arg {
        /// Argument position in the region signature.
        index: u32,
    },
}

impl BaseKind {
    /// `true` for objects whose identity the compiler established locally
    /// (globals, stack slots, heap allocation sites) — two *distinct* such
    /// objects can never overlap.
    #[must_use]
    pub fn is_identified_object(&self) -> bool {
        !matches!(self, BaseKind::Arg { .. })
    }
}

/// One entry of a region's base-object table.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BaseObject {
    /// The kind of object.
    pub kind: BaseKind,
    /// Byte size of the object, if statically known.
    pub size: Option<u64>,
    /// Identity of this object in the *caller's* object namespace, when the
    /// object is also visible outside the region (globals, and arguments
    /// after Stage-2 provenance tracing). Two bases with different caller
    /// ids are distinct objects; equal ids are the same object.
    pub caller_object: Option<u32>,
}

impl BaseObject {
    /// Convenience constructor for a named global of known size.
    #[must_use]
    pub fn global(name: &str, size: u64, caller_object: u32) -> Self {
        Self {
            kind: BaseKind::Global {
                name: name.to_owned(),
            },
            size: Some(size),
            caller_object: Some(caller_object),
        }
    }

    /// Convenience constructor for a region-local stack slot.
    #[must_use]
    pub fn stack(name: &str, size: u64) -> Self {
        Self {
            kind: BaseKind::Stack {
                name: name.to_owned(),
            },
            size: Some(size),
            caller_object: None,
        }
    }

    /// Convenience constructor for a heap allocation site.
    #[must_use]
    pub fn heap(site: u32, size: Option<u64>) -> Self {
        Self {
            kind: BaseKind::Heap { site },
            size,
            caller_object: None,
        }
    }

    /// Convenience constructor for an incoming pointer argument.
    #[must_use]
    pub fn arg(index: u32) -> Self {
        Self {
            kind: BaseKind::Arg { index },
            size: None,
            caller_object: None,
        }
    }
}

/// A TBAA-style access-type tag.
///
/// Types are identified by small integers. [`AccessType::OPAQUE`] (the
/// `char`-like universal type) is compatible with everything; two distinct
/// non-opaque types never alias.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AccessType(pub u32);

impl AccessType {
    /// The universal type that may alias any other type (like `char` in C).
    pub const OPAQUE: AccessType = AccessType(0);

    /// `true` if accesses of types `self` and `other` may refer to the same
    /// storage under strict-aliasing rules.
    #[must_use]
    pub fn compatible(self, other: AccessType) -> bool {
        self == AccessType::OPAQUE || other == AccessType::OPAQUE || self == other
    }
}

/// Which address space an access targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Cache-backed main memory (non-local data: heap and globals). Only
    /// these accesses participate in memory disambiguation.
    Memory,
    /// Compiler-managed scratchpad for perfectly-disambiguated local data
    /// (Table II column C5). Scratchpad accesses need no MDEs and no LSQ.
    Scratchpad,
}

/// One dimension of a multidimensional array subscript.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Subscript {
    /// The subscript expression, in *elements* of this dimension.
    pub index: AffineExpr,
    /// Byte stride between consecutive elements of this dimension (possibly
    /// symbolic, e.g. `8·n` for the rows of a `double [m][n]` array).
    pub stride: ScaledParam,
    /// Number of valid index values in this dimension, if known. When the
    /// access is marked in-bounds, `0 <= index < extent` holds dynamically.
    pub extent: Option<ScaledParam>,
}

/// The pointer operand of a memory access.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PtrExpr {
    /// `base + offset` with a (single, linearized) affine byte offset.
    /// This is the shape LLVM's basic + SCEV analyses understand.
    Affine {
        /// Base object.
        base: BaseId,
        /// Byte offset from the base.
        offset: AffineExpr,
    },
    /// A multidimensional in-bounds array access:
    /// `base + Σ_d index_d · stride_d`. Stage 1 cannot reason about these
    /// when strides are symbolic; Stage 4 (polyhedral) can.
    MultiDim {
        /// Base object (the array).
        base: BaseId,
        /// Per-dimension subscripts, outermost first.
        subs: Vec<Subscript>,
        /// If `true`, every subscript is guaranteed within its extent.
        in_bounds: bool,
    },
    /// A pointer of unknown provenance (loaded from memory, the result of
    /// pointer chasing, or arithmetic the compiler could not model), plus a
    /// known constant byte offset.
    Unknown {
        /// Identifies the unknown pointer source; equal ids denote the very
        /// same runtime pointer value.
        source: UnknownId,
        /// Constant byte offset from the unknown pointer.
        offset: i64,
    },
}

impl PtrExpr {
    /// The base object, when provenance is known.
    #[must_use]
    pub fn base(&self) -> Option<BaseId> {
        match self {
            PtrExpr::Affine { base, .. } | PtrExpr::MultiDim { base, .. } => Some(*base),
            PtrExpr::Unknown { .. } => None,
        }
    }

    /// `true` if the pointer's provenance is unknown within the region.
    #[must_use]
    pub fn is_unknown(&self) -> bool {
        matches!(self, PtrExpr::Unknown { .. })
    }
}

/// A complete memory reference: pointer, size, type and address space.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Where the access points.
    pub ptr: PtrExpr,
    /// Access width in bytes (1, 2, 4 or 8).
    pub size: u8,
    /// TBAA tag.
    pub ty: AccessType,
    /// Address space.
    pub space: MemSpace,
    /// `restrict`-style scope: two accesses in *different* scopes with at
    /// least one scoped pointer are guaranteed not to alias.
    pub noalias_scope: Option<ScopeId>,
}

impl MemRef {
    /// A plain 8-byte memory access at `base + offset` with opaque type.
    #[must_use]
    pub fn affine(base: BaseId, offset: AffineExpr) -> Self {
        Self {
            ptr: PtrExpr::Affine { base, offset },
            size: 8,
            ty: AccessType::OPAQUE,
            space: MemSpace::Memory,
            noalias_scope: None,
        }
    }

    /// A plain 8-byte access through an unknown pointer.
    #[must_use]
    pub fn unknown(source: UnknownId, offset: i64) -> Self {
        Self {
            ptr: PtrExpr::Unknown { source, offset },
            size: 8,
            ty: AccessType::OPAQUE,
            space: MemSpace::Memory,
            noalias_scope: None,
        }
    }

    /// An in-bounds multidimensional access.
    #[must_use]
    pub fn multi_dim(base: BaseId, subs: Vec<Subscript>) -> Self {
        Self {
            ptr: PtrExpr::MultiDim {
                base,
                subs,
                in_bounds: true,
            },
            size: 8,
            ty: AccessType::OPAQUE,
            space: MemSpace::Memory,
            noalias_scope: None,
        }
    }

    /// Sets the access size in bytes, builder-style.
    #[must_use]
    pub fn with_size(mut self, size: u8) -> Self {
        self.size = size;
        self
    }

    /// Sets the TBAA tag, builder-style.
    #[must_use]
    pub fn with_type(mut self, ty: AccessType) -> Self {
        self.ty = ty;
        self
    }

    /// Sets the address space, builder-style.
    #[must_use]
    pub fn with_space(mut self, space: MemSpace) -> Self {
        self.space = space;
        self
    }

    /// Sets the no-alias scope, builder-style.
    #[must_use]
    pub fn with_scope(mut self, scope: ScopeId) -> Self {
        self.noalias_scope = Some(scope);
        self
    }

    /// `true` if the access targets disambiguation-relevant memory.
    #[must_use]
    pub fn needs_disambiguation(&self) -> bool {
        self.space == MemSpace::Memory
    }

    /// Computes the concrete byte address of this reference.
    ///
    /// # Panics
    ///
    /// Panics if the context lacks a binding this reference needs (base
    /// address, parameter value, induction variable, or unknown-pointer
    /// value).
    #[must_use]
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> u64 {
        match &self.ptr {
            PtrExpr::Affine { base, offset } => {
                let b = ctx.base_addrs[base.index()];
                b.wrapping_add_signed(offset.eval(ctx.iv))
            }
            PtrExpr::MultiDim { base, subs, .. } => {
                let mut addr = ctx.base_addrs[base.index()];
                for sub in subs {
                    let idx = sub.index.eval(ctx.iv);
                    let stride = sub.stride.eval(ctx.params);
                    addr = addr.wrapping_add_signed(idx * stride);
                }
                addr
            }
            PtrExpr::Unknown { source, offset } => {
                ctx.unknowns[source.index()].wrapping_add_signed(*offset)
            }
        }
    }
}

/// Concrete bindings needed to evaluate a [`MemRef`] to a byte address.
#[derive(Clone, Copy, Debug)]
pub struct EvalCtx<'a> {
    /// Concrete base address per [`BaseId`].
    pub base_addrs: &'a [u64],
    /// Induction-variable values per [`crate::LoopId`], for the current
    /// region invocation.
    pub iv: &'a [i64],
    /// Symbolic parameter values per [`crate::ParamId`].
    pub params: &'a [i64],
    /// Runtime values of unknown-provenance pointers per [`UnknownId`],
    /// for the current region invocation.
    pub unknowns: &'a [u64],
}

/// Declares a symbolic parameter of the region together with the bounds the
/// compiler may assume (e.g. an array extent known to be at least 1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ParamInfo {
    /// Human-readable name.
    pub name: String,
    /// Smallest value the parameter can take at run time.
    pub min: i64,
    /// Largest value the parameter can take, if bounded.
    pub max: Option<i64>,
}

impl ParamInfo {
    /// A parameter named `name` known to satisfy `value >= min`.
    #[must_use]
    pub fn at_least(name: &str, min: i64) -> Self {
        Self {
            name: name.to_owned(),
            min,
            max: None,
        }
    }
}

impl fmt::Display for ParamInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(max) => write!(f, "{} in [{}, {}]", self.name, self.min, max),
            None => write!(f, "{} >= {}", self.name, self.min),
        }
    }
}

/// How a region pointer argument maps back to the caller's objects
/// (Stage 2's inter-procedural provenance information).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Provenance {
    /// The argument is derived from the caller object with this id.
    Object(u32),
    /// The caller-side provenance could not be traced.
    #[default]
    Unknown,
}

/// The calling context of a region: per-argument provenance.
///
/// The paper's workloads invoke each accelerated path from a single call
/// site with no function-pointer indirection, so the provenance of a region
/// argument is a single caller object or unknown.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CallContext {
    /// Provenance per region-argument index.
    pub args: Vec<Provenance>,
}

impl CallContext {
    /// A context in which no argument provenance is known.
    #[must_use]
    pub fn opaque(num_args: usize) -> Self {
        Self {
            args: vec![Provenance::Unknown; num_args],
        }
    }

    /// The provenance of argument `index`, if recorded.
    #[must_use]
    pub fn provenance(&self, index: u32) -> Provenance {
        self.args
            .get(index as usize)
            .cloned()
            .unwrap_or(Provenance::Unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LoopId, ParamId};

    #[test]
    fn identified_objects() {
        assert!(BaseObject::global("g", 64, 0).kind.is_identified_object());
        assert!(BaseObject::stack("s", 8).kind.is_identified_object());
        assert!(BaseObject::heap(3, None).kind.is_identified_object());
        assert!(!BaseObject::arg(0).kind.is_identified_object());
    }

    #[test]
    fn access_type_compatibility() {
        let int_ty = AccessType(1);
        let float_ty = AccessType(2);
        assert!(int_ty.compatible(int_ty));
        assert!(!int_ty.compatible(float_ty));
        assert!(AccessType::OPAQUE.compatible(float_ty));
        assert!(int_ty.compatible(AccessType::OPAQUE));
    }

    #[test]
    fn affine_eval() {
        let i = LoopId::new(0);
        let m = MemRef::affine(BaseId::new(0), AffineExpr::var(i).scaled(8).plus(4));
        let ctx = EvalCtx {
            base_addrs: &[0x1000],
            iv: &[3],
            params: &[],
            unknowns: &[],
        };
        assert_eq!(m.eval(&ctx), 0x1000 + 24 + 4);
    }

    #[test]
    fn multidim_eval_with_symbolic_stride() {
        let i = LoopId::new(0);
        let j = LoopId::new(1);
        let n = ParamId::new(0);
        // A[i][j] with elem size 8 and symbolic row extent n.
        let m = MemRef::multi_dim(
            BaseId::new(0),
            vec![
                Subscript {
                    index: AffineExpr::var(i),
                    stride: ScaledParam::symbolic(8, n),
                    extent: None,
                },
                Subscript {
                    index: AffineExpr::var(j),
                    stride: ScaledParam::constant(8),
                    extent: Some(ScaledParam::symbolic(1, n)),
                },
            ],
        );
        let ctx = EvalCtx {
            base_addrs: &[0x2000],
            iv: &[2, 3],
            params: &[10],
            unknowns: &[],
        };
        // 0x2000 + 2*80 + 3*8
        assert_eq!(m.eval(&ctx), 0x2000 + 160 + 24);
    }

    #[test]
    fn unknown_eval() {
        let m = MemRef::unknown(UnknownId::new(1), 16);
        let ctx = EvalCtx {
            base_addrs: &[],
            iv: &[],
            params: &[],
            unknowns: &[0x500, 0x900],
        };
        assert_eq!(m.eval(&ctx), 0x910);
        assert!(m.ptr.is_unknown());
        assert_eq!(m.ptr.base(), None);
    }

    #[test]
    fn memref_builders() {
        let m = MemRef::affine(BaseId::new(2), AffineExpr::zero())
            .with_size(4)
            .with_type(AccessType(7))
            .with_space(MemSpace::Scratchpad)
            .with_scope(ScopeId::new(1));
        assert_eq!(m.size, 4);
        assert_eq!(m.ty, AccessType(7));
        assert!(!m.needs_disambiguation());
        assert_eq!(m.noalias_scope, Some(ScopeId::new(1)));
    }

    #[test]
    fn call_context_defaults_to_unknown() {
        let ctx = CallContext::opaque(2);
        assert_eq!(ctx.provenance(0), Provenance::Unknown);
        assert_eq!(ctx.provenance(5), Provenance::Unknown);
        let ctx = CallContext {
            args: vec![Provenance::Object(3)],
        };
        assert_eq!(ctx.provenance(0), Provenance::Object(3));
    }
}
