//! Convenience builder for constructing [`Region`]s.

use crate::graph::GraphError;
use crate::ids::{BaseId, LoopId, NodeId, ParamId, UnknownId};
use crate::loops::LoopInfo;
use crate::memref::{BaseObject, MemRef, ParamInfo, Provenance};
use crate::op::{FpOp, IntOp, OpKind};
use crate::region::Region;
use crate::EdgeKind;

/// Incrementally builds an acceleration region.
///
/// Node-creating methods wire data edges from the listed operand nodes, so
/// the common case — a DAG of compute feeding memory operations — reads
/// top-to-bottom:
///
/// ```
/// use nachos_ir::{AffineExpr, BaseObject, MemRef, IntOp, RegionBuilder};
///
/// let mut b = RegionBuilder::new("demo");
/// let arr = b.global("arr", 4096, 0);
/// let x = b.input();
/// let y = b.constant(3);
/// let sum = b.int_op(IntOp::Add, &[x, y]);
/// let st = b.store(MemRef::affine(arr, AffineExpr::zero()), &[sum]);
/// let region = b.finish();
/// assert_eq!(region.dfg.num_mem_ops(), 1);
/// assert_eq!(region.dfg.mem_ops()[0], st);
/// ```
#[derive(Debug, Default)]
pub struct RegionBuilder {
    region: Region,
    next_input: u32,
}

impl RegionBuilder {
    /// Starts building a region with the given name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            region: Region::new(name),
            next_input: 0,
        }
    }

    /// Declares a global base object with a caller-namespace identity.
    pub fn global(&mut self, name: &str, size: u64, caller_object: u32) -> BaseId {
        self.region
            .add_base(BaseObject::global(name, size, caller_object))
    }

    /// Declares a region-local stack object.
    pub fn stack(&mut self, name: &str, size: u64) -> BaseId {
        self.region.add_base(BaseObject::stack(name, size))
    }

    /// Declares a heap allocation site.
    pub fn heap(&mut self, site: u32, size: Option<u64>) -> BaseId {
        self.region.add_base(BaseObject::heap(site, size))
    }

    /// Declares an incoming pointer argument with the given caller-side
    /// provenance (use [`Provenance::Unknown`] when the caller object is
    /// not traceable).
    pub fn arg(&mut self, index: u32, provenance: Provenance) -> BaseId {
        while self.region.context.args.len() <= index as usize {
            self.region.context.args.push(Provenance::Unknown);
        }
        self.region.context.args[index as usize] = provenance;
        self.region.add_base(BaseObject::arg(index))
    }

    /// Declares a symbolic parameter.
    pub fn param(&mut self, info: ParamInfo) -> ParamId {
        self.region.add_param(info)
    }

    /// Declares an enclosing loop (call outermost-first).
    pub fn enclosing_loop(&mut self, info: LoopInfo) -> LoopId {
        self.region.loops.push(info)
    }

    /// Allocates an unknown-provenance pointer source.
    pub fn unknown_ptr(&mut self) -> UnknownId {
        self.region.add_unknown()
    }

    /// Adds a live-in node.
    pub fn input(&mut self) -> NodeId {
        let idx = self.next_input;
        self.next_input += 1;
        self.add_node(OpKind::Input { index: idx }, &[])
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: u64) -> NodeId {
        self.add_node(OpKind::Const { value }, &[])
    }

    /// Adds an integer ALU node consuming `operands`.
    pub fn int_op(&mut self, op: IntOp, operands: &[NodeId]) -> NodeId {
        self.add_node(OpKind::Int(op), operands)
    }

    /// Adds a floating-point node consuming `operands`.
    pub fn fp_op(&mut self, op: FpOp, operands: &[NodeId]) -> NodeId {
        self.add_node(OpKind::Fp(op), operands)
    }

    /// Adds a load; `operands` are its address inputs (may be empty when
    /// the address is wholly region-invariant).
    pub fn load(&mut self, mem: MemRef, operands: &[NodeId]) -> NodeId {
        self.add_node(OpKind::Load(mem), operands)
    }

    /// Adds a store; `operands` are its address/value inputs.
    pub fn store(&mut self, mem: MemRef, operands: &[NodeId]) -> NodeId {
        self.add_node(OpKind::Store(mem), operands)
    }

    /// Adds a live-out node consuming `operand`.
    pub fn output(&mut self, operand: NodeId) -> NodeId {
        self.add_node(OpKind::Output, &[operand])
    }

    /// Adds an arbitrary node with data edges from `operands`.
    ///
    /// # Panics
    ///
    /// Panics if an operand id is invalid, an edge would create a cycle, or
    /// the memory-operation limit is exceeded. The builder is for
    /// programmatic construction where these are logic errors; use
    /// [`crate::Dfg::add_node`]/[`crate::Dfg::add_edge`] directly for
    /// fallible construction.
    pub fn add_node(&mut self, kind: OpKind, operands: &[NodeId]) -> NodeId {
        let id = self
            .region
            .dfg
            .add_node(kind)
            .unwrap_or_else(|e| panic!("builder: {e}"));
        for &op in operands {
            self.region
                .dfg
                .add_edge(op, id, EdgeKind::Data)
                .unwrap_or_else(|e: GraphError| panic!("builder: {e}"));
        }
        id
    }

    /// Adds a raw data edge between existing nodes.
    ///
    /// # Panics
    ///
    /// Panics on invalid endpoints, duplicates or cycles.
    pub fn data_edge(&mut self, src: NodeId, dst: NodeId) {
        self.region
            .dfg
            .add_edge(src, dst, EdgeKind::Data)
            .unwrap_or_else(|e| panic!("builder: {e}"));
    }

    /// Read access to the region under construction.
    #[must_use]
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Finishes construction and returns the region.
    ///
    /// # Panics
    ///
    /// Panics if the constructed region fails
    /// [`validate_region`](crate::validate::validate_region).
    #[must_use]
    pub fn finish(self) -> Region {
        if let Err(errors) = crate::validate::validate_region(&self.region) {
            let joined = errors
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            panic!("builder produced invalid region: {joined}");
        }
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;

    #[test]
    fn builder_wires_data_edges() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let x = b.input();
        let y = b.input();
        let add = b.int_op(IntOp::Add, &[x, y]);
        let ld = b.load(MemRef::affine(g, AffineExpr::zero()), &[add]);
        let out = b.output(ld);
        let r = b.finish();
        assert_eq!(r.dfg.num_nodes(), 5);
        assert_eq!(r.dfg.num_edges(), 4);
        assert!(r.dfg.reaches(x, out));
        assert_eq!(r.dfg.in_edges(add).count(), 2);
    }

    #[test]
    fn inputs_get_sequential_indices() {
        let mut b = RegionBuilder::new("t");
        let a = b.input();
        let c = b.input();
        let r = b.region();
        match (&r.dfg.node(a).kind, &r.dfg.node(c).kind) {
            (OpKind::Input { index: 0 }, OpKind::Input { index: 1 }) => {}
            other => panic!("unexpected inputs: {other:?}"),
        }
    }

    #[test]
    fn arg_registers_provenance() {
        let mut b = RegionBuilder::new("t");
        let _a0 = b.arg(0, Provenance::Unknown);
        let _a2 = b.arg(2, Provenance::Object(9));
        let r = b.finish();
        assert_eq!(r.context.args.len(), 3);
        assert_eq!(r.context.provenance(2), Provenance::Object(9));
        assert_eq!(r.context.provenance(1), Provenance::Unknown);
    }

    #[test]
    #[should_panic(expected = "invalid region")]
    fn finish_validates() {
        let mut b = RegionBuilder::new("t");
        // Base id 5 was never declared.
        b.load(MemRef::affine(BaseId::new(5), AffineExpr::zero()), &[]);
        let _ = b.finish();
    }
}
