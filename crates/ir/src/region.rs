//! Acceleration regions: a DFG plus the symbol tables it references.

use crate::graph::Dfg;
use crate::ids::{BaseId, ParamId, UnknownId};
use crate::loops::LoopNest;
use crate::memref::{BaseObject, CallContext, MemSpace, ParamInfo};

/// A complete acceleration region: the offloaded dataflow graph together
/// with its base-object table, enclosing loop nest, symbolic parameters and
/// calling context.
///
/// This is the unit the NACHOS-SW compiler analyzes and the CGRA executes.
#[derive(Clone, Debug, Default)]
pub struct Region {
    /// Region name (benchmark + path index, e.g. `"equake.p0"`).
    pub name: String,
    /// The dataflow graph.
    pub dfg: Dfg,
    /// Base objects referenced by pointer expressions.
    pub bases: Vec<BaseObject>,
    /// Enclosing loop nest, outermost first.
    pub loops: LoopNest,
    /// Symbolic parameters (array extents etc.).
    pub params: Vec<ParamInfo>,
    /// Number of distinct unknown-provenance pointer sources.
    pub num_unknowns: usize,
    /// Inter-procedural provenance of region arguments.
    pub context: CallContext,
}

impl Region {
    /// An empty named region.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    /// Registers a base object, returning its id.
    pub fn add_base(&mut self, base: BaseObject) -> BaseId {
        let id = BaseId::new(self.bases.len());
        self.bases.push(base);
        id
    }

    /// Registers a symbolic parameter, returning its id.
    pub fn add_param(&mut self, param: ParamInfo) -> ParamId {
        let id = ParamId::new(self.params.len());
        self.params.push(param);
        id
    }

    /// Allocates a fresh unknown-pointer source id.
    pub fn add_unknown(&mut self) -> UnknownId {
        let id = UnknownId::new(self.num_unknowns);
        self.num_unknowns += 1;
        id
    }

    /// The base object for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn base(&self, id: BaseId) -> &BaseObject {
        &self.bases[id.index()]
    }

    /// Mutable access to a base object (used by Stage 2 to record traced
    /// provenance).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn base_mut(&mut self, id: BaseId) -> &mut BaseObject {
        &mut self.bases[id.index()]
    }

    /// Number of memory operations that target disambiguation-relevant
    /// memory (Table II column `#MEM`): loads/stores to [`MemSpace::Memory`].
    #[must_use]
    pub fn num_global_mem_ops(&self) -> usize {
        self.dfg
            .mem_ops()
            .iter()
            .filter(|&&n| {
                self.dfg
                    .node(n)
                    .kind
                    .mem_ref()
                    .is_some_and(|m| m.space == MemSpace::Memory)
            })
            .count()
    }

    /// Number of memory operations promoted to scratchpad (the `%LOC`
    /// population of Table II column C5).
    #[must_use]
    pub fn num_scratchpad_ops(&self) -> usize {
        self.dfg.num_mem_ops() - self.num_global_mem_ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::memref::MemRef;
    use crate::op::OpKind;

    #[test]
    fn region_tables() {
        let mut r = Region::new("test");
        let g = r.add_base(BaseObject::global("g", 1024, 0));
        let p = r.add_param(ParamInfo::at_least("n", 1));
        let u = r.add_unknown();
        assert_eq!(g.index(), 0);
        assert_eq!(p.index(), 0);
        assert_eq!(u.index(), 0);
        assert_eq!(r.base(g).size, Some(1024));
        assert_eq!(r.num_unknowns, 1);
    }

    #[test]
    fn global_vs_scratchpad_counting() {
        let mut r = Region::new("test");
        let b = r.add_base(BaseObject::global("g", 64, 0));
        let global = MemRef::affine(b, AffineExpr::zero());
        let local = global.clone().with_space(MemSpace::Scratchpad);
        r.dfg.add_node(OpKind::Load(global)).unwrap();
        r.dfg.add_node(OpKind::Load(local.clone())).unwrap();
        r.dfg.add_node(OpKind::Store(local)).unwrap();
        assert_eq!(r.dfg.num_mem_ops(), 3);
        assert_eq!(r.num_global_mem_ops(), 1);
        assert_eq!(r.num_scratchpad_ops(), 2);
    }
}
