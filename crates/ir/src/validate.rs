//! Pre-simulation region validation with structured diagnostics.
//!
//! [`Dfg::add_edge`](crate::Dfg::add_edge) enforces the graph invariants
//! at construction time, but regions can also arrive from adversarial
//! sources — fault-injection tests that mutate a compiled region through
//! [`Dfg::add_edge_unchecked`](crate::Dfg::add_edge_unchecked), or future
//! deserialization paths. [`validate_region`] re-checks every invariant
//! the simulator's safety argument rests on and reports *all* violations
//! as structured [`ValidateError`] diagnostics instead of panicking deep
//! inside the engine:
//!
//! * edge endpoints name existing nodes (no dangling ids);
//! * the memory-slot table is consistent with the node table;
//! * MDEs connect memory operations in program order, FORWARD edges go
//!   store → load;
//! * the graph is acyclic overall, and specifically there is no cycle
//!   through the ordering-token edges (ORDER/MAY/FORWARD) — a token-edge
//!   cycle is a guaranteed deadlock: every operation on the cycle waits
//!   for a completion token that can never be produced.

use crate::edge::{Edge, EdgeKind};
use crate::ids::NodeId;
use crate::region::Region;
use std::fmt;

/// One structural violation found by [`validate_region`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// An edge endpoint does not name an existing node.
    DanglingEndpoint {
        /// The offending edge.
        edge: Edge,
    },
    /// The memory-slot table and the node table disagree.
    InconsistentMemSlot {
        /// The node whose recorded slot does not match the table.
        node: NodeId,
    },
    /// An MDE connects nodes that are not both memory operations.
    MdeBetweenNonMem {
        /// The offending edge.
        edge: Edge,
    },
    /// An MDE points from a younger to an older memory operation.
    MdeAgainstProgramOrder {
        /// The offending edge.
        edge: Edge,
    },
    /// A FORWARD edge whose endpoints are not store → load.
    BadForwardEndpoints {
        /// The offending edge.
        edge: Edge,
    },
    /// A cycle through ordering-token edges (ORDER/MAY/FORWARD): every
    /// node on it waits for a token that can never be produced.
    TokenCycle {
        /// The nodes on the cycle, in edge order.
        nodes: Vec<NodeId>,
    },
    /// A cycle in the full graph (data edges included); the DFG must be a
    /// DAG for placement and event scheduling.
    GraphCycle {
        /// The nodes on the cycle, in edge order.
        nodes: Vec<NodeId>,
    },
    /// A pointer-expression symbol (base/loop/param/unknown id) is out of
    /// range for the region's tables.
    Symbol {
        /// Human-readable description from the symbol checker.
        message: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::DanglingEndpoint { edge } => {
                write!(f, "edge {edge} references a non-existent node")
            }
            ValidateError::InconsistentMemSlot { node } => {
                write!(f, "memory-slot table inconsistent at node {node}")
            }
            ValidateError::MdeBetweenNonMem { edge } => {
                write!(f, "MDE {edge} between non-memory operations")
            }
            ValidateError::MdeAgainstProgramOrder { edge } => {
                write!(f, "MDE {edge} violates program order")
            }
            ValidateError::BadForwardEndpoints { edge } => {
                write!(f, "forward edge {edge} must go store -> load")
            }
            ValidateError::TokenCycle { nodes } => {
                write!(f, "token-edge cycle through {}", fmt_nodes(nodes))
            }
            ValidateError::GraphCycle { nodes } => {
                write!(f, "graph cycle through {}", fmt_nodes(nodes))
            }
            ValidateError::Symbol { message } => write!(f, "symbol error: {message}"),
        }
    }
}

impl std::error::Error for ValidateError {}

fn fmt_nodes(nodes: &[NodeId]) -> String {
    let mut s = String::new();
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            s.push_str(" -> ");
        }
        s.push_str(&n.to_string());
    }
    s
}

/// Checks every structural invariant the simulator relies on, returning
/// all violations found (never just the first).
///
/// # Errors
///
/// Returns the non-empty list of [`ValidateError`] diagnostics when the
/// region is not safe to place and simulate.
pub fn validate_region(region: &Region) -> Result<(), Vec<ValidateError>> {
    let dfg = &region.dfg;
    let n = dfg.num_nodes();
    let mut errors = Vec::new();

    // Memory-slot table consistency.
    for (i, &node) in dfg.mem_ops().iter().enumerate() {
        let consistent = node.index() < n
            && dfg
                .node(node)
                .mem_slot
                .is_some_and(|slot| slot.index() == i);
        if !consistent {
            errors.push(ValidateError::InconsistentMemSlot { node });
        }
    }

    // Per-edge checks. Dangling edges are excluded from adjacency by
    // `add_edge_unchecked`, so the cycle checks below stay in bounds.
    for &edge in dfg.edges() {
        if edge.src.index() >= n || edge.dst.index() >= n {
            errors.push(ValidateError::DanglingEndpoint { edge });
            continue;
        }
        if edge.kind.is_mde() {
            let (sn, dn) = (dfg.node(edge.src), dfg.node(edge.dst));
            let (Some(s_slot), Some(d_slot)) = (sn.mem_slot, dn.mem_slot) else {
                errors.push(ValidateError::MdeBetweenNonMem { edge });
                continue;
            };
            if s_slot >= d_slot {
                errors.push(ValidateError::MdeAgainstProgramOrder { edge });
            }
            if edge.kind == EdgeKind::Forward && !(sn.kind.is_store() && dn.kind.is_load()) {
                errors.push(ValidateError::BadForwardEndpoints { edge });
            }
        }
    }

    // Cycle checks: token-edge subgraph first (the sharper diagnostic),
    // then the full graph.
    let token_kinds = [EdgeKind::Order, EdgeKind::May, EdgeKind::Forward];
    if let Some(nodes) = find_cycle(region, &token_kinds) {
        errors.push(ValidateError::TokenCycle { nodes });
    } else if let Some(nodes) = find_cycle(
        region,
        &[
            EdgeKind::Data,
            EdgeKind::Order,
            EdgeKind::May,
            EdgeKind::Forward,
        ],
    ) {
        // A token cycle is also a graph cycle; only report the general
        // form when the token subgraph is clean.
        errors.push(ValidateError::GraphCycle { nodes });
    }

    // Symbol-table checks (base/loop/param/unknown ids in range).
    if let Err(message) = region.validate() {
        errors.push(ValidateError::Symbol { message });
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Finds one cycle restricted to the given edge kinds, returning its
/// nodes in edge order, or `None` when that subgraph is acyclic.
fn find_cycle(region: &Region, kinds: &[EdgeKind]) -> Option<Vec<NodeId>> {
    let dfg = &region.dfg;
    let n = dfg.num_nodes();
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color = vec![0u8; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS; each frame is (node, next successor index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&(node, next)) = stack.last() {
            let succs: Vec<usize> = dfg
                .out_edges(NodeId::new(node))
                .filter(|e| kinds.contains(&e.kind) && e.dst.index() < n)
                .map(|e| e.dst.index())
                .collect();
            if next < succs.len() {
                stack.last_mut().expect("frame just read").1 += 1;
                let d = succs[next];
                match color[d] {
                    0 => {
                        color[d] = 1;
                        parent[d] = node;
                        stack.push((d, 0));
                    }
                    1 => {
                        // Back edge node -> d with d an ancestor on the DFS
                        // path: unwind the parent chain node -> ... -> d and
                        // reverse it into edge order d -> ... -> node.
                        let mut cycle = Vec::new();
                        let mut cur = node;
                        loop {
                            cycle.push(NodeId::new(cur));
                            if cur == d {
                                break;
                            }
                            cur = parent[cur];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RegionBuilder;
    use crate::expr::AffineExpr;
    use crate::memref::MemRef;

    fn two_store_region() -> Region {
        let mut b = RegionBuilder::new("v");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        b.store(m.clone(), &[x]);
        b.store(m.clone(), &[x]);
        b.load(m, &[]);
        b.finish()
    }

    #[test]
    fn clean_region_validates() {
        let region = two_store_region();
        assert_eq!(validate_region(&region), Ok(()));
    }

    #[test]
    fn dangling_endpoint_is_reported() {
        let mut region = two_store_region();
        let a = NodeId::new(0);
        region
            .dfg
            .add_edge_unchecked(a, NodeId::new(99), EdgeKind::Data);
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::DanglingEndpoint { .. })));
    }

    #[test]
    fn token_cycle_is_reported_with_its_nodes() {
        let mut region = two_store_region();
        // Stores are nodes 1 and 2 (input is 0); wire order tokens both ways.
        let (s1, s2) = (NodeId::new(1), NodeId::new(2));
        region.dfg.add_edge(s1, s2, EdgeKind::Order).unwrap();
        region.dfg.add_edge_unchecked(s2, s1, EdgeKind::Order);
        let errs = validate_region(&region).unwrap_err();
        let cycle = errs
            .iter()
            .find_map(|e| match e {
                ValidateError::TokenCycle { nodes } => Some(nodes.clone()),
                _ => None,
            })
            .expect("token cycle reported");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&s1) && cycle.contains(&s2));
    }

    #[test]
    fn data_cycle_reports_graph_cycle() {
        let mut region = two_store_region();
        // input (0) -> store (1) exists as data; close a data cycle.
        region
            .dfg
            .add_edge_unchecked(NodeId::new(1), NodeId::new(0), EdgeKind::Data);
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::GraphCycle { .. })));
        assert!(
            !errs
                .iter()
                .any(|e| matches!(e, ValidateError::TokenCycle { .. })),
            "a pure data cycle is not a token cycle"
        );
    }

    #[test]
    fn backwards_mde_and_bad_forward_are_reported() {
        let mut region = two_store_region();
        let (s2, ld) = (NodeId::new(2), NodeId::new(3));
        // Load (slot 2) -> store (slot 1): against program order.
        region.dfg.add_edge_unchecked(ld, s2, EdgeKind::Order);
        // Forward ending at a store: bad endpoints (and in program order,
        // store slot 0 -> store slot 1, so only the endpoint check fires).
        region
            .dfg
            .add_edge_unchecked(NodeId::new(1), s2, EdgeKind::Forward);
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::MdeAgainstProgramOrder { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::BadForwardEndpoints { .. })));
    }

    #[test]
    fn mde_between_non_mem_is_reported() {
        let mut region = two_store_region();
        // Input node 0 is not a memory op.
        region
            .dfg
            .add_edge_unchecked(NodeId::new(0), NodeId::new(1), EdgeKind::Order);
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::MdeBetweenNonMem { .. })));
    }

    #[test]
    fn symbol_errors_surface_through_validate_region() {
        let mut region = Region::new("sym");
        let m = MemRef::affine(crate::ids::BaseId::new(7), AffineExpr::zero());
        region.dfg.add_node(crate::op::OpKind::Load(m)).unwrap();
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::Symbol { .. })));
    }

    #[test]
    fn diagnostics_have_readable_display() {
        let mut region = two_store_region();
        region
            .dfg
            .add_edge_unchecked(NodeId::new(2), NodeId::new(1), EdgeKind::Order);
        let errs = validate_region(&region).unwrap_err();
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
