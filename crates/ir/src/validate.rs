//! Pre-simulation region validation with structured diagnostics.
//!
//! [`Dfg::add_edge`](crate::Dfg::add_edge) enforces the graph invariants
//! at construction time, but regions can also arrive from adversarial
//! sources — fault-injection tests that mutate a compiled region through
//! [`Dfg::add_edge_unchecked`](crate::Dfg::add_edge_unchecked), or future
//! deserialization paths. [`validate_region`] re-checks every invariant
//! the simulator's safety argument rests on and reports *all* violations
//! as structured [`ValidateError`] diagnostics instead of panicking deep
//! inside the engine:
//!
//! * edge endpoints name existing nodes (no dangling ids);
//! * the memory-slot table is consistent with the node table;
//! * MDEs connect memory operations in program order, FORWARD edges go
//!   store → load;
//! * the graph is acyclic overall, and specifically there is no cycle
//!   through the ordering-token edges (ORDER/MAY/FORWARD) — a token-edge
//!   cycle is a guaranteed deadlock: every operation on the cycle waits
//!   for a completion token that can never be produced.

use crate::edge::{Edge, EdgeKind};
use crate::ids::NodeId;
use crate::region::Region;
use std::fmt;

/// One structural violation found by [`validate_region`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// An edge endpoint does not name an existing node.
    DanglingEndpoint {
        /// The offending edge.
        edge: Edge,
    },
    /// The memory-slot table and the node table disagree.
    InconsistentMemSlot {
        /// The node whose recorded slot does not match the table.
        node: NodeId,
    },
    /// An MDE connects nodes that are not both memory operations.
    MdeBetweenNonMem {
        /// The offending edge.
        edge: Edge,
    },
    /// An MDE points from a younger to an older memory operation.
    MdeAgainstProgramOrder {
        /// The offending edge.
        edge: Edge,
    },
    /// A FORWARD edge whose endpoints are not store → load.
    BadForwardEndpoints {
        /// The offending edge.
        edge: Edge,
    },
    /// A cycle through ordering-token edges (ORDER/MAY/FORWARD): every
    /// node on it waits for a token that can never be produced.
    TokenCycle {
        /// The nodes on the cycle, in edge order.
        nodes: Vec<NodeId>,
    },
    /// A cycle in the full graph (data edges included); the DFG must be a
    /// DAG for placement and event scheduling.
    GraphCycle {
        /// The nodes on the cycle, in edge order.
        nodes: Vec<NodeId>,
    },
    /// A pointer expression names a base object outside the region's
    /// base table.
    BaseOutOfRange {
        /// The memory operation with the bad reference.
        node: NodeId,
        /// The out-of-range base id.
        base: crate::ids::BaseId,
    },
    /// An affine term references a loop outside the region's nest.
    LoopOutOfRange {
        /// The memory operation with the bad reference.
        node: NodeId,
        /// The out-of-range loop id.
        loop_id: crate::ids::LoopId,
    },
    /// A stride or extent references a parameter outside the region's
    /// parameter table.
    ParamOutOfRange {
        /// The memory operation with the bad reference.
        node: NodeId,
        /// The out-of-range parameter id.
        param: crate::ids::ParamId,
    },
    /// An unknown-pointer access names a source outside the region's
    /// unknown table.
    UnknownOutOfRange {
        /// The memory operation with the bad reference.
        node: NodeId,
        /// The out-of-range unknown-source id.
        source: crate::ids::UnknownId,
    },
    /// A multidimensional access with an empty subscript list.
    EmptySubscripts {
        /// The memory operation with the malformed access.
        node: NodeId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::DanglingEndpoint { edge } => {
                write!(f, "edge {edge} references a non-existent node")
            }
            ValidateError::InconsistentMemSlot { node } => {
                write!(f, "memory-slot table inconsistent at node {node}")
            }
            ValidateError::MdeBetweenNonMem { edge } => {
                write!(f, "MDE {edge} between non-memory operations")
            }
            ValidateError::MdeAgainstProgramOrder { edge } => {
                write!(f, "MDE {edge} violates program order")
            }
            ValidateError::BadForwardEndpoints { edge } => {
                write!(f, "forward edge {edge} must go store -> load")
            }
            ValidateError::TokenCycle { nodes } => {
                write!(f, "token-edge cycle through {}", fmt_nodes(nodes))
            }
            ValidateError::GraphCycle { nodes } => {
                write!(f, "graph cycle through {}", fmt_nodes(nodes))
            }
            ValidateError::BaseOutOfRange { node, base } => {
                write!(f, "symbol error: {node}: base {base} out of range")
            }
            ValidateError::LoopOutOfRange { node, loop_id } => {
                write!(f, "symbol error: {node}: loop {loop_id} out of range")
            }
            ValidateError::ParamOutOfRange { node, param } => {
                write!(f, "symbol error: {node}: param {param} out of range")
            }
            ValidateError::UnknownOutOfRange { node, source } => {
                write!(
                    f,
                    "symbol error: {node}: unknown source {source} out of range"
                )
            }
            ValidateError::EmptySubscripts { node } => {
                write!(
                    f,
                    "symbol error: {node}: multidim access with no subscripts"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

fn fmt_nodes(nodes: &[NodeId]) -> String {
    let mut s = String::new();
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            s.push_str(" -> ");
        }
        s.push_str(&n.to_string());
    }
    s
}

/// Checks every structural invariant the simulator relies on, returning
/// all violations found (never just the first).
///
/// # Errors
///
/// Returns the non-empty list of [`ValidateError`] diagnostics when the
/// region is not safe to place and simulate.
pub fn validate_region(region: &Region) -> Result<(), Vec<ValidateError>> {
    let dfg = &region.dfg;
    let n = dfg.num_nodes();
    let mut errors = Vec::new();

    // Memory-slot table consistency.
    for (i, &node) in dfg.mem_ops().iter().enumerate() {
        let consistent = node.index() < n
            && dfg
                .node(node)
                .mem_slot
                .is_some_and(|slot| slot.index() == i);
        if !consistent {
            errors.push(ValidateError::InconsistentMemSlot { node });
        }
    }

    // Per-edge checks. Dangling edges are excluded from adjacency by
    // `add_edge_unchecked`, so the cycle checks below stay in bounds.
    for &edge in dfg.edges() {
        if edge.src.index() >= n || edge.dst.index() >= n {
            errors.push(ValidateError::DanglingEndpoint { edge });
            continue;
        }
        if edge.kind.is_mde() {
            let (sn, dn) = (dfg.node(edge.src), dfg.node(edge.dst));
            let (Some(s_slot), Some(d_slot)) = (sn.mem_slot, dn.mem_slot) else {
                errors.push(ValidateError::MdeBetweenNonMem { edge });
                continue;
            };
            if s_slot >= d_slot {
                errors.push(ValidateError::MdeAgainstProgramOrder { edge });
            }
            if edge.kind == EdgeKind::Forward && !(sn.kind.is_store() && dn.kind.is_load()) {
                errors.push(ValidateError::BadForwardEndpoints { edge });
            }
        }
    }

    // Cycle checks: token-edge subgraph first (the sharper diagnostic),
    // then the full graph.
    let token_kinds = [EdgeKind::Order, EdgeKind::May, EdgeKind::Forward];
    if let Some(nodes) = find_cycle(region, &token_kinds) {
        errors.push(ValidateError::TokenCycle { nodes });
    } else if let Some(nodes) = find_cycle(
        region,
        &[
            EdgeKind::Data,
            EdgeKind::Order,
            EdgeKind::May,
            EdgeKind::Forward,
        ],
    ) {
        // A token cycle is also a graph cycle; only report the general
        // form when the token subgraph is clean.
        errors.push(ValidateError::GraphCycle { nodes });
    }

    // Symbol-table checks (base/loop/param/unknown ids in range).
    check_symbols(region, &mut errors);

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Checks that every pointer expression references valid base, loop,
/// param and unknown ids, collecting *all* violations.
fn check_symbols(region: &Region, errors: &mut Vec<ValidateError>) {
    use crate::memref::PtrExpr;
    let dfg = &region.dfg;
    for node in dfg.node_ids() {
        let Some(mem) = dfg.node(node).kind.mem_ref() else {
            continue;
        };
        let check_base = |base: crate::ids::BaseId, errors: &mut Vec<ValidateError>| {
            if base.index() >= region.bases.len() {
                errors.push(ValidateError::BaseOutOfRange { node, base });
            }
        };
        let check_loops = |expr: &crate::expr::AffineExpr, errors: &mut Vec<ValidateError>| {
            for (loop_id, _) in expr.terms() {
                if region.loops.get(loop_id).is_none() {
                    errors.push(ValidateError::LoopOutOfRange { node, loop_id });
                }
            }
        };
        match &mem.ptr {
            PtrExpr::Affine { base, offset } => {
                check_base(*base, errors);
                check_loops(offset, errors);
            }
            PtrExpr::MultiDim { base, subs, .. } => {
                check_base(*base, errors);
                if subs.is_empty() {
                    errors.push(ValidateError::EmptySubscripts { node });
                }
                for sub in subs {
                    check_loops(&sub.index, errors);
                    for param in [sub.stride.param, sub.extent.and_then(|e| e.param)]
                        .into_iter()
                        .flatten()
                    {
                        if param.index() >= region.params.len() {
                            errors.push(ValidateError::ParamOutOfRange { node, param });
                        }
                    }
                }
            }
            PtrExpr::Unknown { source, .. } => {
                if source.index() >= region.num_unknowns {
                    errors.push(ValidateError::UnknownOutOfRange {
                        node,
                        source: *source,
                    });
                }
            }
        }
    }
}

/// Finds one cycle restricted to the given edge kinds, returning its
/// nodes in edge order, or `None` when that subgraph is acyclic.
fn find_cycle(region: &Region, kinds: &[EdgeKind]) -> Option<Vec<NodeId>> {
    let dfg = &region.dfg;
    let n = dfg.num_nodes();
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color = vec![0u8; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS; each frame is (node, next successor index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&(node, next)) = stack.last() {
            let succs: Vec<usize> = dfg
                .out_edges(NodeId::new(node))
                .filter(|e| kinds.contains(&e.kind) && e.dst.index() < n)
                .map(|e| e.dst.index())
                .collect();
            if next < succs.len() {
                stack.last_mut().expect("frame just read").1 += 1;
                let d = succs[next];
                match color[d] {
                    0 => {
                        color[d] = 1;
                        parent[d] = node;
                        stack.push((d, 0));
                    }
                    1 => {
                        // Back edge node -> d with d an ancestor on the DFS
                        // path: unwind the parent chain node -> ... -> d and
                        // reverse it into edge order d -> ... -> node.
                        let mut cycle = Vec::new();
                        let mut cur = node;
                        loop {
                            cycle.push(NodeId::new(cur));
                            if cur == d {
                                break;
                            }
                            cur = parent[cur];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RegionBuilder;
    use crate::expr::AffineExpr;
    use crate::memref::MemRef;

    fn two_store_region() -> Region {
        let mut b = RegionBuilder::new("v");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        b.store(m.clone(), &[x]);
        b.store(m.clone(), &[x]);
        b.load(m, &[]);
        b.finish()
    }

    #[test]
    fn clean_region_validates() {
        let region = two_store_region();
        assert_eq!(validate_region(&region), Ok(()));
    }

    #[test]
    fn dangling_endpoint_is_reported() {
        let mut region = two_store_region();
        let a = NodeId::new(0);
        region
            .dfg
            .add_edge_unchecked(a, NodeId::new(99), EdgeKind::Data);
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::DanglingEndpoint { .. })));
    }

    #[test]
    fn token_cycle_is_reported_with_its_nodes() {
        let mut region = two_store_region();
        // Stores are nodes 1 and 2 (input is 0); wire order tokens both ways.
        let (s1, s2) = (NodeId::new(1), NodeId::new(2));
        region.dfg.add_edge(s1, s2, EdgeKind::Order).unwrap();
        region.dfg.add_edge_unchecked(s2, s1, EdgeKind::Order);
        let errs = validate_region(&region).unwrap_err();
        let cycle = errs
            .iter()
            .find_map(|e| match e {
                ValidateError::TokenCycle { nodes } => Some(nodes.clone()),
                _ => None,
            })
            .expect("token cycle reported");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&s1) && cycle.contains(&s2));
    }

    #[test]
    fn data_cycle_reports_graph_cycle() {
        let mut region = two_store_region();
        // input (0) -> store (1) exists as data; close a data cycle.
        region
            .dfg
            .add_edge_unchecked(NodeId::new(1), NodeId::new(0), EdgeKind::Data);
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::GraphCycle { .. })));
        assert!(
            !errs
                .iter()
                .any(|e| matches!(e, ValidateError::TokenCycle { .. })),
            "a pure data cycle is not a token cycle"
        );
    }

    #[test]
    fn backwards_mde_and_bad_forward_are_reported() {
        let mut region = two_store_region();
        let (s2, ld) = (NodeId::new(2), NodeId::new(3));
        // Load (slot 2) -> store (slot 1): against program order.
        region.dfg.add_edge_unchecked(ld, s2, EdgeKind::Order);
        // Forward ending at a store: bad endpoints (and in program order,
        // store slot 0 -> store slot 1, so only the endpoint check fires).
        region
            .dfg
            .add_edge_unchecked(NodeId::new(1), s2, EdgeKind::Forward);
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::MdeAgainstProgramOrder { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::BadForwardEndpoints { .. })));
    }

    #[test]
    fn mde_between_non_mem_is_reported() {
        let mut region = two_store_region();
        // Input node 0 is not a memory op.
        region
            .dfg
            .add_edge_unchecked(NodeId::new(0), NodeId::new(1), EdgeKind::Order);
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::MdeBetweenNonMem { .. })));
    }

    #[test]
    fn symbol_errors_surface_through_validate_region() {
        let mut region = Region::new("sym");
        let m = MemRef::affine(crate::ids::BaseId::new(7), AffineExpr::zero());
        region.dfg.add_node(crate::op::OpKind::Load(m)).unwrap();
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::BaseOutOfRange { .. })));
        assert!(errs[0].to_string().starts_with("symbol error: "));
    }

    #[test]
    fn bad_loop_reference_is_reported() {
        let mut region = Region::new("badloop");
        let b = region.add_base(crate::memref::BaseObject::global("g", 64, 0));
        let m = MemRef::affine(b, AffineExpr::var(crate::ids::LoopId::new(3)));
        region.dfg.add_node(crate::op::OpKind::Load(m)).unwrap();
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::LoopOutOfRange { .. })));
        // Pushing one loop is not enough: loop 3 is still out of range.
        region.loops.push(crate::loops::LoopInfo::range("i", 0, 4));
        assert!(validate_region(&region).is_err(), "loop 3 still missing");
    }

    #[test]
    fn consistent_symbols_validate() {
        let mut region = Region::new("ok");
        let b = region.add_base(crate::memref::BaseObject::global("g", 64, 0));
        let i = region.loops.push(crate::loops::LoopInfo::range("i", 0, 4));
        let m = MemRef::affine(b, AffineExpr::var(i).scaled(8));
        region.dfg.add_node(crate::op::OpKind::Load(m)).unwrap();
        assert_eq!(validate_region(&region), Ok(()));
    }

    #[test]
    fn all_symbol_violations_are_collected() {
        let mut region = Region::new("multi");
        let bad_base = MemRef::affine(crate::ids::BaseId::new(7), AffineExpr::zero());
        let bad_unknown = MemRef::unknown(crate::ids::UnknownId::new(2), 0);
        region
            .dfg
            .add_node(crate::op::OpKind::Load(bad_base))
            .unwrap();
        region
            .dfg
            .add_node(crate::op::OpKind::Load(bad_unknown))
            .unwrap();
        let errs = validate_region(&region).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::BaseOutOfRange { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnknownOutOfRange { .. })));
    }

    #[test]
    fn diagnostics_have_readable_display() {
        let mut region = two_store_region();
        region
            .dfg
            .add_edge_unchecked(NodeId::new(2), NodeId::new(1), EdgeKind::Order);
        let errs = validate_region(&region).unwrap_err();
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
