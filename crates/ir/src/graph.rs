//! The dataflow graph (DFG) of an acceleration region.

use crate::edge::{Edge, EdgeKind};
use crate::ids::{EdgeId, MemSlot, NodeId, MAX_MEM_OPS};
use crate::op::OpKind;
use std::fmt;

/// A node of the DFG: an operation plus bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// What the node computes.
    pub kind: OpKind,
    /// For memory operations, the program-order slot; `None` otherwise.
    pub mem_slot: Option<MemSlot>,
}

/// Errors reported by [`Dfg`] mutation and validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint does not name an existing node.
    UnknownNode(NodeId),
    /// The same directed edge of the same kind was inserted twice.
    DuplicateEdge(Edge),
    /// Adding this edge would create a cycle; acceleration-region DFGs are
    /// DAGs.
    WouldCycle(Edge),
    /// The region exceeds the 8-bit memory-operation id space (max 256).
    TooManyMemOps,
    /// An MDE connects two nodes that are not both memory operations.
    MdeBetweenNonMem(Edge),
    /// An MDE points from a younger to an older memory operation.
    MdeAgainstProgramOrder(Edge),
    /// A forward edge does not go from a store to a load.
    BadForwardEndpoints(Edge),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::DuplicateEdge(e) => write!(f, "duplicate edge {e}"),
            GraphError::WouldCycle(e) => write!(f, "edge {e} would create a cycle"),
            GraphError::TooManyMemOps => {
                write!(f, "more than {MAX_MEM_OPS} memory operations in region")
            }
            GraphError::MdeBetweenNonMem(e) => {
                write!(f, "MDE {e} between non-memory operations")
            }
            GraphError::MdeAgainstProgramOrder(e) => {
                write!(f, "MDE {e} violates program order")
            }
            GraphError::BadForwardEndpoints(e) => {
                write!(f, "forward edge {e} must go store -> load")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed acyclic dataflow graph.
///
/// Nodes are operations; edges are data dependences or memory dependency
/// edges (MDEs). Memory operations additionally carry a program-order slot
/// ([`MemSlot`]), assigned in insertion order, which is the explicit age the
/// compiler communicates to the hardware (8 bits, like TRIPS).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dfg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    succs: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    preds: Vec<Vec<EdgeId>>,
    /// Memory operations in program order.
    mem_ops: Vec<NodeId>,
}

impl Dfg {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooManyMemOps`] if the node is a memory
    /// operation and the region already has [`MAX_MEM_OPS`] of them.
    pub fn add_node(&mut self, kind: OpKind) -> Result<NodeId, GraphError> {
        let id = NodeId::new(self.nodes.len());
        let mem_slot = if kind.is_mem() {
            if self.mem_ops.len() >= MAX_MEM_OPS {
                return Err(GraphError::TooManyMemOps);
            }
            let slot = MemSlot::new(self.mem_ops.len());
            self.mem_ops.push(id);
            Some(slot)
        } else {
            None
        };
        self.nodes.push(Node { kind, mem_slot });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        Ok(id)
    }

    /// Adds an edge after checking endpoints, uniqueness, acyclicity and —
    /// for MDEs — that both endpoints are memory operations ordered
    /// old→young (forward edges additionally store→load).
    ///
    /// # Errors
    ///
    /// See [`GraphError`] variants for each rejected shape.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        kind: EdgeKind,
    ) -> Result<EdgeId, GraphError> {
        let edge = Edge::new(src, dst, kind);
        if src.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(dst));
        }
        if self.succs[src.index()]
            .iter()
            .any(|&e| self.edges[e.index()] == edge)
        {
            return Err(GraphError::DuplicateEdge(edge));
        }
        if kind.is_mde() {
            let (sn, dn) = (&self.nodes[src.index()], &self.nodes[dst.index()]);
            let (Some(s_slot), Some(d_slot)) = (sn.mem_slot, dn.mem_slot) else {
                return Err(GraphError::MdeBetweenNonMem(edge));
            };
            if s_slot >= d_slot {
                return Err(GraphError::MdeAgainstProgramOrder(edge));
            }
            if kind == EdgeKind::Forward && !(sn.kind.is_store() && dn.kind.is_load()) {
                return Err(GraphError::BadForwardEndpoints(edge));
            }
        }
        if src == dst || self.reaches(dst, src) {
            return Err(GraphError::WouldCycle(edge));
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(edge);
        self.succs[src.index()].push(id);
        self.preds[dst.index()].push(id);
        Ok(id)
    }

    /// Adds an edge **without** any invariant checking: no duplicate,
    /// cycle, program-order or endpoint-kind enforcement, and endpoints
    /// may even be out of range (dangling edges are recorded in the edge
    /// table but excluded from the adjacency lists so traversals stay in
    /// bounds).
    ///
    /// This is the escape hatch for building *adversarial* graphs —
    /// fault-injection and validator tests that need regions
    /// [`add_edge`](Self::add_edge) would rightly reject. Production code
    /// must use [`add_edge`](Self::add_edge); anything built through this
    /// method must pass `nachos_ir::validate_region` before it is placed
    /// or simulated.
    pub fn add_edge_unchecked(&mut self, src: NodeId, dst: NodeId, kind: EdgeKind) -> EdgeId {
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge::new(src, dst, kind));
        if src.index() < self.nodes.len() && dst.index() < self.nodes.len() {
            self.succs[src.index()].push(id);
            self.preds[dst.index()].push(id);
        }
        id
    }

    /// Removes the edge at `index` (in [`edges`](Self::edges) order) and
    /// returns it, rebuilding the adjacency lists; edge ids after `index`
    /// shift down by one.
    ///
    /// Like [`add_edge_unchecked`](Self::add_edge_unchecked) this is an
    /// escape hatch for building *adversarial* graphs (e.g. a compiled
    /// region with one ordering token withheld); anything mutated through
    /// it must pass `nachos_ir::validate_region` before it is placed or
    /// simulated.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove_edge_unchecked(&mut self, index: usize) -> Edge {
        let removed = self.edges.remove(index);
        for list in self.succs.iter_mut().chain(self.preds.iter_mut()) {
            list.clear();
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.src.index() < self.nodes.len() && e.dst.index() < self.nodes.len() {
                self.succs[e.src.index()].push(EdgeId::new(i));
                self.preds[e.dst.index()].push(EdgeId::new(i));
            }
        }
        removed
    }

    /// Removes the edge `src → dst` of `kind`, if present, and returns it.
    ///
    /// Unlike [`remove_edge_unchecked`](Self::remove_edge_unchecked) this
    /// is a *checked* mutation meant for production transformation passes
    /// (the MDE optimizer): the edge is looked up by endpoints and kind,
    /// the adjacency lists are rebuilt, and removing an edge can never
    /// break the graph invariants [`add_edge`](Self::add_edge) enforces
    /// (acyclicity, uniqueness and endpoint shape are preserved by
    /// deletion). Returns `None` when no such edge exists.
    pub fn remove_edge_between(
        &mut self,
        src: NodeId,
        dst: NodeId,
        kind: EdgeKind,
    ) -> Option<Edge> {
        let target = Edge::new(src, dst, kind);
        let index = self.edges.iter().position(|e| *e == target)?;
        Some(self.remove_edge_unchecked(index))
    }

    /// `true` if `to` is reachable from `from` along any edges.
    #[must_use]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(n) = stack.pop() {
            for &e in &self.succs[n.index()] {
                let d = self.edges[e.index()].dst;
                if d == to {
                    return true;
                }
                if !seen[d.index()] {
                    seen[d.index()] = true;
                    stack.push(d);
                }
            }
        }
        false
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> {
        self.succs[id.index()]
            .iter()
            .map(|&e| &self.edges[e.index()])
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> {
        self.preds[id.index()]
            .iter()
            .map(|&e| &self.edges[e.index()])
    }

    /// The memory operations of the region, oldest first.
    #[must_use]
    pub fn mem_ops(&self) -> &[NodeId] {
        &self.mem_ops
    }

    /// The node occupying a given program-order memory slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn mem_op(&self, slot: MemSlot) -> NodeId {
        self.mem_ops[slot.index()]
    }

    /// Number of memory operations.
    #[must_use]
    pub fn num_mem_ops(&self) -> usize {
        self.mem_ops.len()
    }

    /// Counts edges of the given kind.
    #[must_use]
    pub fn count_edges(&self, kind: EdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }

    /// A topological order of all nodes (sources first).
    ///
    /// The graph is maintained acyclic by [`Dfg::add_edge`], so this always
    /// succeeds and covers every node.
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut ready: Vec<NodeId> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        while let Some(n) = ready.pop() {
            order.push(n);
            for &e in &self.succs[n.index()] {
                let d = self.edges[e.index()].dst;
                indeg[d.index()] -= 1;
                if indeg[d.index()] == 0 {
                    ready.push(d);
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len(), "graph must be acyclic");
        order
    }

    /// Length (in nodes) of the longest path through the graph following
    /// only the given edge kinds — the dataflow critical path.
    #[must_use]
    pub fn critical_path_len(&self, kinds: &[EdgeKind]) -> usize {
        let order = self.topo_order();
        let mut depth = vec![1usize; self.nodes.len()];
        let mut max = if self.nodes.is_empty() { 0 } else { 1 };
        for n in order {
            for e in self.out_edges(n) {
                if kinds.contains(&e.kind) {
                    let d = depth[n.index()] + 1;
                    if d > depth[e.dst.index()] {
                        depth[e.dst.index()] = d;
                        max = max.max(d);
                    }
                }
            }
        }
        max
    }

    /// Removes every MDE (order/forward/may edge), keeping data edges.
    /// Used by the compiler driver to re-run MDE insertion with a different
    /// configuration on the same region.
    pub fn clear_mdes(&mut self) {
        let keep: Vec<Edge> = self
            .edges
            .iter()
            .copied()
            .filter(|e| !e.kind.is_mde())
            .collect();
        self.edges.clear();
        for s in &mut self.succs {
            s.clear();
        }
        for p in &mut self.preds {
            p.clear();
        }
        for e in keep {
            let id = EdgeId::new(self.edges.len());
            self.edges.push(e);
            self.succs[e.src.index()].push(id);
            self.preds[e.dst.index()].push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::ids::BaseId;
    use crate::memref::MemRef;
    use crate::op::IntOp;

    fn mem() -> MemRef {
        MemRef::affine(BaseId::new(0), AffineExpr::zero())
    }

    fn small_graph() -> (Dfg, NodeId, NodeId, NodeId) {
        let mut g = Dfg::new();
        let a = g.add_node(OpKind::Load(mem())).unwrap();
        let b = g.add_node(OpKind::Int(IntOp::Add)).unwrap();
        let c = g.add_node(OpKind::Store(mem())).unwrap();
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        g.add_edge(b, c, EdgeKind::Data).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn mem_slots_follow_insertion_order() {
        let (g, a, _, c) = small_graph();
        assert_eq!(g.num_mem_ops(), 2);
        assert_eq!(g.mem_ops(), &[a, c]);
        assert_eq!(g.node(a).mem_slot, Some(MemSlot::new(0)));
        assert_eq!(g.node(c).mem_slot, Some(MemSlot::new(1)));
        assert_eq!(g.mem_op(MemSlot::new(1)), c);
    }

    #[test]
    fn remove_edge_unchecked_rebuilds_adjacency() {
        let (mut g, a, b, c) = small_graph();
        let removed = g.remove_edge_unchecked(0);
        assert_eq!(removed, Edge::new(a, b, EdgeKind::Data));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_edges(a).count(), 0);
        assert_eq!(g.in_edges(b).count(), 0);
        // The surviving edge keeps working through the rebuilt lists.
        assert_eq!(
            g.out_edges(b).next(),
            Some(&Edge::new(b, c, EdgeKind::Data))
        );
        assert_eq!(g.in_edges(c).count(), 1);
    }

    #[test]
    fn remove_edge_between_finds_by_endpoints_and_kind() {
        let (mut g, a, _, c) = small_graph();
        g.add_edge(a, c, EdgeKind::Order).unwrap();
        // Wrong kind: untouched.
        assert_eq!(g.remove_edge_between(a, c, EdgeKind::May), None);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(
            g.remove_edge_between(a, c, EdgeKind::Order),
            Some(Edge::new(a, c, EdgeKind::Order))
        );
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.count_edges(EdgeKind::Order), 0);
        // Second removal of the same edge is a no-op.
        assert_eq!(g.remove_edge_between(a, c, EdgeKind::Order), None);
    }

    #[test]
    fn rejects_duplicate_edges() {
        let (mut g, a, b, _) = small_graph();
        assert!(matches!(
            g.add_edge(a, b, EdgeKind::Data),
            Err(GraphError::DuplicateEdge(_))
        ));
        // Same endpoints, different kind is allowed for mem pairs only;
        // for data+data it is a duplicate, but data+order between a load
        // and an add is an MDE error:
        assert!(matches!(
            g.add_edge(a, b, EdgeKind::Order),
            Err(GraphError::MdeBetweenNonMem(_))
        ));
    }

    #[test]
    fn rejects_cycles_and_self_edges() {
        let (mut g, a, _, c) = small_graph();
        assert!(matches!(
            g.add_edge(c, a, EdgeKind::Data),
            Err(GraphError::WouldCycle(_))
        ));
        assert!(matches!(
            g.add_edge(a, a, EdgeKind::Data),
            Err(GraphError::WouldCycle(_))
        ));
    }

    #[test]
    fn rejects_unknown_nodes() {
        let (mut g, a, _, _) = small_graph();
        assert!(matches!(
            g.add_edge(a, NodeId::new(99), EdgeKind::Data),
            Err(GraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn mde_program_order_enforced() {
        let (mut g, a, _, c) = small_graph();
        // a is older than c: ok (load->store order edge).
        g.add_edge(a, c, EdgeKind::Order).unwrap();
        // store->load backwards in program order: rejected.
        assert!(matches!(
            g.add_edge(c, a, EdgeKind::Forward),
            Err(GraphError::MdeAgainstProgramOrder(_))
        ));
    }

    #[test]
    fn forward_requires_store_to_load() {
        let mut g = Dfg::new();
        let ld = g.add_node(OpKind::Load(mem())).unwrap();
        let ld2 = g.add_node(OpKind::Load(mem())).unwrap();
        let st = g.add_node(OpKind::Store(mem())).unwrap();
        assert!(matches!(
            g.add_edge(ld, ld2, EdgeKind::Forward),
            Err(GraphError::BadForwardEndpoints(_))
        ));
        assert!(matches!(
            g.add_edge(ld, st, EdgeKind::Forward),
            Err(GraphError::BadForwardEndpoints(_))
        ));
        let mut g2 = Dfg::new();
        let st2 = g2.add_node(OpKind::Store(mem())).unwrap();
        let ld3 = g2.add_node(OpKind::Load(mem())).unwrap();
        assert!(g2.add_edge(st2, ld3, EdgeKind::Forward).is_ok());
    }

    #[test]
    fn topo_order_is_valid() {
        let (g, _, _, _) = small_graph();
        let order = g.topo_order();
        assert_eq!(order.len(), 3);
        let pos: Vec<usize> = g
            .node_ids()
            .map(|n| order.iter().position(|&o| o == n).unwrap())
            .collect();
        for e in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn critical_path_follows_selected_kinds() {
        let (mut g, a, _, c) = small_graph();
        assert_eq!(g.critical_path_len(&[EdgeKind::Data]), 3);
        g.add_edge(a, c, EdgeKind::Order).unwrap();
        // Order edge a->c does not lengthen data-only path.
        assert_eq!(g.critical_path_len(&[EdgeKind::Data]), 3);
        assert_eq!(g.critical_path_len(&[EdgeKind::Order]), 2);
    }

    #[test]
    fn clear_mdes_keeps_data_edges() {
        let (mut g, a, _, c) = small_graph();
        g.add_edge(a, c, EdgeKind::Order).unwrap();
        assert_eq!(g.num_edges(), 3);
        g.clear_mdes();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.count_edges(EdgeKind::Order), 0);
        assert_eq!(g.count_edges(EdgeKind::Data), 2);
        // Adjacency stays consistent.
        assert_eq!(g.out_edges(a).count(), 1);
        assert_eq!(g.in_edges(c).count(), 1);
    }

    #[test]
    fn mem_op_limit_enforced() {
        let mut g = Dfg::new();
        for _ in 0..MAX_MEM_OPS {
            g.add_node(OpKind::Load(mem())).unwrap();
        }
        assert!(matches!(
            g.add_node(OpKind::Load(mem())),
            Err(GraphError::TooManyMemOps)
        ));
        // Non-memory nodes are still fine.
        assert!(g.add_node(OpKind::Int(IntOp::Add)).is_ok());
    }

    #[test]
    fn reaches_is_transitive() {
        let (g, a, b, c) = small_graph();
        assert!(g.reaches(a, c));
        assert!(g.reaches(a, b));
        assert!(!g.reaches(c, a));
        assert!(g.reaches(b, b));
    }
}
