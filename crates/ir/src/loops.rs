//! Loop-nest metadata for an acceleration region.
//!
//! An acceleration region is a control-flow-free trace of a loop body; the
//! enclosing loop nest provides the induction variables that appear in
//! pointer expressions, together with the bounds the compiler may assume
//! when testing dependences.

use crate::ids::LoopId;

/// One loop of the nest enclosing the region, `for iv in lower..upper
/// step step`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LoopInfo {
    /// Human-readable induction-variable name.
    pub name: String,
    /// First induction-variable value (inclusive).
    pub lower: i64,
    /// Upper bound (exclusive).
    pub upper: i64,
    /// Step between iterations; must be positive.
    pub step: i64,
}

impl LoopInfo {
    /// A unit-step loop over `lower..upper`.
    ///
    /// # Panics
    ///
    /// Panics if `upper < lower`.
    #[must_use]
    pub fn range(name: &str, lower: i64, upper: i64) -> Self {
        assert!(upper >= lower, "loop upper bound below lower bound");
        Self {
            name: name.to_owned(),
            lower,
            upper,
            step: 1,
        }
    }

    /// Number of iterations the loop executes.
    #[must_use]
    pub fn trip_count(&self) -> u64 {
        if self.upper <= self.lower {
            0
        } else {
            ((self.upper - self.lower - 1) / self.step + 1) as u64
        }
    }

    /// Largest induction-variable value actually taken (inclusive), if the
    /// loop runs at all.
    #[must_use]
    pub fn max_iv(&self) -> Option<i64> {
        if self.upper <= self.lower {
            None
        } else {
            let trips = self.trip_count() as i64;
            Some(self.lower + (trips - 1) * self.step)
        }
    }
}

/// The loop nest enclosing a region, outermost first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopNest {
    loops: Vec<LoopInfo>,
}

impl LoopNest {
    /// An empty nest (straight-line region with no enclosing loops).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a loop and returns its id.
    pub fn push(&mut self, info: LoopInfo) -> LoopId {
        let id = LoopId::new(self.loops.len());
        self.loops.push(info);
        id
    }

    /// The loop with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.index()]
    }

    /// The loop with the given id, or `None` when out of range.
    #[must_use]
    pub fn get(&self, id: LoopId) -> Option<&LoopInfo> {
        self.loops.get(id.index())
    }

    /// Number of loops in the nest.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// `true` if there are no enclosing loops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Iterates over `(id, info)` pairs, outermost first.
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &LoopInfo)> {
        self.loops
            .iter()
            .enumerate()
            .map(|(i, l)| (LoopId::new(i), l))
    }

    /// Total number of region invocations implied by the nest (the product
    /// of all trip counts), saturating at `u64::MAX`. An empty nest implies
    /// a single invocation.
    #[must_use]
    pub fn total_invocations(&self) -> u64 {
        self.loops
            .iter()
            .map(LoopInfo::trip_count)
            .fold(1u64, u64::saturating_mul)
    }

    /// Produces the `k`-th iteration vector in lexicographic order
    /// (outermost slowest), as concrete induction-variable values indexed
    /// by [`LoopId::index`]. Used by the simulator to step through region
    /// invocations.
    ///
    /// # Panics
    ///
    /// Panics if any loop has a zero trip count.
    #[must_use]
    pub fn iteration_vector(&self, k: u64) -> Vec<i64> {
        let mut iv = Vec::new();
        self.iteration_vector_into(k, &mut iv);
        iv
    }

    /// Like [`LoopNest::iteration_vector`], writing into a caller-owned
    /// buffer (cleared first) so hot callers skip the allocation.
    ///
    /// # Panics
    ///
    /// Panics if any loop has a zero trip count.
    pub fn iteration_vector_into(&self, k: u64, iv: &mut Vec<i64>) {
        iv.clear();
        iv.resize(self.loops.len(), 0);
        let mut rem = k;
        for idx in (0..self.loops.len()).rev() {
            let l = &self.loops[idx];
            let trips = l.trip_count();
            assert!(trips > 0, "loop {idx} has zero trip count");
            let pos = rem % trips;
            rem /= trips;
            iv[idx] = l.lower + pos as i64 * l.step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_and_max_iv() {
        let l = LoopInfo::range("i", 0, 10);
        assert_eq!(l.trip_count(), 10);
        assert_eq!(l.max_iv(), Some(9));

        let l = LoopInfo {
            name: "j".into(),
            lower: 2,
            upper: 11,
            step: 3,
        };
        assert_eq!(l.trip_count(), 3); // 2, 5, 8
        assert_eq!(l.max_iv(), Some(8));

        let empty = LoopInfo::range("k", 4, 4);
        assert_eq!(empty.trip_count(), 0);
        assert_eq!(empty.max_iv(), None);
    }

    #[test]
    fn nest_invocations() {
        let mut nest = LoopNest::new();
        nest.push(LoopInfo::range("i", 0, 4));
        nest.push(LoopInfo::range("j", 0, 3));
        assert_eq!(nest.total_invocations(), 12);
        assert_eq!(nest.len(), 2);
        assert!(!nest.is_empty());
        assert_eq!(LoopNest::new().total_invocations(), 1);
    }

    #[test]
    fn iteration_vector_is_lexicographic() {
        let mut nest = LoopNest::new();
        let _i = nest.push(LoopInfo::range("i", 0, 2));
        let _j = nest.push(LoopInfo::range("j", 10, 13));
        assert_eq!(nest.iteration_vector(0), vec![0, 10]);
        assert_eq!(nest.iteration_vector(1), vec![0, 11]);
        assert_eq!(nest.iteration_vector(2), vec![0, 12]);
        assert_eq!(nest.iteration_vector(3), vec![1, 10]);
        assert_eq!(nest.iteration_vector(5), vec![1, 12]);
    }

    #[test]
    fn iteration_vector_respects_step_and_lower() {
        let mut nest = LoopNest::new();
        nest.push(LoopInfo {
            name: "i".into(),
            lower: 4,
            upper: 13,
            step: 4,
        });
        assert_eq!(nest.iteration_vector(0), vec![4]);
        assert_eq!(nest.iteration_vector(1), vec![8]);
        assert_eq!(nest.iteration_vector(2), vec![12]);
    }

    #[test]
    #[should_panic(expected = "upper bound below")]
    fn invalid_range_panics() {
        let _ = LoopInfo::range("i", 5, 4);
    }
}
