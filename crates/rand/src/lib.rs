//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace vendors the minimal API surface it actually
//! uses: `SmallRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! integer ranges. The generator is splitmix64-seeded xorshift64*, which
//! is deterministic, fast, and statistically adequate for workload
//! synthesis and property-test case generation (no cryptographic claims).
//!
//! The stream differs from upstream `rand`'s `SmallRng`; all in-repo
//! consumers treat the RNG as an arbitrary deterministic source, so only
//! reproducibility within this repository matters.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive, Sub};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types drawable by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
uniform_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`], mirroring `rand::distributions::
/// uniform::SampleRange`. Single blanket impls per range shape keep type
/// inference working for untyped literals (`gen_range(0..100)`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One + Sub<Output = T>> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(self.start, self.end - T::one(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Unit value for half-open range conversion (internal helper).
pub trait One {
    /// The multiplicative identity.
    fn one() -> Self;
}
macro_rules! one_impl {
    ($($t:ty),*) => {$(impl One for $t { fn one() -> Self { 1 } })*};
}
one_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator (xorshift64*).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 mixes weak seeds (0, small integers) into
            // well-distributed initial states; xorshift must not start at 0.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            Self { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    /// The standard generator; aliased to [`SmallRng`] in this stand-in.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(0..100);
            assert!(v < 100);
            let w: i64 = r.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&w));
            let u: usize = r.gen_range(3..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::seed_from_u64(0);
        let a = r.gen::<u64>();
        let b = r.gen::<u64>();
        assert_ne!(a, b);
    }
}
