//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository cannot reach a crate
//! registry, so the workspace vendors the subset of proptest it uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! integer-range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], and [`sample::select`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs via the assert
//!   message (every call site formats its inputs) but is not minimized.
//! * **Deterministic cases.** Each test function derives its RNG stream
//!   from its own name, so runs are reproducible and CI-stable; upstream
//!   reseeds per run.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy for [`crate::arbitrary::any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// `any::<T>()` for primitive types.
pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a default generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The default strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Admissible element-count specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_incl: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector of `size` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Uniformly selects one of `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured by the stand-in).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each test executes.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic xorshift64* generator driving value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one `(test name, case index)` pair: every case gets an
        /// independent, reproducible stream.
        #[must_use]
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            h = (h ^ u64::from(case)).wrapping_mul(0x100_0000_01b3);
            // splitmix64 finalizer; xorshift state must be nonzero.
            let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            Self { state: z | 1 }
        }

        /// Next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

/// The customary glob import.
pub mod prelude {
    /// Alias of the crate root (upstream exposes the same alias).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a proptest case (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest case (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest case (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn` runs `config.cases` times with
/// fresh strategy-generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat =
                            $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case("unit", 0);
        let s = (0usize..5, -8i64..=8, any::<bool>());
        for _ in 0..500 {
            let (a, b, _c) = s.new_value(&mut rng);
            assert!(a < 5);
            assert!((-8..=8).contains(&b));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case("unit-vec", 0);
        let s = crate::collection::vec(0u64..10, 1..4);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), c in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = c;
        }
    }
}
