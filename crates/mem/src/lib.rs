//! # nachos-mem — memory substrate for the NACHOS reproduction
//!
//! The cache hierarchy behind the CGRA accelerator of *NACHOS* (HPCA 2018,
//! Figure 3): a private L1 (64 KiB, 4-way, 3 cycles) backed by a shared
//! LLC (4 MiB, 16-way, 25 cycles) and DRAM (200 cycles), with non-blocking
//! MSHR-merged misses — plus the byte-addressable [`DataMemory`] used to
//! verify that every disambiguation backend preserves sequential
//! semantics.
//!
//! ```
//! use nachos_mem::{AccessOutcome, HierarchyConfig, MemoryHierarchy};
//!
//! let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
//! let cold = hier.access(0x1000, false, 0);
//! assert_eq!(cold.outcome, AccessOutcome::MemMiss);
//! let warm = hier.access(0x1000, false, cold.complete_at + 1);
//! assert_eq!(warm.outcome, AccessOutcome::L1Hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod data;
mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use data::DataMemory;
pub use hierarchy::{AccessOutcome, AccessResult, HierarchyConfig, MemoryHierarchy};
