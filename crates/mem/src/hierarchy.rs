//! The two-level cache hierarchy with non-blocking (MSHR-merged) misses.

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Where an access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the accelerator's private L1.
    L1Hit,
    /// Missed L1, hit the shared LLC.
    L2Hit,
    /// Missed both levels; served from DRAM.
    MemMiss,
    /// Merged into an already-outstanding miss for the same line.
    MshrMerge,
}

/// Timing and placement result of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the data is available at the cache edge.
    pub complete_at: u64,
    /// Where the access was satisfied.
    pub outcome: AccessOutcome,
}

/// Configuration of the full hierarchy (paper Figure 3):
/// L1 64K/4-way/3 cycles, LLC 4M/16-way/25 cycles, memory 200 cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 geometry/latency.
    pub l1: CacheConfig,
    /// Shared last-level cache geometry/latency.
    pub llc: CacheConfig,
    /// DRAM access latency in cycles.
    pub mem_latency: u64,
    /// Maximum outstanding misses (MSHR entries).
    pub mshrs: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1: CacheConfig::paper_l1(),
            llc: CacheConfig::paper_llc(),
            mem_latency: 200,
            mshrs: 16,
        }
    }
}

/// A non-blocking two-level hierarchy.
///
/// Timing is *functional*: [`MemoryHierarchy::access`] is called with the
/// issue cycle and returns the completion cycle, updating tag state
/// eagerly. Outstanding misses to the same line merge (MSHR semantics);
/// when all MSHRs are busy the access is delayed until the oldest
/// outstanding miss retires.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    llc: Cache,
    /// `(line address, completion cycle)` of each outstanding fill. At
    /// most `mshrs` entries (16 in the paper config), so a linear scan
    /// beats a hash probe on the engine's access path.
    inflight: Vec<(u64, u64)>,
    merges: u64,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if either cache geometry is inconsistent or `mshrs == 0`.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.mshrs > 0, "need at least one MSHR");
        Self {
            config,
            l1: Cache::new(config.l1),
            llc: Cache::new(config.llc),
            inflight: Vec::new(),
            merges: 0,
        }
    }

    /// Accesses `addr` at cycle `now`; returns completion time and outcome.
    pub fn access(&mut self, addr: u64, is_write: bool, now: u64) -> AccessResult {
        let line = self.l1.line_of(addr);
        // Retire completed fills.
        self.inflight.retain(|&(_, done)| done > now);

        if let Some(done) = self
            .inflight
            .iter()
            .find_map(|&(l, done)| (l == line).then_some(done))
        {
            // Merge into the outstanding miss; data usable when the fill
            // lands, plus the L1 array access.
            self.merges += 1;
            self.l1.access(addr, is_write);
            return AccessResult {
                complete_at: done.max(now) + self.config.l1.latency,
                outcome: AccessOutcome::MshrMerge,
            };
        }

        let issue = if self.inflight.len() >= self.config.mshrs {
            // Structural stall: wait for the oldest outstanding fill.
            let oldest = self
                .inflight
                .iter()
                .map(|&(_, done)| done)
                .min()
                .expect("inflight nonempty when full");
            self.inflight.retain(|&(_, done)| done > oldest);
            oldest.max(now)
        } else {
            now
        };

        if self.l1.access(addr, is_write) {
            return AccessResult {
                complete_at: issue + self.config.l1.latency,
                outcome: AccessOutcome::L1Hit,
            };
        }
        let (latency, outcome) = if self.llc.access(addr, is_write) {
            (
                self.config.l1.latency + self.config.llc.latency,
                AccessOutcome::L2Hit,
            )
        } else {
            (
                self.config.l1.latency + self.config.llc.latency + self.config.mem_latency,
                AccessOutcome::MemMiss,
            )
        };
        let complete_at = issue + latency;
        self.inflight.push((line, complete_at));
        AccessResult {
            complete_at,
            outcome,
        }
    }

    /// L1 statistics.
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// LLC statistics.
    #[must_use]
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Number of accesses merged into outstanding misses.
    #[must_use]
    pub fn mshr_merges(&self) -> u64 {
        self.merges
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Invalidates both levels and clears statistics; configuration is
    /// retained.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.llc.reset();
        self.inflight.clear();
        self.merges = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut h = hier();
        let r = h.access(0x1000, false, 0);
        assert_eq!(r.outcome, AccessOutcome::MemMiss);
        assert_eq!(r.complete_at, 3 + 25 + 200);
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = hier();
        h.access(0x1000, false, 0);
        let r = h.access(0x1000, false, 500);
        assert_eq!(r.outcome, AccessOutcome::L1Hit);
        assert_eq!(r.complete_at, 503);
    }

    #[test]
    fn llc_hit_when_l1_evicted() {
        let mut h = hier();
        // Fill L1 set with conflicting lines (L1: 256 sets * 64B = 16KiB
        // stride per set image; 4 ways). Use 5 lines mapping to set 0.
        for k in 0..5u64 {
            h.access(k * 16384, false, 1000 * k);
        }
        // First line evicted from L1 but still in the 4MiB LLC.
        let r = h.access(0, false, 100_000);
        assert_eq!(r.outcome, AccessOutcome::L2Hit);
        assert_eq!(r.complete_at, 100_000 + 28);
    }

    #[test]
    fn outstanding_miss_merges() {
        let mut h = hier();
        let first = h.access(0x2000, false, 0);
        let merged = h.access(0x2008, false, 1);
        assert_eq!(merged.outcome, AccessOutcome::MshrMerge);
        assert_eq!(merged.complete_at, first.complete_at + 3);
        assert_eq!(h.mshr_merges(), 1);
    }

    #[test]
    fn merge_window_closes_after_fill() {
        let mut h = hier();
        let first = h.access(0x2000, false, 0);
        let later = h.access(0x2008, false, first.complete_at + 1);
        assert_eq!(later.outcome, AccessOutcome::L1Hit);
    }

    #[test]
    fn mshr_exhaustion_delays_issue() {
        let mut h = MemoryHierarchy::new(HierarchyConfig {
            mshrs: 2,
            ..HierarchyConfig::default()
        });
        let a = h.access(0x0000, false, 0);
        let _b = h.access(0x4000_0000, false, 0);
        // Third distinct-line miss at cycle 0 must wait for the oldest.
        let c = h.access(0x8000_0000, false, 0);
        assert!(c.complete_at >= a.complete_at + 228);
    }

    #[test]
    fn stats_accumulate_per_level() {
        let mut h = hier();
        h.access(0, false, 0);
        h.access(0, false, 1000);
        assert_eq!(h.l1_stats().hits, 1);
        assert_eq!(h.l1_stats().misses, 1);
        assert_eq!(h.llc_stats().misses, 1);
        h.reset();
        assert_eq!(h.l1_stats().accesses(), 0);
    }
}
