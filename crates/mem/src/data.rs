//! Byte-addressable functional memory, used to check that every
//! disambiguation backend preserves sequential semantics.

use std::collections::HashMap;

/// Sparse byte-addressable memory. Unwritten bytes read as zero.
///
/// This is the *functional* half of the simulator: the timing models decide
/// *when* accesses happen, while `DataMemory` records *what* they produce,
/// so tests can compare the final state (and every load's value) against an
/// in-order reference execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataMemory {
    bytes: HashMap<u64, u8>,
}

impl DataMemory {
    /// An empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads `size` bytes (1–8) at `addr`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    #[must_use]
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        let mut v = 0u64;
        for i in (0..size).rev() {
            v = (v << 8)
                | u64::from(
                    self.bytes
                        .get(&addr.wrapping_add(u64::from(i)))
                        .copied()
                        .unwrap_or(0),
                );
        }
        v
    }

    /// Writes the low `size` bytes (1–8) of `value` at `addr`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn write(&mut self, addr: u64, size: u8, value: u64) {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        for i in 0..size {
            self.bytes
                .insert(addr.wrapping_add(u64::from(i)), (value >> (8 * i)) as u8);
        }
    }

    /// Number of bytes ever written.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.bytes.len()
    }

    /// Iterates over `(address, byte)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.bytes.iter().map(|(&a, &b)| (a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = DataMemory::new();
        m.write(0x100, 8, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read(0x100, 8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read(0x100, 4), 0x89ab_cdef);
        assert_eq!(m.read(0x104, 4), 0x0123_4567);
        assert_eq!(m.read(0x100, 1), 0xef);
    }

    #[test]
    fn unwritten_reads_zero() {
        let m = DataMemory::new();
        assert_eq!(m.read(0xdead, 8), 0);
    }

    #[test]
    fn partial_overwrite() {
        let mut m = DataMemory::new();
        m.write(0, 8, u64::MAX);
        m.write(2, 2, 0);
        assert_eq!(m.read(0, 8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn footprint_counts_bytes() {
        let mut m = DataMemory::new();
        m.write(0, 8, 1);
        m.write(4, 8, 1); // overlaps 4 bytes
        assert_eq!(m.footprint(), 12);
    }

    #[test]
    fn equality_is_content_based() {
        let mut a = DataMemory::new();
        let mut b = DataMemory::new();
        a.write(0, 4, 0xaabbccdd);
        b.write(0, 2, 0xccdd);
        b.write(2, 2, 0xaabb);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn oversized_read_panics() {
        let m = DataMemory::new();
        let _ = m.read(0, 9);
    }
}
